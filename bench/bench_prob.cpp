// Experiment E12: diagram-native probability and importance.
//
// Two claims to measure:
//
//   1. End to end, `--prob-mode diagram` beats the cut-set path whenever
//      path extraction dominates: the ZBDD engine's diagram stays linear
//      in the model while the family it encodes is combinatorial
//      (stages^channels for the replicated voter), so enumerating sets
//      just to sum over them is the bottleneck the diagram sweeps remove.
//      BM_AnalyseCutsets / BM_AnalyseDiagram is that A/B on a replicated
//      fixture whose family blows past max_sets; compare_benchmarks.py
//      --prob-report watches the ratio (the acceptance bar is 2x).
//
//   2. The honest axis: on a clean run whose family fits the limits, both
//      modes evaluate the SAME extracted family with the same kernels --
//      the BBW pair must come out ~1x, and its outputs byte-identical.
//
// Plus the importance kernel in isolation: the per-variable restricted
// evaluation (O(V*N), what importance_ranking used to do) against the
// one-pass up/down Birnbaum sweep (O(N)).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "analysis/probability.h"
#include "analysis/report.h"
#include "bdd/bdd_prob.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

/// The extraction-dominated fixture: 3 voted lanes of 40 stages give a
/// minimal family of ~64k sets (every way to lose all three lanes) while
/// the diagram stays linear in the model. max_sets = 16384 truncates the
/// listing, so the cut-set path enumerates (and evaluates) 16384 partial
/// sets where the diagram path samples a bounded listing and sweeps the
/// small diagram for exact numbers.
const FaultTree& replicated_tree() {
  static Model model = [] {
    synthetic::ReplicatedConfig config;
    config.channels = 3;
    config.stages = 40;
    return synthetic::build_replicated(config);
  }();
  static FaultTree tree = Synthesiser(model).synthesise("Omission-sink");
  return tree;
}

AnalysisOptions replicated_options(ProbMode mode) {
  AnalysisOptions options;
  options.cut_sets.engine = CutSetEngine::kZbdd;
  options.cut_sets.max_sets = 1u << 14;
  options.prob_mode = mode;
  return options;
}

void BM_AnalyseCutsets(benchmark::State& state) {
  const FaultTree& tree = replicated_tree();
  const AnalysisOptions options = replicated_options(ProbMode::kCutSets);
  std::size_t sets = 0;
  for (auto _ : state) {
    TreeAnalysis analysis = analyse_tree(tree, options);
    sets = analysis.cut_sets.cut_sets.size();
    benchmark::DoNotOptimize(analysis.p_rare_event);
  }
  state.counters["listed_sets"] = static_cast<double>(sets);
  state.SetLabel("replicated_c3_s40_truncated");
}
BENCHMARK(BM_AnalyseCutsets)->Unit(benchmark::kMillisecond);

void BM_AnalyseDiagram(benchmark::State& state) {
  const FaultTree& tree = replicated_tree();
  const AnalysisOptions options = replicated_options(ProbMode::kDiagram);
  std::size_t sets = 0;
  bool native = false;
  for (auto _ : state) {
    TreeAnalysis analysis = analyse_tree(tree, options);
    sets = analysis.cut_sets.cut_sets.size();
    native = analysis.diagram_native;
    benchmark::DoNotOptimize(analysis.p_rare_event);
  }
  state.counters["listed_sets"] = static_cast<double>(sets);
  state.counters["diagram_native"] = native ? 1.0 : 0.0;
  state.SetLabel("replicated_c3_s40_truncated");
}
BENCHMARK(BM_AnalyseDiagram)->Unit(benchmark::kMillisecond);

/// Honesty pair: a clean run (family within limits) must cost the same in
/// both modes -- the diagram path only diverges once extraction truncates.
void analyse_bbw(benchmark::State& state, ProbMode mode) {
  static Model model = setta::build_bbw();
  static FaultTree tree =
      Synthesiser(model).synthesise("Omission-brake_force_fl");
  AnalysisOptions options;
  options.cut_sets.engine = CutSetEngine::kZbdd;
  options.prob_mode = mode;
  for (auto _ : state) {
    TreeAnalysis analysis = analyse_tree(tree, options);
    benchmark::DoNotOptimize(analysis.p_exact);
  }
  state.SetLabel("bbw_clean_run");
}
void BM_AnalyseBbwCutsets(benchmark::State& state) {
  analyse_bbw(state, ProbMode::kCutSets);
}
void BM_AnalyseBbwDiagram(benchmark::State& state) {
  analyse_bbw(state, ProbMode::kDiagram);
}
BENCHMARK(BM_AnalyseBbwCutsets)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyseBbwDiagram)->Unit(benchmark::kMillisecond);

/// Birnbaum kernel scaling: channels * stages basic events, one BDD. The
/// per-variable loop restricts and re-evaluates twice per event; the
/// sweep does one up pass and one down pass for all of them. The fixture
/// owns model and tree: the encoding's event pointers point into them.
struct BirnbaumFixture {
  Model model;
  FaultTree tree;
  BddEncoding encoding;

  explicit BirnbaumFixture(int channels)
      : model([channels] {
          synthetic::ReplicatedConfig config;
          config.channels = channels;
          config.stages = 6;
          return synthetic::build_replicated(config);
        }()),
        tree(Synthesiser(model).synthesise("Omission-sink")),
        encoding(encode_bdd(tree)) {}
};

BddEncoding& replicated_encoding(int channels) {
  static std::map<int, std::unique_ptr<BirnbaumFixture>> fixtures;
  std::unique_ptr<BirnbaumFixture>& slot = fixtures[channels];
  if (!slot) slot = std::make_unique<BirnbaumFixture>(channels);
  return slot->encoding;
}

void BM_BirnbaumPerVar(benchmark::State& state) {
  BddEncoding& encoding =
      replicated_encoding(static_cast<int>(state.range(0)));
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  const std::vector<double> probabilities = encoding.probabilities(options);
  double sum = 0.0;
  for (auto _ : state) {
    sum = 0.0;
    for (std::size_t v = 0; v < encoding.events.size(); ++v)
      sum += bdd_birnbaum(encoding.bdd, encoding.root, probabilities,
                          static_cast<int>(v));
  }
  state.counters["events"] = static_cast<double>(encoding.events.size());
  state.counters["bm_sum"] = sum;
}
BENCHMARK(BM_BirnbaumPerVar)->Arg(3)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

void BM_BirnbaumSweep(benchmark::State& state) {
  BddEncoding& encoding =
      replicated_encoding(static_cast<int>(state.range(0)));
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  const std::vector<double> probabilities = encoding.probabilities(options);
  double sum = 0.0;
  for (auto _ : state) {
    BddProbabilityEngine engine(encoding.bdd, probabilities);
    std::vector<double> birnbaum = engine.birnbaum_all(encoding.root);
    sum = 0.0;
    for (double bm : birnbaum) sum += bm;
    benchmark::DoNotOptimize(birnbaum.data());
  }
  state.counters["events"] = static_cast<double>(encoding.events.size());
  state.counters["bm_sum"] = sum;
}
BENCHMARK(BM_BirnbaumSweep)->Arg(3)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
