// Contention benchmarks for the sharded decision-diagram managers and the
// parallel bottom-up ZBDD conversion (DESIGN.md section 12).
//
// The fixture is a forest of independent adversarial cones: a top OR over
// `cones` subtrees with pairwise-disjoint basic events, where each cone is
// the (a1+b1)(a2+b2)...(an+bn) transversal product led by its absorbed
// spine a1...an. The spine forces the static DFS-occurrence order to group
// all a's before all b's, which makes every cone's product fold build an
// exponential intermediate diagram -- heavy, independent work per cone,
// which is exactly the shape the cone scheduler spreads across workers.
// The acceptance bar for this file is the 8-worker real-time speedup of
// BM_ParallelConvertForest over its 1-worker (serial, null-pool) baseline.
//
// The family is identical on every axis point by the byte-identity
// contract, so the cut_sets counter doubles as a correctness check: it
// must read cones * 2^pairs everywhere.
//
// UseRealTime everywhere: the work spreads across pool workers, so CPU
// time of the calling thread is meaningless as a progress measure.

#include <benchmark/benchmark.h>

#include <optional>
#include <thread>
#include <vector>

#include "analysis/cutsets.h"
#include "bdd/zbdd.h"
#include "core/thread_pool.h"
#include "fta/fault_tree.h"

namespace {

using namespace ftsynth;

// workers == 1 runs the genuine serial path (null pool), not a 1-thread
// pool, so the baseline has zero synchronisation overhead.
ThreadPool* pool_for(std::int64_t workers, std::optional<ThreadPool>& owned) {
  if (workers <= 1) return nullptr;
  owned.emplace(static_cast<int>(workers));
  return &*owned;
}

// Top OR over `cones` disjoint adversarial-product cones of `pairs` pairs
// each. Minimal cut sets: cones * 2^pairs transversals of size `pairs`.
FaultTree build_cone_forest(int cones, int pairs) {
  FaultTree tree("cone_forest");
  tree.set_top_description("Omission-forest");
  std::vector<FtNode*> cone_nodes;
  for (int c = 0; c < cones; ++c) {
    std::vector<FtNode*> spine;
    std::vector<FtNode*> factors;
    for (int j = 0; j < pairs; ++j) {
      const std::string suffix =
          "_" + std::to_string(c) + "_" + std::to_string(j);
      FtNode* a = tree.add_basic(Symbol("a" + suffix), 1e-4, "", "forest");
      FtNode* b = tree.add_basic(Symbol("b" + suffix), 1e-4, "", "forest");
      spine.push_back(a);
      factors.push_back(tree.add_gate(GateKind::kOr, "", {a, b}));
    }
    // The spine {a_c_0 ... a_c_n} is itself a transversal, so OR-ing it in
    // leaves the minimal family unchanged -- but depth-first occurrence
    // now groups every a before every b, the worst static order.
    FtNode* spine_gate = tree.add_gate(GateKind::kAnd, "", spine);
    FtNode* product = tree.add_gate(GateKind::kAnd, "", factors);
    cone_nodes.push_back(
        tree.add_gate(GateKind::kOr, "", {spine_gate, product}));
  }
  tree.set_top(tree.add_gate(GateKind::kOr, "", cone_nodes));
  return tree;
}

constexpr int kCones = 8;
constexpr int kPairs = 11;  // 2^11 sets per cone, 16384 total

// The headline series: parallel bottom-up conversion of the forest on the
// sharded ZBDD, static (worst-case) order, 1/2/4/8 workers. Every cone is
// one heavy independent gate task; the top OR join is a cheap union of
// disjoint-variable families.
void BM_ParallelConvertForest(benchmark::State& state) {
  static FaultTree tree = build_cone_forest(kCones, kPairs);
  std::optional<ThreadPool> owned;
  CutSetOptions options;
  options.engine = CutSetEngine::kZbdd;
  options.pool = pool_for(state.range(0), owned);
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = compute_cut_sets(tree, options);
    cut_sets = analysis.cut_sets.size();
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_ParallelConvertForest)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same forest under dynamic reordering: workers rendezvous for
// stop-the-world sifting whenever the table crosses the growth threshold,
// so this series prices the pause protocol on top of the parallel fold.
// Sifting recovers the interleaved per-cone order, so the workload is
// lighter overall than the static series -- the interesting number is the
// 8-vs-1 ratio, not the absolute time.
void BM_ParallelConvertForestSift(benchmark::State& state) {
  static FaultTree tree = build_cone_forest(kCones, kPairs);
  std::optional<ThreadPool> owned;
  CutSetOptions options;
  options.engine = CutSetEngine::kZbdd;
  options.order = OrderPolicy::kSift;
  options.pool = pool_for(state.range(0), owned);
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = compute_cut_sets(tree, options);
    cut_sets = analysis.cut_sets.size();
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_ParallelConvertForestSift)
    ->Arg(1)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Manager-level shard contention: T threads hammer ONE Zbdd with
// interleaved make/product/union over disjoint variable blocks. There is
// no algorithmic sharing between threads, so any slowdown relative to the
// single-thread series is pure synchronisation cost on the striped unique
// table and op caches -- the number the 64-way sharding is meant to keep
// flat.
void BM_ZbddShardContention(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kVarsPerThread = 16;
  constexpr int kRounds = 512;
  for (auto _ : state) {
    Zbdd zbdd;
    std::vector<std::vector<int>> vars(8);
    for (int t = 0; t < 8; ++t)
      for (int j = 0; j < kVarsPerThread; ++j) vars[t].push_back(zbdd.new_var());
    std::vector<Zbdd::Ref> results(static_cast<std::size_t>(threads));
    std::vector<std::thread> team;
    for (int t = 0; t < threads; ++t) {
      team.emplace_back([&, t] {
        const std::vector<int>& mine = vars[t % 8];
        Zbdd::Ref acc = zbdd.single(mine[0]);
        for (int round = 0; round < kRounds; ++round) {
          Zbdd::Ref prod = zbdd.single(mine[(round + 1) % kVarsPerThread]);
          for (int j = 0; j < 4; ++j) {
            prod = zbdd.product(
                prod, zbdd.single(mine[(round + j) % kVarsPerThread]));
          }
          acc = zbdd.set_union(acc, prod);
        }
        results[static_cast<std::size_t>(t)] = zbdd.minimal(acc);
      });
    }
    for (std::thread& worker : team) worker.join();
    benchmark::DoNotOptimize(results.data());
    state.counters["table_nodes"] = static_cast<double>(zbdd.table_size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          threads * kRounds);
}
BENCHMARK(BM_ZbddShardContention)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
