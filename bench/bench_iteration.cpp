// Experiment E7 (paper section 4, aim 3b): "how automatic fault tree
// synthesis simplifies the re-analysis of a system following a design
// iteration". The whole point of mechanical synthesis is that a design
// revision costs one re-run, not weeks of manual fault tree maintenance --
// this bench measures that re-run, and reports the safety deltas the
// revision buys as counters.

#include <benchmark/benchmark.h>

#include "analysis/report.h"
#include "casestudy/setta.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

void BM_ReanalysisAfterIteration(benchmark::State& state) {
  // state.range(0): 0 = baseline (1 sensor, 1 bus), 1 = revised design.
  const bool revised = state.range(0) == 1;
  state.SetLabel(revised ? "revised_3sensors_2buses" : "baseline_1sensor_1bus");
  AnalysisOptions options;
  options.probability.mission_time_hours = 1000.0;

  double p_total_braking = 0.0;
  std::size_t spofs = 0;
  for (auto _ : state) {
    // The full mechanical re-analysis: rebuild the (changed) model and
    // re-synthesise + re-analyse every top event.
    Model model = revised ? setta::build_bbw()
                          : setta::build_bbw_single_channel();
    Synthesiser synthesiser(model);
    for (const std::string& top : setta::bbw_top_events()) {
      FaultTree tree = synthesiser.synthesise(top);
      TreeAnalysis analysis = analyse_tree(tree, options);
      if (top == "Omission-total_braking") {
        p_total_braking = analysis.p_exact;
        spofs = analysis.common_cause.single_points_of_failure.size();
      }
    }
  }
  state.counters["p_total_braking_1000h"] = p_total_braking;
  state.counters["spofs_total_braking"] = static_cast<double>(spofs);
}
BENCHMARK(BM_ReanalysisAfterIteration)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalTopEventResynthesis(benchmark::State& state) {
  // After a local annotation edit, only the affected top events need a new
  // tree: the marginal cost of one tree on the revised design.
  Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  for (auto _ : state) {
    FaultTree tree = synthesiser.synthesise("Omission-total_braking");
    benchmark::DoNotOptimize(tree.top());
  }
}
BENCHMARK(BM_IncrementalTopEventResynthesis);

void BM_SafetyDeltaOfIteration(benchmark::State& state) {
  // Computes the improvement factor the revision buys on the catastrophic
  // hazard (reported as a counter; the time measured is the full compare).
  AnalysisOptions options;
  options.probability.mission_time_hours = 1000.0;
  double factor = 0.0;
  for (auto _ : state) {
    Model before = setta::build_bbw_single_channel();
    Model after = setta::build_bbw();
    FaultTree tree_before =
        Synthesiser(before).synthesise("Omission-total_braking");
    FaultTree tree_after =
        Synthesiser(after).synthesise("Omission-total_braking");
    const double p_before = exact_probability(tree_before, options.probability);
    const double p_after = exact_probability(tree_after, options.probability);
    factor = p_before / p_after;
  }
  state.counters["improvement_factor"] = factor;
  state.SetLabel("P(total braking loss): baseline / revised");
}
BENCHMARK(BM_SafetyDeltaOfIteration)->Unit(benchmark::kMillisecond);

}  // namespace
