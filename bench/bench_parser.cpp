// Experiment E2 (Figure 4 tool chain): throughput of the annotated-model
// text pipeline -- the export from the modelling tool and the parser that
// "performs syntactical analysis and interpretation of the model file and
// regenerates the model and the data structures required for the fault
// tree synthesis" (section 3).

#include <benchmark/benchmark.h>

#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "mdl/lexer.h"
#include "mdl/parser.h"
#include "mdl/writer.h"

namespace {

using namespace ftsynth;

void BM_WriteMdlChain(benchmark::State& state) {
  Model model = synthetic::build_chain(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string text = write_mdl(model);
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.counters["blocks"] = static_cast<double>(model.block_count());
}
BENCHMARK(BM_WriteMdlChain)->RangeMultiplier(4)->Range(16, 4096);

void BM_TokenizeChain(benchmark::State& state) {
  Model model = synthetic::build_chain(static_cast<int>(state.range(0)));
  const std::string text = write_mdl(model);
  for (auto _ : state) {
    auto tokens = mdl::tokenize(text);
    benchmark::DoNotOptimize(tokens.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_TokenizeChain)->RangeMultiplier(4)->Range(16, 4096);

void BM_ParseMdlChain(benchmark::State& state) {
  Model model = synthetic::build_chain(static_cast<int>(state.range(0)));
  const std::string text = write_mdl(model);
  for (auto _ : state) {
    Model reparsed = parse_mdl(text);
    benchmark::DoNotOptimize(reparsed.block_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["blocks"] = static_cast<double>(model.block_count());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParseMdlChain)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_ParseMdlBbw(benchmark::State& state) {
  Model model = setta::build_bbw();
  const std::string text = write_mdl(model);
  for (auto _ : state) {
    Model reparsed = parse_mdl(text);
    benchmark::DoNotOptimize(reparsed.block_count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["bytes"] = static_cast<double>(text.size());
  state.counters["blocks"] = static_cast<double>(model.block_count());
}
BENCHMARK(BM_ParseMdlBbw);

void BM_RoundTripBbw(benchmark::State& state) {
  Model model = setta::build_bbw();
  for (auto _ : state) {
    Model reparsed = parse_mdl(write_mdl(model));
    benchmark::DoNotOptimize(reparsed.block_count());
  }
}
BENCHMARK(BM_RoundTripBbw);

}  // namespace
