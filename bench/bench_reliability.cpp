// Experiment E8: reliability evaluation -- the role the paper assigns to
// Fault Tree Plus ("import those fault trees in Fault Tree Plus for
// further analysis and reliability evaluation"). Compares the evaluation
// methods (rare-event, Esary-Proschan, truncated inclusion-exclusion,
// exact BDD) on the demonstrator's trees, and produces the
// unavailability-vs-mission-time series.

#include <benchmark/benchmark.h>

#include "analysis/importance.h"
#include "analysis/probability.h"
#include "casestudy/setta.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

struct Fixture {
  Model model = setta::build_bbw();
  FaultTree tree = Synthesiser(model).synthesise("Omission-brake_force_fl");
  CutSetAnalysis cut_sets = minimal_cut_sets(tree);
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_RareEventBound(benchmark::State& state) {
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  double p = 0.0;
  for (auto _ : state) p = rare_event_bound(fixture().cut_sets, options);
  state.counters["p"] = p;
}
BENCHMARK(BM_RareEventBound);

void BM_EsaryProschanBound(benchmark::State& state) {
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  double p = 0.0;
  for (auto _ : state) p = esary_proschan_bound(fixture().cut_sets, options);
  state.counters["p"] = p;
}
BENCHMARK(BM_EsaryProschanBound);

void BM_InclusionExclusion(benchmark::State& state) {
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  double p = 0.0;
  for (auto _ : state) {
    p = inclusion_exclusion(fixture().cut_sets, options,
                            static_cast<std::size_t>(state.range(0)));
  }
  state.counters["p"] = p;
  state.counters["terms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_InclusionExclusion)->DenseRange(1, 4, 1);

void BM_ExactBdd(benchmark::State& state) {
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  double p = 0.0;
  for (auto _ : state) p = exact_probability(fixture().tree, options);
  state.counters["p"] = p;
}
BENCHMARK(BM_ExactBdd);

// Unavailability vs mission time: the classic reliability figure. One row
// per decade of mission time; p_* counters are the series.
void BM_UnavailabilityVsMissionTime(benchmark::State& state) {
  ProbabilityOptions options;
  options.mission_time_hours = static_cast<double>(state.range(0));
  double exact = 0.0;
  double rare = 0.0;
  for (auto _ : state) {
    exact = exact_probability(fixture().tree, options);
    rare = rare_event_bound(fixture().cut_sets, options);
  }
  state.counters["t_hours"] = options.mission_time_hours;
  state.counters["p_exact"] = exact;
  state.counters["p_rare_event"] = rare;
  state.SetLabel("Omission-brake_force_fl");
}
BENCHMARK(BM_UnavailabilityVsMissionTime)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ImportanceRankingBbw(benchmark::State& state) {
  ProbabilityOptions options;
  options.mission_time_hours = 1000.0;
  std::size_t entries = 0;
  for (auto _ : state) {
    std::vector<ImportanceEntry> ranking =
        importance_ranking(fixture().tree, fixture().cut_sets, options);
    entries = ranking.size();
    benchmark::DoNotOptimize(ranking.data());
  }
  state.counters["events"] = static_cast<double>(entries);
}
BENCHMARK(BM_ImportanceRankingBbw);

}  // namespace
