// The anytime bound engine (ISSUE 9): convergence-vs-time on the
// committed adversarial fixture shape (examples/bound_frontier.mdl built
// in code) against the exact ZBDD engine given ten times the node budget.
//
// The headline counters in BENCH_bound.json are the acceptance evidence:
// BM_BoundFrontierConverge reaches a certified interval of width well
// under 1e-3 in milliseconds (counters: width, converged, expansions),
// while BM_ZbddTenXNodeBudget -- the same tree, a node ceiling ten times
// the bound engine's whole expansion budget -- hits its ceiling and
// returns a truncated family (counter: truncated). The
// tools/compare_benchmarks.py --bound-report view gates on exactly these
// counters.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/cutsets.h"
#include "core/symbol.h"
#include "fta/fault_tree.h"

namespace {

using namespace ftsynth;

/// The bound engine's expansion budget; the ZBDD run gets a node ceiling
/// of ten times this number.
constexpr std::size_t kBoundExpansionBudget = 10'000;

/// OR of `ladder` independent AND pairs (the dominant mass) plus a spine
/// of 2^pairs minimal cut sets behind a 1e-6 guard, with a leading AND
/// chain that pins the DFS variable order to the grouped (exponential
/// diagram) order -- the examples/bound_frontier.mdl shape.
FaultTree frontier_tree(int ladder, int pairs) {
  FaultTree tree("bound_frontier");
  std::vector<FtNode*> disjuncts;
  for (int i = 0; i < ladder; ++i) {
    FtNode* a = tree.add_basic(Symbol("la" + std::to_string(i)), 0.05,
                               "ladder primary", "core");
    FtNode* b = tree.add_basic(Symbol("lb" + std::to_string(i)), 0.05,
                               "ladder backup", "core");
    disjuncts.push_back(tree.add_gate(GateKind::kAnd, "ladder pair", {a, b}));
  }
  FtNode* guard = tree.add_basic(Symbol("guard"), 1e-6, "guard", "core");
  if (pairs > 0) {
    std::vector<FtNode*> as, ors;
    for (int i = 0; i < pairs; ++i) {
      FtNode* a = tree.add_basic(Symbol("a" + std::to_string(i)), 0.02,
                                 "spine primary", "core");
      FtNode* b = tree.add_basic(Symbol("b" + std::to_string(i)), 0.02,
                                 "spine backup", "core");
      as.push_back(a);
      ors.push_back(tree.add_gate(GateKind::kOr, "spine pair", {a, b}));
    }
    FtNode* chain = tree.add_gate(GateKind::kAnd, "order-forcing chain", as);
    FtNode* product = tree.add_gate(GateKind::kAnd, "spine product", ors);
    FtNode* inner = tree.add_gate(GateKind::kOr, "spine", {chain, product});
    disjuncts.push_back(
        tree.add_gate(GateKind::kAnd, "guarded spine", {guard, inner}));
  } else {
    disjuncts.push_back(guard);
  }
  FtNode* top = tree.add_gate(GateKind::kOr, "top", std::move(disjuncts));
  tree.set_top(top);
  tree.set_top_description("Omission-sink");
  return tree;
}

void report_bound(benchmark::State& state, const CutSetAnalysis& analysis) {
  state.counters["cut_sets"] = static_cast<double>(analysis.cut_sets.size());
  state.counters["truncated"] = analysis.truncated ? 1.0 : 0.0;
  if (!analysis.p_lower || !analysis.p_upper) return;
  state.counters["p_lower"] = *analysis.p_lower;
  state.counters["width"] = *analysis.p_upper - *analysis.p_lower;
  state.counters["converged"] = analysis.converged ? 1.0 : 0.0;
  if (analysis.frontier_stats) {
    state.counters["expansions"] =
        static_cast<double>(analysis.frontier_stats->expansions);
    state.counters["emitted"] =
        static_cast<double>(analysis.frontier_stats->emitted);
  }
}

/// Anytime convergence on the adversarial tree at epsilon = 10^-range(0):
/// the convergence-vs-time regression view. Every point must stay
/// converged with width <= epsilon, within the fixed expansion budget.
void BM_BoundFrontierConverge(benchmark::State& state) {
  static FaultTree tree = frontier_tree(12, 20);
  const double epsilon = std::pow(10.0, -static_cast<double>(state.range(0)));
  state.SetLabel("bound_frontier/eps=1e-" + std::to_string(state.range(0)));
  CutSetOptions options;
  options.engine = CutSetEngine::kBound;
  options.bound_epsilon = epsilon;
  options.budget.max_nodes = kBoundExpansionBudget;
  CutSetAnalysis analysis;
  for (auto _ : state) {
    analysis = compute_cut_sets(tree, options);
    benchmark::DoNotOptimize(&analysis);
  }
  report_bound(state, analysis);
}
BENCHMARK(BM_BoundFrontierConverge)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

/// The exact ZBDD engine on the same tree with a node ceiling of ten
/// times the bound engine's whole expansion budget (the engine's ceiling
/// is 8 * max_sets + 2^16 nodes): the grouped variable order forces an
/// exponential diagram, the ceiling fires, and the family comes back
/// truncated -- no certified probability at ten times the budget.
void BM_ZbddTenXNodeBudget(benchmark::State& state) {
  static FaultTree tree = frontier_tree(12, 20);
  state.SetLabel("bound_frontier/zbdd_10x_nodes");
  CutSetOptions options;
  options.engine = CutSetEngine::kZbdd;
  options.max_sets = (10 * kBoundExpansionBudget - (1u << 16)) / 8;
  CutSetAnalysis analysis;
  for (auto _ : state) {
    analysis = compute_cut_sets(tree, options);
    benchmark::DoNotOptimize(&analysis);
  }
  report_bound(state, analysis);
}
BENCHMARK(BM_ZbddTenXNodeBudget)->Unit(benchmark::kMillisecond);

/// Exhaustion floor on a tractable tree (no spine): the bound engine run
/// with early stopping disabled must enumerate the same family as the
/// exact engines; this prices the best-first queue against the ZBDD on a
/// case both can finish.
void BM_BoundExhaustLadder(benchmark::State& state) {
  static FaultTree tree = frontier_tree(12, 0);
  state.SetLabel("ladder12/exhaust");
  CutSetOptions options;
  options.engine = CutSetEngine::kBound;
  options.bound_epsilon = -1.0;
  CutSetAnalysis analysis;
  for (auto _ : state) {
    analysis = compute_cut_sets(tree, options);
    benchmark::DoNotOptimize(&analysis);
  }
  report_bound(state, analysis);
}
BENCHMARK(BM_BoundExhaustLadder)->Unit(benchmark::kMillisecond);

}  // namespace
