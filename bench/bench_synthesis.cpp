// Experiment E5 (paper section 4, aim 2): synthesis scalability -- "the
// tool can operate on a complex Simulink model and synthesise a large
// fault tree" -- plus the DESIGN.md ablation of decision 1 (memoisation).
//
// Expected shape: near-linear synthesis time in model size (chain, deep,
// grid) because traversal targets are memoised; exponential blow-up when
// memoisation is disabled on the diamond ladder.

#include <benchmark/benchmark.h>

#include "casestudy/setta.h"
#include "failure/expr_parser.h"
#include "casestudy/synthetic.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

void BM_SynthesiseChain(benchmark::State& state) {
  Model model = synthetic::build_chain(static_cast<int>(state.range(0)));
  Synthesiser synthesiser(model);
  std::size_t nodes = 0;
  for (auto _ : state) {
    FaultTree tree = synthesiser.synthesise("Omission-sink");
    nodes = tree.stats().node_count;
    benchmark::DoNotOptimize(tree.top());
  }
  state.counters["blocks"] = static_cast<double>(model.block_count());
  state.counters["tree_nodes"] = static_cast<double>(nodes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SynthesiseChain)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_SynthesiseDeepHierarchy(benchmark::State& state) {
  Model model = synthetic::build_deep(static_cast<int>(state.range(0)), 4);
  Synthesiser synthesiser(model);
  std::size_t nodes = 0;
  for (auto _ : state) {
    FaultTree tree = synthesiser.synthesise("Omission-out");
    nodes = tree.stats().node_count;
    benchmark::DoNotOptimize(tree.top());
  }
  state.counters["blocks"] = static_cast<double>(model.block_count());
  state.counters["tree_nodes"] = static_cast<double>(nodes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SynthesiseDeepHierarchy)->RangeMultiplier(2)->Range(4, 256)
    ->Complexity(benchmark::oN);

// -- Ablation: memoisation on the diamond ladder --------------------------------

void BM_DiamondMemoised(benchmark::State& state) {
  Model model = synthetic::build_diamond(static_cast<int>(state.range(0)));
  Synthesiser synthesiser(model);
  std::size_t nodes = 0;
  for (auto _ : state) {
    FaultTree tree = synthesiser.synthesise("Omission-sink");
    nodes = tree.stats().node_count;
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_DiamondMemoised)->DenseRange(4, 20, 4);

void BM_DiamondUnmemoised(benchmark::State& state) {
  Model model = synthetic::build_diamond(static_cast<int>(state.range(0)));
  SynthesisOptions options;
  options.memoise = false;
  options.deduplicate = false;  // the raw ablation: a plain expanded tree
  Synthesiser synthesiser(model, options);
  std::size_t nodes = 0;
  for (auto _ : state) {
    FaultTree tree = synthesiser.synthesise("Omission-sink");
    nodes = tree.stats().node_count;
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
// 2^20 nodes would thrash; stop at depth 16.
BENCHMARK(BM_DiamondUnmemoised)->DenseRange(4, 16, 4);

// -- The real demonstrator -------------------------------------------------------

void BM_SynthesiseBbwTopEvent(benchmark::State& state) {
  Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  std::size_t nodes = 0;
  for (auto _ : state) {
    FaultTree tree = synthesiser.synthesise(top);
    nodes = tree.stats().node_count;
    benchmark::DoNotOptimize(tree.top());
  }
  state.counters["tree_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SynthesiseBbwTopEvent)->DenseRange(0, 15, 5);

void BM_SynthesiseBbwAllTopEventsParallel(benchmark::State& state) {
  Model model = setta::build_bbw();
  std::vector<Deviation> tops;
  for (const std::string& top : setta::bbw_top_events())
    tops.push_back(parse_deviation(top, model.registry()));
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<FaultTree> trees =
        synthesise_parallel(model, tops, {}, threads);
    benchmark::DoNotOptimize(trees.data());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["top_events"] = static_cast<double>(tops.size());
}
BENCHMARK(BM_SynthesiseBbwAllTopEventsParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SynthesiseBbwAllTopEvents(benchmark::State& state) {
  Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  std::size_t total_nodes = 0;
  for (auto _ : state) {
    total_nodes = 0;
    for (const std::string& top : tops) {
      FaultTree tree = synthesiser.synthesise(top);
      total_nodes += tree.stats().node_count;
    }
  }
  state.counters["top_events"] = static_cast<double>(tops.size());
  state.counters["total_tree_nodes"] = static_cast<double>(total_nodes);
}
BENCHMARK(BM_SynthesiseBbwAllTopEvents);

}  // namespace
