// Cone-cache benchmarks: what shared-subtree reuse is worth.
//
// Three cache states over the same workloads:
//
//   * no cache  -- every tree analysed from scratch (the PR 3 baseline);
//   * cold      -- a fresh cache per run: misses on first contact, but
//     cones shared ACROSS the top events of the run are analysed once
//     (the in-memory sharing a batch gets by default);
//   * warm      -- a pre-populated cache: every root family resolves by
//     lookup, the engines never run (what a re-run with `--cache DIR`
//     pays after an unchanged model).
//
// The cut-set counters must be identical down the state axis -- cached
// families are exact, so any divergence is a correctness bug, not noise.
// The committed BENCH_cache.json is the baseline the acceptance bar reads:
// warm BBW must be >= 3x faster than cold.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/cache.h"
#include "analysis/cutsets.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "failure/expr_parser.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

/// The 16 BBW hazard trees, synthesised once (synthesis is identical in
/// every cache state; these benchmarks time the cut-set stage only).
const std::vector<FaultTree>& bbw_trees() {
  static std::vector<FaultTree> trees = [] {
    Model model = setta::build_bbw();
    std::vector<FaultTree> out;
    Synthesiser synthesiser(model);
    for (const std::string& top : setta::bbw_top_events())
      out.push_back(
          synthesiser.synthesise(parse_deviation(top, model.registry())));
    return out;
  }();
  return trees;
}

/// A replicated-channel model: stages^channels structural copies, the
/// heaviest subtree sharing the synthetic generators produce.
const FaultTree& replicated_tree() {
  static Model model = [] {
    synthetic::ReplicatedConfig config;
    config.channels = 3;
    config.stages = 12;
    return synthetic::build_replicated(config);
  }();
  static FaultTree tree = Synthesiser(model).synthesise("Omission-sink");
  return tree;
}

std::size_t analyse_all(const std::vector<FaultTree>& trees,
                        ConeCache* cache) {
  CutSetOptions options;
  options.cone_cache = cache;
  std::size_t cut_sets = 0;
  for (const FaultTree& tree : trees)
    cut_sets += compute_cut_sets(tree, options).cut_sets.size();
  return cut_sets;
}

// Baseline: the 16-tree BBW batch with reuse disabled entirely.
void BM_BbwCutSetsNoCache(benchmark::State& state) {
  const std::vector<FaultTree>& trees = bbw_trees();
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    cut_sets = analyse_all(trees, nullptr);
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_BbwCutSetsNoCache)->Unit(benchmark::kMillisecond);

// Cold: a fresh cache per run. The gain over NoCache is pure in-memory
// cross-top-event sharing (BBW trees overlap heavily); the gap to Warm is
// the cost of the misses.
void BM_BbwCutSetsColdCache(benchmark::State& state) {
  const std::vector<FaultTree>& trees = bbw_trees();
  std::size_t cut_sets = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    ConeCache cache;
    cut_sets = analyse_all(trees, &cache);
    hits = cache.stats().hits;
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_BbwCutSetsColdCache)->Unit(benchmark::kMillisecond);

// Warm: the cache already holds every cone (an unchanged re-run under
// --cache DIR). Each tree resolves at the root lookup; the acceptance bar
// is >= 3x faster than ColdCache.
void BM_BbwCutSetsWarmCache(benchmark::State& state) {
  const std::vector<FaultTree>& trees = bbw_trees();
  static ConeCache cache;
  static std::size_t warmed = analyse_all(trees, &cache);
  benchmark::DoNotOptimize(warmed);
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    cut_sets = analyse_all(trees, &cache);
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
  state.counters["entries"] = static_cast<double>(cache.stats().entries);
}
BENCHMARK(BM_BbwCutSetsWarmCache)->Unit(benchmark::kMillisecond);

// Heavy structural sharing inside ONE tree: warm lookups replace the whole
// bottom-up combination pass of the replicated-voter model.
void BM_ReplicatedCutSetsNoCache(benchmark::State& state) {
  const FaultTree& tree = replicated_tree();
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    cut_sets = compute_cut_sets(tree).cut_sets.size();
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_ReplicatedCutSetsNoCache)->Unit(benchmark::kMillisecond);

void BM_ReplicatedCutSetsWarmCache(benchmark::State& state) {
  const FaultTree& tree = replicated_tree();
  static ConeCache cache;
  CutSetOptions options;
  options.cone_cache = &cache;
  static std::size_t warmed =
      compute_cut_sets(tree, options).cut_sets.size();
  benchmark::DoNotOptimize(warmed);
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    cut_sets = compute_cut_sets(tree, options).cut_sets.size();
    benchmark::DoNotOptimize(cut_sets);
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_ReplicatedCutSetsWarmCache)->Unit(benchmark::kMillisecond);

// The persistent layer round-trip: serialise the warmed BBW cache and
// adopt it back. This is the fixed per-run overhead `--cache DIR` adds,
// to be read against the Cold-vs-Warm saving above.
void BM_CacheSaveLoad(benchmark::State& state) {
  static ConeCache warmed;
  static std::size_t init = analyse_all(bbw_trees(), &warmed);
  benchmark::DoNotOptimize(init);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ftsynth_bench_cache")
          .string();
  std::size_t loaded = 0;
  for (auto _ : state) {
    warmed.save(dir, nullptr);
    ConeCache fresh;
    fresh.load(dir, nullptr);
    loaded = fresh.stats().entries;
    benchmark::DoNotOptimize(loaded);
  }
  std::filesystem::remove_all(dir);
  state.counters["entries"] = static_cast<double>(loaded);
}
BENCHMARK(BM_CacheSaveLoad)->Unit(benchmark::kMillisecond);

}  // namespace
