// Experiments E4/E6 (paper section 4, aims 1 and 3): the full SETTA
// demonstration pipeline -- model construction, integrated HW+SW fault
// tree synthesis, cut sets, reliability, common cause, completeness audit,
// exports -- timed end to end, per stage.

#include <benchmark/benchmark.h>

#include "analysis/completeness.h"
#include "analysis/report.h"
#include "casestudy/setta.h"
#include "ftp/ftp_writer.h"
#include "ftp/json_writer.h"
#include "ftp/xml_writer.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

void BM_BuildBbwModel(benchmark::State& state) {
  std::size_t blocks = 0;
  for (auto _ : state) {
    Model model = setta::build_bbw();
    blocks = model.block_count();
    benchmark::DoNotOptimize(&model);
  }
  state.counters["blocks"] = static_cast<double>(blocks);
}
BENCHMARK(BM_BuildBbwModel);

void BM_AnalyseBbwTopEvent(benchmark::State& state) {
  static Model model = setta::build_bbw();
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  AnalysisOptions options;
  options.probability.mission_time_hours = 1000.0;
  double p_exact = 0.0;
  std::size_t cut_sets = 0;
  std::size_t spofs = 0;
  for (auto _ : state) {
    Synthesiser synthesiser(model);
    FaultTree tree = synthesiser.synthesise(top);
    TreeAnalysis analysis = analyse_tree(tree, options);
    p_exact = analysis.p_exact;
    cut_sets = analysis.cut_sets.cut_sets.size();
    spofs = analysis.common_cause.single_points_of_failure.size();
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
  state.counters["spofs"] = static_cast<double>(spofs);
  state.counters["p_exact_1000h"] = p_exact;
}
BENCHMARK(BM_AnalyseBbwTopEvent)->DenseRange(0, 15, 1);

void BM_CompletenessAuditBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  std::size_t findings = 0;
  for (auto _ : state) {
    findings = audit_completeness(model).size();
  }
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_CompletenessAuditBbw);

void BM_ExportBbwProject(benchmark::State& state) {
  static Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  std::vector<FaultTree> trees;
  for (const std::string& top : setta::bbw_top_events())
    trees.push_back(synthesiser.synthesise(top));
  std::vector<const FaultTree*> pointers;
  for (const FaultTree& tree : trees) pointers.push_back(&tree);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string ftp = write_ftp_project("bbw", pointers);
    std::string xml = write_xml(pointers);
    std::string json = write_json(trees.front());
    bytes = ftp.size() + xml.size() + json.size();
    benchmark::DoNotOptimize(ftp.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ExportBbwProject);

void BM_FullDemonstrationPipeline(benchmark::State& state) {
  // Everything the conference demo does: build, synthesise every top
  // event, analyse, export.
  AnalysisOptions options;
  options.probability.mission_time_hours = 1000.0;
  for (auto _ : state) {
    Model model = setta::build_bbw();
    Synthesiser synthesiser(model);
    double total_p = 0.0;
    for (const std::string& top : setta::bbw_top_events()) {
      FaultTree tree = synthesiser.synthesise(top);
      TreeAnalysis analysis = analyse_tree(tree, options);
      total_p += analysis.p_exact;
    }
    benchmark::DoNotOptimize(total_p);
  }
}
BENCHMARK(BM_FullDemonstrationPipeline);

}  // namespace
