// Service-layer benchmarks: what the warm daemon is worth.
//
// The daemon's pitch is that an engineer's edit-analyse loop stops paying
// the whole pipeline per run. These benchmarks put numbers on that, with
// the cache-bench methodology (cold/warm axes over the same BBW
// workload):
//
//   * cold process  -- a fresh cold ServiceRunner per iteration: parse,
//     synthesis, cut sets, probabilities from scratch. This is what
//     `ftsynth analyse` costs per invocation today.
//   * cold + disk cache -- a fresh runner per iteration over a populated
//     `--cache DIR`: the crash-recovery path, i.e. what a SIGKILLed
//     daemon's replacement pays on its first request after adopting the
//     last good save.
//   * warm daemon   -- one resident warm runner: an unchanged request on
//     unchanged model bytes is replayed from the response memo (the
//     probability and importance stages dominate an analyse request and
//     sit outside the cone cache's reach, so memoising the full result
//     is what makes the warm daemon fast end to end). This is the
//     steady-state per-request cost `ftsynth serve` answers with.
//   * warm recompute -- the same resident runner with the memo bypassed
//     (--verbose does that): the post-edit path, where the model and
//     cone caches still apply but probability re-runs.
//
// Output bytes are identical down the whole axis (the service tests
// enforce it), so the `output_bytes` counter doubles as a correctness
// canary: any divergence is a bug, not noise. The committed
// BENCH_service.json is the baseline the acceptance bar reads: the warm
// daemon must answer the BBW analyse batch >= 5x faster than a cold
// process per run (tools/compare_benchmarks.py --service-report).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "casestudy/setta.h"
#include "mdl/writer.h"
#include "service/runner.h"

namespace {

using namespace ftsynth;
using service::ServiceRequest;
using service::ServiceResult;
using service::ServiceRunner;

const std::string& bbw_model_path() {
  static const std::string path = [] {
    const std::string file =
        (std::filesystem::temp_directory_path() / "ftsynth_bench_service.mdl")
            .string();
    write_mdl_file(setta::build_bbw(), file);
    return file;
  }();
  return path;
}

/// The BBW analyse batch: every annotated top event, default engine.
/// jobs = 1 on both axes so the ratio measures the warm state, not the
/// pool.
ServiceRequest analyse_request() {
  ServiceRequest request;
  request.command = "analyse";
  request.model_path = bbw_model_path();
  request.jobs = 1;
  return request;
}

void expect_clean(const ServiceResult& result, benchmark::State& state) {
  if (result.exit_code != 0) state.SkipWithError("analysis failed");
}

// Cold: process-per-run. A fresh runner pays the full pipeline each time.
void BM_ServiceBbwAnalyseColdProcess(benchmark::State& state) {
  const ServiceRequest request = analyse_request();
  std::size_t bytes = 0;
  for (auto _ : state) {
    ServiceRunner runner;
    const ServiceResult result = runner.execute(request);
    expect_clean(result, state);
    bytes = result.output.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["output_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceBbwAnalyseColdProcess)->Unit(benchmark::kMillisecond);

// Cold + disk cache: the crash-recovery path. Still a fresh runner per
// iteration (parse + synthesis are re-paid) but the cut-set stage adopts
// the persistent cone cache a previous daemon saved.
void BM_ServiceBbwAnalyseColdWithDiskCache(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ftsynth_bench_service_cache")
          .string();
  ServiceRunner::Options options;
  options.cache_dir = dir;
  {
    // One unmeasured run populates the directory (the "last good save").
    ServiceRunner seeder(options);
    seeder.execute(analyse_request());
  }
  const ServiceRequest request = analyse_request();
  std::size_t bytes = 0;
  for (auto _ : state) {
    ServiceRunner runner(options);
    const ServiceResult result = runner.execute(request);
    expect_clean(result, state);
    bytes = result.output.size();
    benchmark::DoNotOptimize(bytes);
  }
  std::filesystem::remove_all(dir);
  state.counters["output_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceBbwAnalyseColdWithDiskCache)->Unit(benchmark::kMillisecond);

// Warm: the resident daemon runner. The first request (unmeasured) fills
// the model and cone caches; every measured one is the steady-state
// request latency `ftsynth serve` answers with.
void BM_ServiceBbwAnalyseWarmDaemon(benchmark::State& state) {
  static ServiceRunner runner([] {
    ServiceRunner::Options options;
    options.warm = true;
    options.jobs = 1;
    return options;
  }());
  const ServiceRequest request = analyse_request();
  static ServiceResult warmed = runner.execute(request);
  benchmark::DoNotOptimize(warmed);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const ServiceResult result = runner.execute(request);
    expect_clean(result, state);
    bytes = result.output.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["output_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceBbwAnalyseWarmDaemon)->Unit(benchmark::kMillisecond);

// Warm recompute: the resident runner with the response memo bypassed
// (--verbose requests are never memoised). This is what a request costs
// right after an edit invalidates the memo: parse and cut sets come from
// the warm caches, probability and rendering re-run. Excluded from the
// speedup table (no Cold*/WarmDaemon suffix) but committed in the JSON
// so the middle layer's cost stays on the record.
void BM_ServiceBbwAnalyseWarmRecompute(benchmark::State& state) {
  static ServiceRunner runner([] {
    ServiceRunner::Options options;
    options.warm = true;
    options.jobs = 1;
    return options;
  }());
  ServiceRequest request = analyse_request();
  request.verbose = true;
  static ServiceResult warmed = runner.execute(request);
  benchmark::DoNotOptimize(warmed);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const ServiceResult result = runner.execute(request);
    expect_clean(result, state);
    bytes = result.output.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["output_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceBbwAnalyseWarmRecompute)->Unit(benchmark::kMillisecond);

// The same axis for FMEA -- the heaviest command the daemon serves (every
// derivable top event of the model).
void BM_ServiceBbwFmeaColdProcess(benchmark::State& state) {
  ServiceRequest request = analyse_request();
  request.command = "fmea";
  std::size_t bytes = 0;
  for (auto _ : state) {
    ServiceRunner runner;
    const ServiceResult result = runner.execute(request);
    expect_clean(result, state);
    bytes = result.output.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["output_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceBbwFmeaColdProcess)->Unit(benchmark::kMillisecond);

void BM_ServiceBbwFmeaWarmDaemon(benchmark::State& state) {
  static ServiceRunner runner([] {
    ServiceRunner::Options options;
    options.warm = true;
    options.jobs = 1;
    return options;
  }());
  ServiceRequest request = analyse_request();
  request.command = "fmea";
  static ServiceResult warmed = runner.execute(request);
  benchmark::DoNotOptimize(warmed);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const ServiceResult result = runner.execute(request);
    expect_clean(result, state);
    bytes = result.output.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["output_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ServiceBbwFmeaWarmDaemon)->Unit(benchmark::kMillisecond);

}  // namespace
