// Experiment E9: the validation substrate. Forward propagation throughput
// on the demonstrator, and Monte Carlo fault-injection convergence towards
// the exact tree probability (the agreement the property tests check
// exhaustively on small models, here measured statistically at scale).

#include <benchmark/benchmark.h>

#include <cmath>

#include "analysis/probability.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "fta/synthesis.h"
#include "sim/monte_carlo.h"
#include "sim/propagation.h"

namespace {

using namespace ftsynth;

void BM_PropagateBbwSingleScenario(benchmark::State& state) {
  static Model model = setta::build_bbw();
  PropagationEngine engine(model);
  std::unordered_set<Symbol> active{Symbol("bbw/bus_a.bus_failure"),
                                    Symbol("bbw/pedal_sensor_1.stuck")};
  std::size_t deviations = 0;
  for (auto _ : state) {
    PropagationResult result = engine.propagate(active);
    deviations = result.system_output_deviations().size();
  }
  state.counters["output_deviations"] = static_cast<double>(deviations);
}
BENCHMARK(BM_PropagateBbwSingleScenario);

void BM_MonteCarloBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  MonteCarloOptions options;
  options.trials = static_cast<std::size_t>(state.range(0));
  options.probability.mission_time_hours = 1000.0;
  const Deviation top{model.registry().omission(),
                      Symbol("brake_force_fl")};
  MonteCarloResult result;
  for (auto _ : state) {
    result = simulate_top_event(model, top, options);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(options.trials));
  state.counters["estimate"] = result.estimate;
  state.counters["std_error"] = result.std_error;
}
BENCHMARK(BM_MonteCarloBbw)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Convergence: |MC - exact| must shrink ~ 1/sqrt(trials). The counters
// give the series for the validation figure.
void BM_MonteCarloConvergence(benchmark::State& state) {
  static Model model = setta::build_bbw();
  static FaultTree tree =
      Synthesiser(model).synthesise("Omission-brake_force_fl");
  MonteCarloOptions options;
  options.trials = static_cast<std::size_t>(state.range(0));
  options.probability.mission_time_hours = 1000.0;
  const double exact = exact_probability(tree, options.probability);
  const Deviation top{model.registry().omission(),
                      Symbol("brake_force_fl")};
  double error = 0.0;
  MonteCarloResult result;
  for (auto _ : state) {
    result = simulate_top_event(model, top, options);
    error = std::abs(result.estimate - exact);
  }
  state.counters["exact"] = exact;
  state.counters["estimate"] = result.estimate;
  state.counters["abs_error"] = error;
  state.counters["std_error"] = result.std_error;
}
BENCHMARK(BM_MonteCarloConvergence)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_PropagateSyntheticScale(benchmark::State& state) {
  synthetic::RandomModelConfig config;
  config.blocks = static_cast<int>(state.range(0));
  config.seed = 99;
  Model model = synthetic::build_random(config);
  PropagationEngine engine(model);
  std::unordered_set<Symbol> active{Symbol("env:Omission-env1")};
  for (auto _ : state) {
    PropagationResult result = engine.propagate(active);
    benchmark::DoNotOptimize(&result);
  }
  state.counters["blocks"] = static_cast<double>(model.block_count());
}
BENCHMARK(BM_PropagateSyntheticScale)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
