// Dynamic variable reordering (ISSUE 5): static DFS-occurrence order vs
// Rudell sifting on the committed adversarial fixtures and the BBW case
// study. The headline counters are the ZBDD node counts the ReorderReport
// publishes -- BENCH_reorder.json is the acceptance evidence that sifting
// shrinks the adversarial root diagram by >= 2x (measured: ~100x+) while
// the analysis output stays byte-identical.

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/cutsets.h"
#include "bdd/zbdd.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

void report(benchmark::State& state, const CutSetAnalysis& analysis) {
  state.counters["cut_sets"] =
      static_cast<double>(analysis.cut_sets.size());
  if (!analysis.reorder) return;
  state.counters["root_nodes"] =
      static_cast<double>(analysis.reorder->root_nodes);
  state.counters["live_nodes"] =
      static_cast<double>(analysis.reorder->nodes_after);
  state.counters["swaps"] = static_cast<double>(analysis.reorder->swaps);
  state.counters["passes"] = static_cast<double>(analysis.reorder->passes);
}

OrderPolicy policy_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 1:
      return OrderPolicy::kSift;
    case 2:
      return OrderPolicy::kSiftConverge;
    default:
      return OrderPolicy::kStatic;
  }
}

void set_policy_label(benchmark::State& state, const std::string& fixture) {
  state.SetLabel(fixture + "/" + to_string(policy_of(state)));
}

/// The committed examples/adversarial_product.mdl shape (n = 12 pairs):
/// 2^12 transversal cut sets, exponential static diagram, linear sifted.
void BM_AdversarialProduct(benchmark::State& state) {
  static Model model = synthetic::build_adversarial_product(12);
  set_policy_label(state, "adversarial_product_n12");
  Synthesiser synthesiser(model);
  FaultTree tree = synthesiser.synthesise("Omission-sink");
  CutSetOptions options;
  options.engine = CutSetEngine::kZbdd;
  options.order = policy_of(state);
  CutSetAnalysis analysis;
  for (auto _ : state) {
    analysis = compute_cut_sets(tree, options);
    benchmark::DoNotOptimize(&analysis);
  }
  report(state, analysis);
}
BENCHMARK(BM_AdversarialProduct)->DenseRange(0, 2, 1)
    ->Unit(benchmark::kMillisecond);

/// The committed examples/adversarial_voters.mdl shape (6 x 2oo3 stages):
/// 3^6 cut sets, role-grouped static order vs per-stage interleaving.
void BM_AdversarialVoters(benchmark::State& state) {
  static Model model = synthetic::build_adversarial_voters(6);
  set_policy_label(state, "adversarial_voters_k6");
  Synthesiser synthesiser(model);
  FaultTree tree = synthesiser.synthesise("Omission-sink");
  CutSetOptions options;
  options.engine = CutSetEngine::kZbdd;
  options.order = policy_of(state);
  CutSetAnalysis analysis;
  for (auto _ : state) {
    analysis = compute_cut_sets(tree, options);
    benchmark::DoNotOptimize(&analysis);
  }
  report(state, analysis);
}
BENCHMARK(BM_AdversarialVoters)->DenseRange(0, 2, 1)
    ->Unit(benchmark::kMillisecond);

/// A well-ordered real model: the reordering overhead floor. Sifting should
/// cost little and change little on the BBW braking tree.
void BM_BbwTotalBraking(benchmark::State& state) {
  static Model model = setta::build_bbw();
  set_policy_label(state, "bbw_total_braking");
  Synthesiser synthesiser(model);
  FaultTree tree = synthesiser.synthesise("Omission-brake_force_fl");
  CutSetOptions options;
  options.engine = CutSetEngine::kZbdd;
  options.order = policy_of(state);
  CutSetAnalysis analysis;
  for (auto _ : state) {
    analysis = compute_cut_sets(tree, options);
    benchmark::DoNotOptimize(&analysis);
  }
  report(state, analysis);
}
BENCHMARK(BM_BbwTotalBraking)->DenseRange(0, 2, 1)
    ->Unit(benchmark::kMillisecond);

/// The manager-level primitive in isolation: sifting the grouped
/// transversal family built directly in a Zbdd (no synthesis, no engine).
void BM_SiftGroupedFamily(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  std::size_t before = 0;
  std::size_t after = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Zbdd zbdd;
    for (int i = 0; i < 2 * pairs; ++i) zbdd.new_var();
    Zbdd::Ref family = Zbdd::kBase;
    for (int i = 0; i < pairs; ++i)
      family = zbdd.product(
          family, zbdd.set_union(zbdd.single(i), zbdd.single(pairs + i)));
    before = zbdd.node_count(family);
    state.ResumeTiming();
    SiftStats stats = zbdd.sift({family});
    benchmark::DoNotOptimize(&stats);
    after = zbdd.node_count(family);
  }
  state.SetLabel("grouped_product_n" + std::to_string(pairs));
  state.counters["nodes_static"] = static_cast<double>(before);
  state.counters["nodes_sifted"] = static_cast<double>(after);
}
BENCHMARK(BM_SiftGroupedFamily)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
