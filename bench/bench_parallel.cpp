// Parallel scaling benchmarks for the thread-pooled analysis engine.
//
// Every stage below is run at 1/2/4/8 workers over the same inputs; the
// 1-worker case is the serial baseline (null pool), so the reported
// real-time ratios are the speedup curves of DESIGN.md's "Parallel
// execution model" section. All parallel paths are deterministic -- the
// counters (probabilities, cut-set counts, MC estimates) must be
// bit-identical across the worker axis; a divergence is a correctness bug,
// not noise.
//
// UseRealTime everywhere: the work spreads across pool workers, so CPU
// time of the calling thread is meaningless as a progress measure.

#include <benchmark/benchmark.h>

#include <optional>

#include "analysis/batch.h"
#include "analysis/cutsets.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "core/thread_pool.h"
#include "failure/expr_parser.h"
#include "fta/synthesis.h"
#include "sim/monte_carlo.h"

namespace {

using namespace ftsynth;

// workers == 1 runs the genuine serial path (null pool), not a 1-thread
// pool, so the baseline has zero synchronisation overhead.
ThreadPool* pool_for(std::int64_t workers, std::optional<ThreadPool>& owned) {
  if (workers <= 1) return nullptr;
  owned.emplace(static_cast<int>(workers));
  return &*owned;
}

std::vector<Deviation> bbw_tops(const Model& model) {
  std::vector<Deviation> tops;
  for (const std::string& top : setta::bbw_top_events())
    tops.push_back(parse_deviation(top, model.registry()));
  return tops;
}

// The full per-top-event pipeline (synthesis + cut sets + probability +
// importance) over all 16 BBW hazards, batched on the pool. This is the
// headline workload: the paper's evaluation loop, end to end.
void BM_BatchAnalyseBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  static std::vector<Deviation> tops = bbw_tops(model);
  std::optional<ThreadPool> owned;
  ThreadPool* pool = pool_for(state.range(0), owned);
  BatchOptions options;
  options.analysis.probability.mission_time_hours = 1000.0;
  double p_total = 0.0;
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    BatchResult result = analyse_batch(model, tops, options, pool);
    p_total = 0.0;
    cut_sets = 0;
    for (const BatchItem& item : result.items) {
      p_total += item.analysis->p_exact;
      cut_sets += item.analysis->cut_sets.cut_sets.size();
    }
    benchmark::DoNotOptimize(p_total);
  }
  state.counters["p_total_1000h"] = p_total;
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_BatchAnalyseBbw)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Synthesis only (no downstream analysis): the lightest per-item stage,
// so the least favourable parallel surface -- measures pool overhead.
void BM_SynthesiseParallelBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  static std::vector<Deviation> tops = bbw_tops(model);
  std::optional<ThreadPool> owned;
  ThreadPool* pool = pool_for(state.range(0), owned);
  std::size_t nodes = 0;
  for (auto _ : state) {
    std::vector<FaultTree> trees =
        synthesise_parallel(model, tops, SynthesisOptions{}, pool);
    nodes = 0;
    for (const FaultTree& tree : trees) nodes += tree.stats().node_count;
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SynthesiseParallelBbw)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Sharded Monte Carlo: 64 counter-seeded RNG streams executed on the
// pool. The estimate is a function of (seed, shards, trials) only, so the
// "estimate" counter is constant across the worker axis by construction.
void BM_ShardedMonteCarloBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  static const Deviation top{model.registry().omission(),
                             Symbol("brake_force_fl")};
  std::optional<ThreadPool> owned;
  ThreadPool* pool = pool_for(state.range(0), owned);
  MonteCarloOptions options;
  options.trials = 5000;
  options.shards = 64;
  options.probability.mission_time_hours = 1000.0;
  MonteCarloResult result;
  for (auto _ : state) {
    result = simulate_top_event(model, top, options, pool);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(options.trials));
  state.counters["estimate"] = result.estimate;
  state.counters["std_error"] = result.std_error;
}
BENCHMARK(BM_ShardedMonteCarloBbw)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The quadratic subsumption pass in minimise(), parallelised over blocks
// of candidates. The replicated-voter model produces thousands of working
// sets (stages^channels combinations at the voting AND), which is where
// the block screening dominates the cut-set run time.
void BM_ParallelMinimiseReplicated(benchmark::State& state) {
  static Model model = [] {
    synthetic::ReplicatedConfig config;
    config.channels = 3;
    config.stages = 12;
    return synthetic::build_replicated(config);
  }();
  static FaultTree tree = Synthesiser(model).synthesise("Omission-sink");
  std::optional<ThreadPool> owned;
  CutSetOptions options;
  options.pool = pool_for(state.range(0), owned);
  std::size_t cut_sets = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = minimal_cut_sets(tree, options);
    cut_sets = analysis.cut_sets.size();
    peak = analysis.peak_sets;
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
  state.counters["peak_sets"] = static_cast<double>(peak);
}
BENCHMARK(BM_ParallelMinimiseReplicated)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The symbolic engine on the same tree as BM_ParallelMinimiseReplicated:
// the single-threaded ZBDD is the engine-comparison baseline for the
// worker-axis series above (it never enumerates the intermediate sets the
// block screening has to subsume, so it needs no pool at all). The
// cut_sets counter must equal the parallel series' -- same canonical
// family by contract.
void BM_ZbddMinimiseReplicated(benchmark::State& state) {
  static Model model = [] {
    synthetic::ReplicatedConfig config;
    config.channels = 3;
    config.stages = 12;
    return synthetic::build_replicated(config);
  }();
  static FaultTree tree = Synthesiser(model).synthesise("Omission-sink");
  std::size_t cut_sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = zbdd_cut_sets(tree);
    cut_sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(cut_sets);
}
BENCHMARK(BM_ZbddMinimiseReplicated)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
