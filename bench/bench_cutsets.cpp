// Experiment E5 (analysis side): cost of the downstream cut-set analysis
// that the paper delegates to Fault Tree Plus, comparing the 2001-era
// top-down MOCUS engine against the bottom-up engine, the symbolic ZBDD
// engine and the exact BDD encoding on the same synthesized trees.
//
// Expected shape: MOCUS's working set (rows) grows combinatorially with
// the number of AND-combined replicated lanes, the bottom-up engine with
// early absorption pays for every intermediate set, and the decision
// diagrams stay polynomial in the diagram size.
//
// The file also A/B-tests the subsumption kernel itself: the interned
// word-array bitset representation against the sorted literal-vector
// representation it replaced (kept here as a local replica).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "analysis/cutsets.h"
#include "analysis/probability.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

FaultTree replicated_tree(int channels, int stages) {
  synthetic::ReplicatedConfig config;
  config.channels = channels;
  config.stages = stages;
  Model model = synthetic::build_replicated(config);
  SynthesisOptions options;
  options.environment = SynthesisOptions::EnvironmentPolicy::kPrune;
  // The returned tree is self-contained (leaf names and rates are copied),
  // so the model can die with this scope.
  return Synthesiser(model, options).synthesise("Omission-sink");
}

void BM_BottomUpReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = minimal_cut_sets(tree);
    sets = analysis.cut_sets.size();
    peak = analysis.peak_sets;
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
  state.counters["peak_sets"] = static_cast<double>(peak);
}
BENCHMARK(BM_BottomUpReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_MocusReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = mocus_cut_sets(tree);
    sets = analysis.cut_sets.size();
    peak = analysis.peak_sets;
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
  state.counters["peak_sets"] = static_cast<double>(peak);
}
BENCHMARK(BM_MocusReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_BddCutSetsReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = bdd_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_BddCutSetsReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_ZbddReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = zbdd_cut_sets(tree);
    sets = analysis.cut_sets.size();
    peak = analysis.peak_sets;
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
  state.counters["peak_nodes"] = static_cast<double>(peak);
}
BENCHMARK(BM_ZbddReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_BddEncodeReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t nodes = 0;
  for (auto _ : state) {
    BddEncoding encoding = encode_bdd(tree);
    nodes = encoding.bdd.node_count(encoding.root);
    benchmark::DoNotOptimize(encoding.root);
  }
  state.counters["bdd_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BddEncodeReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

// -- On the demonstrator's trees -------------------------------------------------

void BM_CutSetsBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  FaultTree tree = synthesiser.synthesise(top);
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = minimal_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
// Index 12 is Omission-total_braking: the largest synthesized tree in the
// demonstrator (an AND over four replicated brake lanes), and the headline
// engine comparison against BM_ZbddBbw/12.
BENCHMARK(BM_CutSetsBbw)->DenseRange(0, 15, 5)->Arg(12);

void BM_MocusBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  FaultTree tree = synthesiser.synthesise(top);
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = mocus_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
// No Arg(12) here: MOCUS's row expansion on the four-lane AND of
// Omission-total_braking runs for minutes and truncates at max_sets --
// the set-limit tests cover that behaviour; timing it teaches nothing.
BENCHMARK(BM_MocusBbw)->DenseRange(0, 15, 5);

void BM_ZbddBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  FaultTree tree = synthesiser.synthesise(top);
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = zbdd_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_ZbddBbw)->DenseRange(0, 15, 5)->Arg(12);

// -- Subsumption kernel A/B ------------------------------------------------------
//
// The minimisation workload isolated from any engine: N random sets of
// 3..7 literals. `Bitset` runs the production interned-bitset kernel
// (word loops + signature pre-filter + popcount bucketing + contiguous
// signature sidecar); `Vector` is a replica of the sorted literal-vector
// kernel it replaced (std::includes subset tests, signature pre-filter,
// full kept scan). Only plain-polarity (even) ids are drawn, so no set is
// dropped as contradictory and both kernels process identical families.
// Sizes start at 3 because single literals make minimisation trivial
// (every singleton absorbs all its supersets on sight): mid-order sets
// are what the voting-AND families look like, and they keep the
// quadratic subsumption scan -- the part being A/B-tested -- hot.

std::vector<std::vector<int>> random_literal_sets(std::size_t count,
                                                  int events) {
  std::mt19937 rng(20010623u);
  std::uniform_int_distribution<int> event(0, events - 1);
  std::uniform_int_distribution<int> size(3, 7);
  std::vector<std::vector<int>> sets(count);
  for (std::vector<int>& set : sets) {
    const int n = size(rng);
    for (int i = 0; i < n; ++i) set.push_back(2 * event(rng));
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  return sets;
}

/// The pre-bitset kernel: sorted literal vectors with a 64-bit signature.
std::vector<std::vector<int>> vector_minimise(
    std::vector<std::vector<int>> sets) {
  struct Entry {
    std::vector<int> literals;
    std::uint64_t signature = 0;
  };
  std::vector<Entry> work;
  work.reserve(sets.size());
  for (std::vector<int>& literals : sets) {
    Entry entry{std::move(literals), 0};
    for (int lit : entry.literals) entry.signature |= 1ULL << (lit % 64);
    work.push_back(std::move(entry));
  }
  std::sort(work.begin(), work.end(), [](const Entry& a, const Entry& b) {
    if (a.literals.size() != b.literals.size())
      return a.literals.size() < b.literals.size();
    return a.literals < b.literals;
  });
  std::vector<Entry> kept;
  for (Entry& candidate : work) {
    bool subsumed = false;
    for (const Entry& small : kept) {
      if ((small.signature & ~candidate.signature) != 0) continue;
      if (std::includes(candidate.literals.begin(), candidate.literals.end(),
                        small.literals.begin(), small.literals.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(std::move(candidate));
  }
  std::vector<std::vector<int>> out;
  out.reserve(kept.size());
  for (Entry& entry : kept) out.push_back(std::move(entry.literals));
  return out;
}

void BM_SubsumptionKernelBitset(benchmark::State& state) {
  const std::vector<std::vector<int>> sets =
      random_literal_sets(static_cast<std::size_t>(state.range(0)), 96);
  std::size_t kept = 0;
  for (auto _ : state) {
    kept = minimise_literal_sets(sets, 192).size();
  }
  state.counters["kept"] = static_cast<double>(kept);
}
BENCHMARK(BM_SubsumptionKernelBitset)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_SubsumptionKernelVector(benchmark::State& state) {
  const std::vector<std::vector<int>> sets =
      random_literal_sets(static_cast<std::size_t>(state.range(0)), 96);
  std::size_t kept = 0;
  for (auto _ : state) {
    kept = vector_minimise(sets).size();
  }
  state.counters["kept"] = static_cast<double>(kept);
}
BENCHMARK(BM_SubsumptionKernelVector)->Arg(4000)->Arg(16000)->Arg(64000);

}  // namespace
