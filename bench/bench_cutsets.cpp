// Experiment E5 (analysis side): cost of the downstream cut-set analysis
// that the paper delegates to Fault Tree Plus, comparing the 2001-era
// top-down MOCUS engine against the bottom-up engine and the exact BDD
// encoding on the same synthesized trees.
//
// Expected shape: MOCUS's working set (rows) grows combinatorially with
// the number of AND-combined replicated lanes, while the bottom-up engine
// with early absorption and the BDD stay small.

#include <benchmark/benchmark.h>

#include "analysis/cutsets.h"
#include "analysis/probability.h"
#include "casestudy/setta.h"
#include "casestudy/synthetic.h"
#include "fta/synthesis.h"

namespace {

using namespace ftsynth;

FaultTree replicated_tree(int channels, int stages) {
  synthetic::ReplicatedConfig config;
  config.channels = channels;
  config.stages = stages;
  Model model = synthetic::build_replicated(config);
  SynthesisOptions options;
  options.environment = SynthesisOptions::EnvironmentPolicy::kPrune;
  // The returned tree is self-contained (leaf names and rates are copied),
  // so the model can die with this scope.
  return Synthesiser(model, options).synthesise("Omission-sink");
}

void BM_BottomUpReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = minimal_cut_sets(tree);
    sets = analysis.cut_sets.size();
    peak = analysis.peak_sets;
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
  state.counters["peak_sets"] = static_cast<double>(peak);
}
BENCHMARK(BM_BottomUpReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_MocusReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  std::size_t peak = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = mocus_cut_sets(tree);
    sets = analysis.cut_sets.size();
    peak = analysis.peak_sets;
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
  state.counters["peak_sets"] = static_cast<double>(peak);
}
BENCHMARK(BM_MocusReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_BddCutSetsReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = bdd_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_BddCutSetsReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

void BM_BddEncodeReplicated(benchmark::State& state) {
  FaultTree tree = replicated_tree(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)));
  std::size_t nodes = 0;
  for (auto _ : state) {
    BddEncoding encoding = encode_bdd(tree);
    nodes = encoding.bdd.node_count(encoding.root);
    benchmark::DoNotOptimize(encoding.root);
  }
  state.counters["bdd_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BddEncodeReplicated)
    ->Args({2, 4})->Args({3, 4})->Args({4, 4})->Args({5, 4})->Args({6, 4});

// -- On the demonstrator's trees -------------------------------------------------

void BM_CutSetsBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  FaultTree tree = synthesiser.synthesise(top);
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = minimal_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_CutSetsBbw)->DenseRange(0, 15, 5);

void BM_MocusBbw(benchmark::State& state) {
  static Model model = setta::build_bbw();
  Synthesiser synthesiser(model);
  const std::vector<std::string> tops = setta::bbw_top_events();
  const std::string& top = tops[static_cast<std::size_t>(state.range(0))];
  state.SetLabel(top);
  FaultTree tree = synthesiser.synthesise(top);
  std::size_t sets = 0;
  for (auto _ : state) {
    CutSetAnalysis analysis = mocus_cut_sets(tree);
    sets = analysis.cut_sets.size();
  }
  state.counters["cut_sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_MocusBbw)->DenseRange(0, 15, 5);

}  // namespace
