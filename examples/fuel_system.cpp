// Second domain demonstration: the dual-redundant aircraft fuel delivery
// system (see src/casestudy/fuel.h). Shows the analyses the BBW example
// does not: rate sensitivity ("which lambda should improve next"), the
// RAW/RRW importance columns, and the cross-top-event dependency matrix.

#include <iostream>

#include "analysis/report.h"
#include "analysis/sensitivity.h"
#include "casestudy/fuel.h"
#include "fta/synthesis.h"

int main() {
  using namespace ftsynth;

  Model model = fuel::build_fuel_system();
  std::cout << "fuel system model: " << model.block_count() << " blocks\n\n";

  AnalysisOptions options;
  options.probability.mission_time_hours = 10.0;  // one long-haul flight
  options.max_importance_rows = 8;

  Synthesiser synthesiser(model);
  std::vector<FaultTree> trees;
  for (const std::string& top : fuel::fuel_top_events())
    trees.push_back(synthesiser.synthesise(top));

  for (const FaultTree& tree : trees) {
    TreeAnalysis analysis = analyse_tree(tree, options);
    std::cout << render(tree, analysis, options) << "\n";
  }

  // Where to spend the next engineering dollar: sensitivity of the fuel
  // starvation hazard to a 10x improvement of each component.
  std::cout << "Rate sensitivity for Omission-engine_feed (10x "
               "improvement per component):\n";
  SensitivityOptions sensitivity;
  sensitivity.probability = options.probability;
  std::vector<SensitivityEntry> entries =
      rate_sensitivity(trees[0], sensitivity);
  if (entries.size() > 8) entries.resize(8);
  std::cout << render_sensitivity(entries) << "\n";

  // How the hazards couple: shared basic events between the top events.
  std::vector<const FaultTree*> pointers;
  for (const FaultTree& tree : trees) pointers.push_back(&tree);
  std::cout << "Dependency matrix (shared basic events):\n"
            << render_dependency_matrix(pointers);
  return 0;
}
