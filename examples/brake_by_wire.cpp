// The paper's demonstration (section 4): the SETTA distributed
// brake-by-wire + adaptive cruise control system.
//
// Demonstration aims reproduced here:
//   1. integrated HW+SW analysis of programmable nodes (Figure 3):
//      node-level hardware common causes appear in every output's tree;
//   2. operation on a complex model, synthesising large fault trees;
//   3. the synthesised trees point out weak areas of the design
//      (single points of failure, shared-resource dependencies).
//
// Exports the trees as an FTP-style project, XML, DOT and JSON next to the
// executable (bbw_trees.*).

#include <iostream>

#include "analysis/completeness.h"
#include "analysis/fmea.h"
#include "analysis/report.h"
#include "casestudy/setta.h"
#include "ftp/dot_writer.h"
#include "ftp/ftp_writer.h"
#include "ftp/json_writer.h"
#include "ftp/xml_writer.h"
#include "fta/synthesis.h"

int main() {
  using namespace ftsynth;

  Model model = setta::build_bbw();
  std::cout << "SETTA brake-by-wire + ACC model: " << model.block_count()
            << " blocks\n\n";

  // The hazard analysis of one programmable node, Figure 2 style.
  std::cout << model.block("bbw/pedal_node/voter")
                   .annotation()
                   .render_table("pedal_node/voter")
            << "\n";

  Synthesiser synthesiser(model);
  AnalysisOptions options;
  options.probability.mission_time_hours = 1000.0;  // ~1 year of driving

  std::vector<FaultTree> trees;
  for (const std::string& top : setta::bbw_top_events()) {
    trees.push_back(synthesiser.synthesise(top));
  }

  for (const FaultTree& tree : trees) {
    TreeAnalysis analysis = analyse_tree(tree, options);
    std::cout << render(tree, analysis, options) << "\n";
  }

  // Dependencies between nominally independent wheel channels: basic
  // events shared between the FL and FR braking-loss trees are exactly the
  // common causes (pedal path, buses) replication does not remove.
  std::cout << "Common causes between Omission-brake_force_fl and _fr:\n";
  for (Symbol shared : shared_between(trees[0], trees[3])) {
    std::cout << "  " << shared.view() << "\n";
  }
  std::cout << "\n";

  // HAZOP completeness audit (section 2, questions a/b).
  std::vector<CompletenessFinding> findings = audit_completeness(model);
  std::cout << "Completeness audit: " << findings.size() << " findings\n";
  for (std::size_t i = 0; i < findings.size() && i < 12; ++i) {
    std::cout << "  " << findings[i].to_string() << "\n";
  }

  // System-level FMEA (HiP-HOPS companion output): the trees inverted into
  // per-malfunction effect rows. Shown here for the catastrophic hazard.
  {
    FaultTree total = synthesiser.synthesise("Omission-total_braking");
    CutSetAnalysis cut_sets = minimal_cut_sets(total);
    std::vector<FmeaRow> fmea =
        synthesise_fmea({&total}, {&cut_sets}, options.probability);
    std::cout << "FMEA (effects on Omission-total_braking):\n"
              << render_fmea(fmea) << "\n";
  }

  // Exports for the downstream FTA tool (the paper's Fault Tree Plus
  // hand-off).
  std::vector<const FaultTree*> pointers;
  for (const FaultTree& tree : trees) pointers.push_back(&tree);
  write_ftp_project_file("bbw", pointers, "bbw_trees.ftp");
  write_xml_file(trees.front(), "bbw_trees.xml");
  write_dot_file(trees.front(), "bbw_trees.dot");
  write_json_file(trees.front(), "bbw_trees.json");
  std::cout << "\nexported: bbw_trees.ftp / .xml / .dot / .json\n";
  return 0;
}
