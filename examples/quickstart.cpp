// Quickstart: build a small annotated model programmatically, synthesise a
// fault tree, and run the downstream analyses.
//
// The system: a sensor feeding a controller that drives an actuator, with
// a watchdog trigger on the controller. We ask: what can cause the
// omission of the actuation output?

#include <iostream>

#include "analysis/report.h"
#include "fta/synthesis.h"
#include "model/builder.h"

int main() {
  using namespace ftsynth;

  // 1. Build the model (what the Simulink editor would produce).
  ModelBuilder b("demo");
  Block& sys = b.root();

  b.inport(sys, "stimulus");

  Block& sensor = b.basic(sys, "sensor");
  b.in(sensor, "in");
  b.out(sensor, "reading");
  b.malfunction(sensor, "dead", 2e-6, "sensor element failure");
  b.malfunction(sensor, "drifting", 5e-7, "calibration drift");
  b.annotate(sensor, "Omission-reading", "dead OR Omission-in");
  b.annotate(sensor, "Value-reading", "drifting OR Value-in");

  Block& watchdog = b.basic(sys, "watchdog");
  b.out(watchdog, "kick");
  b.malfunction(watchdog, "hung", 1e-7, "watchdog timer hung");
  b.annotate(watchdog, "Omission-kick", "hung");

  Block& controller = b.basic(sys, "controller");
  b.in(controller, "reading");
  b.trigger(controller, "alive");
  b.out(controller, "command");
  b.malfunction(controller, "sw_defect", 1e-7, "residual software defect");
  b.annotate(controller, "Omission-command", "sw_defect OR Omission-reading");
  b.annotate(controller, "Value-command", "sw_defect OR Value-reading");

  Block& actuator = b.basic(sys, "actuator");
  b.in(actuator, "cmd");
  b.out(actuator, "motion");
  b.malfunction(actuator, "jammed", 3e-6, "mechanically jammed");
  b.annotate(actuator, "Omission-motion", "jammed OR Omission-cmd");
  b.annotate(actuator, "Value-motion", "Value-cmd");

  b.outport(sys, "motion");
  b.connect(sys, "stimulus", "sensor.in");
  b.connect(sys, "sensor.reading", "controller.reading");
  b.connect(sys, "watchdog.kick", "controller.alive");
  b.connect(sys, "controller.command", "actuator.cmd");
  b.connect(sys, "actuator.motion", "motion");

  Model model = b.take();  // validates

  // 2. Synthesise the fault tree for the hazardous top event.
  Synthesiser synthesiser(model);
  FaultTree tree = synthesiser.synthesise("Omission-motion");
  std::cout << tree.to_text() << "\n";

  // 3. Analyse: minimal cut sets, probabilities, importance.
  AnalysisOptions options;
  options.probability.mission_time_hours = 10.0;  // a 10 h mission
  TreeAnalysis analysis = analyse_tree(tree, options);
  std::cout << render(tree, analysis, options) << "\n";
  return 0;
}
