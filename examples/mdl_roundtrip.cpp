// The Figure 4 tool chain, file edition: an annotated model written in the
// text format (as the Simulink hazard-analysis editor would export it) is
// parsed, synthesised and analysed. Run with a path to your own model file,
// or with no arguments to use the embedded two-channel example.

#include <iostream>

#include "analysis/report.h"
#include "fta/synthesis.h"
#include "mdl/parser.h"
#include "mdl/writer.h"

namespace {

// A two-channel sensor subsystem with a hardware common cause, exactly the
// kind of file the paper's Simulink extension exports.
const char* kEmbeddedModel = R"MDL(
# Annotated model: duplex sensor channel with a voter.
Model {
  Name "duplex"
  System {
    Block { BlockType Inport  Name "stimulus" }
    Block {
      BlockType SubSystem
      Name "acquisition"
      Description "duplex sensing inside one enclosure"
      System {
        Block { BlockType Inport  Name "in" }
        Block {
          BlockType Basic
          Name "chan_a"
          Port { Name "in"  Direction "input" }
          Port { Name "out" Direction "output" }
          Malfunction { Name "dead"  Rate 1e-5 }
          FailureRow { Output "Omission-out"  Cause "dead OR Omission-in" }
          FailureRow { Output "Value-out"     Cause "Value-in" }
        }
        Block {
          BlockType Basic
          Name "chan_b"
          Port { Name "in"  Direction "input" }
          Port { Name "out" Direction "output" }
          Malfunction { Name "dead"  Rate 1e-5 }
          FailureRow { Output "Omission-out"  Cause "dead OR Omission-in" }
          FailureRow { Output "Value-out"     Cause "Value-in" }
        }
        Block {
          BlockType Basic
          Name "selector"
          Port { Name "a"   Direction "input" }
          Port { Name "b"   Direction "input" }
          Port { Name "out" Direction "output" }
          Malfunction { Name "select_defect"  Rate 1e-7 }
          FailureRow {
            Output "Omission-out"
            Cause "select_defect OR (Omission-a AND Omission-b)"
          }
          FailureRow {
            Output "Value-out"
            Cause "select_defect OR Value-a OR Value-b"
          }
        }
        Block { BlockType Outport Name "reading" }
        Line { Src "in"           Dst "chan_a.in" }
        Line { Src "in"           Dst "chan_b.in" }
        Line { Src "chan_a.out"   Dst "selector.a" }
        Line { Src "chan_b.out"   Dst "selector.b" }
        Line { Src "selector.out" Dst "reading" }
      }
      # Hardware common cause of the enclosure (Figure 3).
      Malfunction { Name "enclosure_power"  Rate 5e-7 }
      FailureRow { Output "Omission-reading"  Cause "enclosure_power" }
    }
    Block { BlockType Outport Name "reading" }
    Line { Src "stimulus"            Dst "acquisition.in" }
    Line { Src "acquisition.reading" Dst "reading" }
  }
}
)MDL";

}  // namespace

int main(int argc, char** argv) {
  using namespace ftsynth;

  Model model = argc > 1 ? parse_mdl_file(argv[1]) : parse_mdl(kEmbeddedModel);
  std::cout << "parsed model '" << model.name() << "' ("
            << model.block_count() << " blocks)\n\n";

  AnalysisOptions options;
  options.render_tree = true;
  options.probability.mission_time_hours = 1000.0;
  Synthesiser synthesiser(model);
  for (const Port* output : model.root().outputs()) {
    FaultTree tree = synthesiser.synthesise(
        Deviation{model.registry().omission(), output->name()});
    if (tree.top() == nullptr) continue;
    TreeAnalysis analysis = analyse_tree(tree, options);
    std::cout << render(tree, analysis, options) << "\n";
  }

  // Round-trip: re-emit the model in the same format.
  std::cout << "--- re-serialised model ---\n" << write_mdl(model);
  return 0;
}
