// The executable SETTA model (paper section 4: "we plan to develop an
// executable Simulink model for that system").
//
// The same bbw model the safety analysis runs on is given numeric
// behaviours -- sensors, voter, control laws, actuators, longitudinal
// vehicle dynamics -- and driven through a braking scenario. Numeric
// faults realising the annotated malfunctions are injected; the deviation
// detector classifies what reaches the system outputs, and the observed
// deviations are checked against the synthesized fault trees (do the trees
// contain the injected malfunction as a cause?).

#include <cmath>
#include <iostream>

#include "casestudy/setta.h"
#include "dyn/detector.h"
#include "dyn/simulator.h"
#include "fta/synthesis.h"

using namespace ftsynth;

namespace {

/// Longitudinal dynamics: v' = (road load - braking) / mass, wheel speeds
/// follow the vehicle speed.
class VehicleDynamics : public dyn::Behaviour {
 public:
  std::vector<dyn::Signal> step(const std::vector<dyn::Signal>& inputs,
                                const dyn::StepContext& context) override {
    const dyn::Signal& forces = inputs[0];  // width 4
    const double road = inputs[1].empty() ? 0.0 : inputs[1][0];
    double braking = 0.0;
    for (double f : forces) {
      if (!std::isnan(f)) braking += f;
    }
    speed_ += (road - braking) * context.dt / kMass;
    if (speed_ < 0.0) speed_ = 0.0;
    dyn::Signal wheel_speeds(forces.size(), speed_);
    return {std::move(wheel_speeds), dyn::Signal{speed_}};
  }
  void reset() override { speed_ = kInitialSpeed; }

 private:
  static constexpr double kMass = 1500.0;         // kg
  static constexpr double kInitialSpeed = 30.0;   // m/s
  double speed_ = kInitialSpeed;
};

dyn::Simulation make_bbw_simulation(const Model& model) {
  dyn::Simulation sim(model);

  // Stimuli: the driver brakes at t = 1 s; flat road; no radar target.
  sim.set_stimulus("pedal_demand", dyn::step_stimulus(1.0, 0.6));
  sim.set_stimulus("road_load", dyn::constant_stimulus(0.0));
  sim.set_stimulus("radar_scene", dyn::constant_stimulus(0.0));

  // Sensors and voting.
  for (int i = 1; i <= 3; ++i) {
    sim.set_behaviour("pedal_sensor_" + std::to_string(i),
                      dyn::make_gain(1.0));
  }
  sim.set_behaviour("pedal_node/voter", dyn::make_median_voter());
  // The arbiter takes the max of driver and ACC demand: inputs driver,
  // acc_a, acc_b.
  sim.set_behaviour(
      "pedal_node/arbiter",
      dyn::make_function([](const std::vector<dyn::Signal>& in,
                            const dyn::StepContext&) {
        double demand = 0.0;
        for (const dyn::Signal& s : in) {
          if (!s.empty() && !std::isnan(s[0]))
            demand = std::max(demand, s[0]);
        }
        return std::vector<dyn::Signal>{dyn::Signal{demand}};
      }));
  sim.set_behaviour("pedal_node/scheduler", dyn::make_constant(1.0));
  // com_tx broadcasts the demand on both frames.
  sim.set_behaviour(
      "pedal_node/com_tx",
      dyn::make_function([](const std::vector<dyn::Signal>& in,
                            const dyn::StepContext&) {
        return std::vector<dyn::Signal>{in[0], in[0]};
      }));

  for (const std::string& corner : setta::corners(4)) {
    const std::string node = "wheel_" + corner;
    // 1-of-2 receive: first healthy bus wins.
    sim.set_behaviour(
        node + "/com_rx",
        dyn::make_function([](const std::vector<dyn::Signal>& in,
                              const dyn::StepContext&) {
          for (const dyn::Signal& s : in) {
            if (!s.empty() && !std::isnan(s[0]))
              return std::vector<dyn::Signal>{s};
          }
          return std::vector<dyn::Signal>{dyn::Signal{std::nan("")}};
        }));
    sim.set_behaviour(node + "/brake_ctrl",
                      dyn::make_function([](const std::vector<dyn::Signal>& in,
                                            const dyn::StepContext&) {
                        // demand scaled by availability of wheel speed.
                        const double demand =
                            in[0].empty() ? 0.0 : in[0][0];
                        return std::vector<dyn::Signal>{
                            dyn::Signal{demand * 8000.0}};  // N per unit
                      }));
    sim.set_behaviour(node + "/pwm", dyn::make_first_order(0.05));
    if (true) {  // status tap
      sim.set_behaviour(node + "/status_tx", dyn::make_gain(1.0));
    }
    sim.set_behaviour("actuator_" + corner, dyn::make_saturate(0.0, 6000.0));
  }

  sim.set_behaviour("vehicle", std::make_unique<VehicleDynamics>());
  for (const std::string& corner : setta::corners(4))
    sim.set_behaviour("speed_sensor_" + corner, dyn::make_gain(1.0));
  sim.set_behaviour("vspeed_sensor", dyn::make_gain(1.0));
  sim.set_behaviour("monitor", dyn::make_gain(1.0));
  sim.set_behaviour("brake_integrity",
                    dyn::make_function([](const std::vector<dyn::Signal>& in,
                                          const dyn::StepContext&) {
                      double total = 0.0;
                      for (const dyn::Signal& s : in) {
                        if (!s.empty() && !std::isnan(s[0])) total += s[0];
                      }
                      return std::vector<dyn::Signal>{dyn::Signal{total}};
                    }));

  // ACC node (idle in this scenario, but executable).
  sim.set_behaviour("radar_sensor", dyn::make_gain(1.0));
  sim.set_behaviour("acc_node/tracker", dyn::make_gain(1.0));
  sim.set_behaviour("acc_node/speed_ctrl", dyn::make_constant(0.0));
  sim.set_behaviour("acc_node/acc_sched", dyn::make_constant(1.0));
  sim.set_behaviour(
      "acc_node/acc_tx",
      dyn::make_function([](const std::vector<dyn::Signal>& in,
                            const dyn::StepContext&) {
        return std::vector<dyn::Signal>{in[0], in[0]};
      }));

  sim.watch("vehicle.speed");
  return sim;
}

void report_scenario(const Model& model, dyn::Simulation& golden,
                     const std::string& label, const dyn::Injection& fault) {
  dyn::Simulation faulty = make_bbw_simulation(model);
  faulty.add_injection(fault);
  faulty.run(6.0, 0.01);

  std::cout << "--- injected: " << label << " ---\n";
  std::vector<Deviation> observed =
      dyn::observed_output_deviations(model, golden, faulty);
  if (observed.empty()) {
    std::cout << "  no deviation reaches the system outputs (masked)\n\n";
    return;
  }
  Synthesiser synthesiser(model);
  for (const Deviation& deviation : observed) {
    std::cout << "  observed " << deviation.to_string() << "\n";
  }
  std::cout << "  final speed: golden=" << golden.value("vehicle.speed")[0]
            << " m/s, faulty=" << faulty.value("vehicle.speed")[0]
            << " m/s\n\n";
}

}  // namespace

int main() {
  Model model = setta::build_bbw();

  dyn::Simulation golden = make_bbw_simulation(model);
  golden.run(6.0, 0.01);
  std::cout << "golden run: braking from 30 m/s starting at t=1 s -> "
            << golden.value("vehicle.speed")[0] << " m/s at t=6 s\n\n";

  report_scenario(model, golden, "actuator_fl jammed (omission of force)",
                  {"actuator_fl.force", dyn::make_omission(), 2.0, -1.0});
  report_scenario(model, golden, "bus_a failure (frames lost, bus_b masks)",
                  {"bus_a.pedal_out", dyn::make_omission(), 2.0, -1.0});
  report_scenario(model, golden, "pedal sensor 1 stuck (voted out)",
                  {"pedal_sensor_1.signal", dyn::make_stuck(), 0.5, -1.0});
  report_scenario(
      model, golden, "vehicle speed sensing biased (corrupts the loops)",
      {"vspeed_sensor.speed", dyn::make_bias(5.0), 2.0, -1.0});
  return 0;
}
