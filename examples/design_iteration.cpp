// Design iteration (section 4, aim 3): "how automatic fault tree synthesis
// simplifies the re-analysis of a system following a design iteration".
//
// Iteration 0: single pedal sensor, single bus -- the baseline design.
// Iteration 1: three voted pedal sensors, two replicated buses.
//
// The trees are re-synthesised mechanically after the change; the report
// contrasts single points of failure, minimal cut-set order and top-event
// probability. No manual fault tree maintenance is involved -- the point
// of the paper.

#include <iostream>

#include "analysis/report.h"
#include "casestudy/setta.h"
#include "core/strings.h"
#include "core/text_table.h"
#include "model/diff.h"
#include "fta/synthesis.h"

int main() {
  using namespace ftsynth;

  AnalysisOptions options;
  options.probability.mission_time_hours = 1000.0;

  struct Iteration {
    const char* label;
    Model model;
  };
  Iteration iterations[] = {
      {"baseline (1 sensor, 1 bus)", setta::build_bbw_single_channel()},
      {"revised (3 voted sensors, 2 buses)", setta::build_bbw()},
  };

  // What actually changed between the iterations (read this next to the
  // re-analysis): the mechanical model delta.
  {
    ModelDiff delta = diff_models(iterations[0].model, iterations[1].model);
    std::cout << "Design delta (baseline -> revised): "
              << delta.added_blocks.size() << " blocks added, "
              << delta.added_connections.size() << " lines added, "
              << delta.changed_blocks.size() << " blocks changed\n";
    for (const std::string& path : delta.added_blocks)
      std::cout << "  + " << path << "\n";
    std::cout << "\n";
  }

  const std::vector<std::string> tops = {
      "Omission-total_braking",  // the catastrophic, vehicle-level hazard
      "Omission-brake_force_fl",
      "Value-brake_force_fl",
      "Commission-brake_force_fl",
  };

  for (const std::string& top : tops) {
    std::cout << "=== " << top << " ===\n";
    TextTable table({"design", "cut sets", "min order", "order-1 (SPOF)",
                     "P(top) exact"});
    for (Iteration& iteration : iterations) {
      Synthesiser synthesiser(iteration.model);
      FaultTree tree = synthesiser.synthesise(top);
      TreeAnalysis analysis = analyse_tree(tree, options);
      table.add_row(
          {iteration.label,
           std::to_string(analysis.cut_sets.cut_sets.size()),
           std::to_string(analysis.cut_sets.min_order()),
           std::to_string(analysis.common_cause.single_points_of_failure.size()),
           format_double(analysis.p_exact)});
    }
    std::cout << table.render() << "\n";
  }

  // Show what the revision eliminated: the baseline's single points of
  // failure for loss of braking.
  Synthesiser baseline(iterations[0].model);
  FaultTree tree = baseline.synthesise("Omission-brake_force_fl");
  TreeAnalysis analysis = analyse_tree(tree, options);
  std::cout << "Baseline single points of failure for "
               "Omission-brake_force_fl:\n";
  for (const FtNode* event :
       analysis.common_cause.single_points_of_failure) {
    std::cout << "  ! " << event->name().view() << "\n";
  }
  return 0;
}
