// Reproduces the paper's Figure 2: the hypothetical component and its
// hazard analysis table, then the fault tree synthesised from it.
//
// Figure 2 (verbatim from the paper):
//
//   Output Failure Mode | Input Deviation Logic              | Component
//                       |                                    | Malfunction Logic
//   --------------------+------------------------------------+------------------
//   Omission-output     | Omission-input_1 AND               | Jammed OR
//                       | Omission-input_2                   | Short_circuited
//                       |                                    | (5e-7, 6e-6)
//   Wrong-output        | Wrong-input_1 OR Wrong-input_2     | Biased (6e-8)
//   Early-output        |                                    |
//
// "Wrong" and the λ column are modelled with a custom failure class and
// the malfunction rates; the expected minimal cut sets for Omission-output
// are {Jammed}, {Short_circuited} and {Omission-input_1 ∧ Omission-input_2}.

#include <iostream>

#include "analysis/report.h"
#include "fta/synthesis.h"
#include "model/builder.h"

int main() {
  using namespace ftsynth;

  ModelBuilder b("figure2");
  // The paper's table uses the guide word "Wrong" for value failures.
  b.registry().add("Wrong", FailureCategory::kValue);

  Block& sys = b.root();
  b.inport(sys, "input_1");
  b.inport(sys, "input_2");

  Block& component = b.basic(sys, "component");
  component.set_description("hypothetical component of Figure 2");
  b.in(component, "input_1");
  b.in(component, "input_2");
  b.out(component, "output");
  b.malfunction(component, "Jammed", 5e-7);
  b.malfunction(component, "Short_circuited", 6e-6);
  b.malfunction(component, "Biased", 6e-8);
  b.annotate(component, "Omission-output",
             "Omission-input_1 AND Omission-input_2 OR Jammed OR "
             "Short_circuited",
             "The component fails to generate the output");
  b.annotate(component, "Wrong-output",
             "Wrong-input_1 OR Wrong-input_2 OR Biased",
             "The component generates wrong output");

  b.outport(sys, "output");
  b.connect(sys, "input_1", "component.input_1");
  b.connect(sys, "input_2", "component.input_2");
  b.connect(sys, "component.output", "output");

  Model model = b.take();

  // The Figure 2 hazard-analysis table, regenerated.
  std::cout << model.block("component").annotation().render_table(
      "component (Figure 2)");
  std::cout << "\n";

  Synthesiser synthesiser(model);
  AnalysisOptions options;
  options.render_tree = true;
  for (const char* top : {"Omission-output", "Wrong-output"}) {
    FaultTree tree = synthesiser.synthesise(top);
    TreeAnalysis analysis = analyse_tree(tree, options);
    std::cout << render(tree, analysis, options) << "\n";
  }
  return 0;
}
