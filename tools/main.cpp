// ftsynth -- fault tree synthesis for annotated Simulink-style models.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ftsynth::cli::run(args, std::cout, std::cerr);
}
