#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files.

Usage:
    tools/compare_benchmarks.py BASELINE.json CANDIDATE.json
        [--threshold PCT] [--filter REGEX] [--metric METRIC]
    tools/compare_benchmarks.py --service-report RESULTS.json
        [--min-speedup X]
    tools/compare_benchmarks.py --contention-report RESULTS.json
        [--min-speedup X]
    tools/compare_benchmarks.py --bound-report RESULTS.json
        [--min-speedup X]

Pairs benchmark records by name (e.g. "BM_ZbddReplicated/6/4") and prints
one line per pair with the baseline time, the candidate time and the
relative change. Exits 1 when any matched benchmark regressed by more than
--threshold percent (default 20), 0 otherwise; benchmarks present in only
one file are listed but never fail the comparison, and two files with no
benchmark in common compare clean with a warning (a new suite simply has
no baseline yet).

--service-report reads ONE results file (bench_results/BENCH_service.json,
produced by bench/bench_service.cpp) and reports the daemon's warm-vs-cold
request latency per workload: every BM_Service<Workload>Cold* record is
read against its BM_Service<Workload>WarmDaemon counterpart, BBW
warm/cold-cache methodology. With --min-speedup X the report exits 1 when
any workload's ColdProcess/WarmDaemon ratio falls below X (the acceptance
bar runs it with --min-speedup 5).

Results are only meaningful between files produced the same way (same
machine class, Release build -- see tools/run_benchmarks.sh). The files in
bench_results/ are the committed baselines for exactly this purpose:

    tools/run_benchmarks.sh bench_cutsets
    tools/compare_benchmarks.py bench_results/BENCH_cutsets.json \
        /tmp/new_cutsets.json --threshold 20
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def load_benchmarks(path: str, metric: str) -> dict[str, float]:
    """Returns {benchmark name: metric value}; aggregates keep only means."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    out: dict[str, float] = {}
    for record in data.get("benchmarks", []):
        # With repetitions google-benchmark emits per-repetition records plus
        # _mean/_median/_stddev aggregates; compare the mean when present.
        run_type = record.get("run_type", "iteration")
        if run_type == "aggregate" and record.get("aggregate_name") != "mean":
            continue
        name = record["name"]
        if run_type == "aggregate":
            name = name.rsplit("_", 1)[0]
        if metric not in record:
            continue
        out[name] = float(record[metric])
    return out


def service_report(path: str, metric: str, min_speedup: float) -> int:
    """Warm-vs-cold daemon latency from one BENCH_service.json file."""
    times = load_benchmarks(path, metric)
    pattern = re.compile(r"^BM_Service(.+?)(ColdProcess|ColdWithDiskCache|WarmDaemon)$")
    workloads: dict[str, dict[str, float]] = {}
    for name, value in times.items():
        match = pattern.match(name)
        if match:
            workloads.setdefault(match.group(1), {})[match.group(2)] = value

    pairs = {
        name: axes
        for name, axes in sorted(workloads.items())
        if "WarmDaemon" in axes and ("ColdProcess" in axes or "ColdWithDiskCache" in axes)
    }
    if not pairs:
        print(
            "error: no Cold*/WarmDaemon benchmark pairs in " + path,
            file=sys.stderr,
        )
        return 1

    width = max(len(name) for name in pairs)
    too_slow = []
    print(
        f"{'workload':<{width}}  {'cold ms':>10}  {'cold+disk ms':>13}  "
        f"{'warm ms':>10}  speedup"
    )
    for name, axes in pairs.items():
        warm = axes["WarmDaemon"]
        cold = axes.get("ColdProcess")
        disk = axes.get("ColdWithDiskCache")
        cold_text = f"{cold:>10.2f}" if cold is not None else f"{'-':>10}"
        disk_text = f"{disk:>13.2f}" if disk is not None else f"{'-':>13}"
        if cold is not None and warm > 0:
            speedup = cold / warm
            speedup_text = f"{speedup:>6.1f}x"
        else:
            speedup = None
            speedup_text = f"{'-':>7}"
        print(f"{name:<{width}}  {cold_text}  {disk_text}  {warm:>10.2f}  {speedup_text}")
        if speedup is not None and min_speedup > 0 and speedup < min_speedup:
            too_slow.append((name, speedup))

    if too_slow:
        print(
            f"\n{len(too_slow)} workload(s) below the {min_speedup:.0f}x "
            "warm-daemon bar:",
            file=sys.stderr,
        )
        for name, speedup in too_slow:
            print(f"  {name}: {speedup:.1f}x", file=sys.stderr)
        return 1
    if min_speedup > 0:
        print(f"\nok: every workload meets the {min_speedup:.0f}x warm-daemon bar")
    return 0


def prob_report(path: str, metric: str, min_speedup: float) -> int:
    """Cut-set-path vs diagram-path analyse latency from BENCH_prob.json.

    Pairs every BM_Analyse<Fixture>Cutsets record with its
    BM_Analyse<Fixture>Diagram counterpart. The truncated fixtures (where
    extraction dominates and the diagram path skips it) carry the
    --min-speedup bar; the Bbw pair is the honesty axis -- a clean run
    costs the same in both modes by construction -- and is report-only.
    """
    times = load_benchmarks(path, metric)
    pattern = re.compile(r"^BM_Analyse(.*?)(Cutsets|Diagram)$")
    fixtures: dict[str, dict[str, float]] = {}
    for name, value in times.items():
        match = pattern.match(name)
        if match:
            fixtures.setdefault(match.group(1) or "Truncated", {})[
                match.group(2)
            ] = value

    pairs = {
        name: axes
        for name, axes in sorted(fixtures.items())
        if "Cutsets" in axes and "Diagram" in axes
    }
    if not pairs:
        print(
            "error: no Cutsets/Diagram benchmark pairs in " + path,
            file=sys.stderr,
        )
        return 1

    width = max(len(name) for name in pairs)
    too_slow = []
    print(f"{'fixture':<{width}}  {'cutsets ms':>11}  {'diagram ms':>11}  speedup")
    for name, axes in pairs.items():
        cutsets = axes["Cutsets"]
        diagram = axes["Diagram"]
        speedup = cutsets / diagram if diagram > 0 else float("inf")
        honesty = name.startswith("Bbw")
        note = "  (honesty axis, ~1x expected)" if honesty else ""
        print(
            f"{name:<{width}}  {cutsets:>11.2f}  {diagram:>11.2f}  "
            f"{speedup:>6.1f}x{note}"
        )
        if not honesty and min_speedup > 0 and speedup < min_speedup:
            too_slow.append((name, speedup))

    if too_slow:
        print(
            f"\n{len(too_slow)} fixture(s) below the {min_speedup:.0f}x "
            "diagram-mode bar:",
            file=sys.stderr,
        )
        for name, speedup in too_slow:
            print(f"  {name}: {speedup:.1f}x", file=sys.stderr)
        return 1
    if min_speedup > 0:
        print(f"\nok: every truncated fixture meets the {min_speedup:.0f}x bar")
    return 0


def contention_report(path: str, metric: str, min_speedup: float) -> int:
    """Worker-axis scaling of the parallel ZBDD conversion from
    BENCH_contention.json (bench/bench_contention.cpp).

    Reads every BM_ParallelConvertForest*/N series and reports the
    N-worker speedup over the 1-worker (serial, null-pool) baseline. The
    --min-speedup bar applies to the static-order series at the widest
    worker count; the Sift series (stop-the-world reordering on the hot
    path) and the shard-contention microbench are report-only. On a host
    without at least as many CPUs as the widest worker count the bar is
    informational: there is no physical parallelism to measure, so the
    report prints a warning and exits 0.
    """
    with open(path, "r", encoding="utf-8") as handle:
        num_cpus = int(json.load(handle).get("context", {}).get("num_cpus", 0))
    times = load_benchmarks(path, metric)
    pattern = re.compile(r"^(BM_ParallelConvertForest(?:Sift)?)/(\d+)(?:/|$)")
    series: dict[str, dict[int, float]] = {}
    for name, value in times.items():
        match = pattern.match(name)
        if match:
            series.setdefault(match.group(1), {})[int(match.group(2))] = value

    gated = {
        name: axes
        for name, axes in sorted(series.items())
        if 1 in axes and len(axes) > 1
    }
    if not gated:
        print(
            "error: no BM_ParallelConvertForest/N series in " + path,
            file=sys.stderr,
        )
        return 1

    too_slow = []
    print(f"{'series':<32}  workers  {'time ms':>10}  speedup")
    for name, axes in gated.items():
        serial = axes[1]
        for workers in sorted(axes):
            speedup = serial / axes[workers] if axes[workers] > 0 else 0.0
            print(
                f"{name:<32}  {workers:>7}  {axes[workers]:>10.2f}  "
                f"{speedup:>6.2f}x"
            )
        widest = max(axes)
        speedup = serial / axes[widest] if axes[widest] > 0 else 0.0
        if (
            name == "BM_ParallelConvertForest"
            and min_speedup > 0
            and speedup < min_speedup
        ):
            too_slow.append((name, widest, speedup))

    shard = {
        int(m.group(1)): value
        for name, value in times.items()
        if (m := re.match(r"^BM_ZbddShardContention/(\d+)(?:/|$)", name))
    }
    if shard and 1 in shard:
        print(f"\n{'shard microbench':<32}  threads  {'time ms':>10}  efficiency")
        for threads in sorted(shard):
            # Each thread performs the same fixed work, so flat time across
            # the thread axis = perfect scaling (efficiency 1.0).
            efficiency = shard[1] / shard[threads] if shard[threads] > 0 else 0.0
            print(
                f"{'BM_ZbddShardContention':<32}  {threads:>7}  "
                f"{shard[threads]:>10.3f}  {efficiency:>6.2f}"
            )

    widest_workers = max(max(axes) for axes in gated.values())
    if num_cpus < max(2, widest_workers):
        print(
            f"\nwarning: host has {num_cpus} CPU(s) for a {widest_workers}-"
            "worker series; scaling bar skipped (no physical parallelism "
            "to measure)",
        )
        return 0
    if too_slow:
        print(
            f"\n{len(too_slow)} series below the {min_speedup:.0f}x "
            "parallel-conversion bar:",
            file=sys.stderr,
        )
        for name, workers, speedup in too_slow:
            print(f"  {name} at {workers} workers: {speedup:.1f}x", file=sys.stderr)
        return 1
    if min_speedup > 0:
        print(f"\nok: parallel conversion meets the {min_speedup:.0f}x bar")
    return 0


def bound_report(path: str, metric: str, min_speedup: float) -> int:
    """Convergence-vs-time of the anytime bound engine from
    BENCH_bound.json (bench/bench_bound.cpp).

    Reads the BM_BoundFrontierConverge/E epsilon sweep (E = the epsilon
    exponent) and the BM_ZbddTenXNodeBudget run on the same adversarial
    tree, and gates on the acceptance counters: every bound point must be
    converged with interval width <= 1e-3 inside a 2000 ms wall budget,
    and the ZBDD run -- given ten times the bound engine's node budget --
    must come back truncated (if it ever stops truncating, the fixture no
    longer demonstrates the gap and needs regrowing). With --min-speedup X
    the tightest-epsilon bound run must additionally be at least X times
    faster than the truncated ZBDD run.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    records: dict[str, dict[str, float]] = {}
    for record in data.get("benchmarks", []):
        if record.get("run_type", "iteration") == "aggregate":
            continue
        records[record["name"]] = {
            key: float(value)
            for key, value in record.items()
            if isinstance(value, (int, float))
        }

    sweep = {
        int(m.group(1)): fields
        for name, fields in sorted(records.items())
        if (m := re.match(r"^BM_BoundFrontierConverge/(\d+)$", name))
    }
    zbdd = records.get("BM_ZbddTenXNodeBudget")
    if not sweep or zbdd is None:
        print(
            "error: no BM_BoundFrontierConverge/E sweep plus "
            "BM_ZbddTenXNodeBudget in " + path,
            file=sys.stderr,
        )
        return 1

    failures = []
    print(f"{'benchmark':<30}  {'time ms':>10}  {'width':>12}  converged")
    tightest = max(sweep)
    for exponent in sorted(sweep):
        fields = sweep[exponent]
        time_ms = fields.get(metric, 0.0)
        width = fields.get("width", float("inf"))
        converged = fields.get("converged", 0.0) == 1.0
        name = f"BM_BoundFrontierConverge/{exponent}"
        print(
            f"{name:<30}  {time_ms:>10.2f}  {width:>12.3e}  "
            f"{'yes' if converged else 'NO'}"
        )
        if not converged:
            failures.append(f"{name}: did not converge")
        if width > 1e-3:
            failures.append(f"{name}: width {width:.3e} above the 1e-3 bar")
        if time_ms > 2000.0:
            failures.append(f"{name}: {time_ms:.0f} ms over the 2 s budget")

    zbdd_ms = zbdd.get(metric, 0.0)
    truncated = zbdd.get("truncated", 0.0) == 1.0
    print(
        f"{'BM_ZbddTenXNodeBudget':<30}  {zbdd_ms:>10.2f}  {'-':>12}  "
        f"{'truncated' if truncated else 'COMPLETED'}"
    )
    if not truncated:
        failures.append(
            "BM_ZbddTenXNodeBudget: completed at 10x the node budget; the "
            "fixture no longer demonstrates the exact-engine gap"
        )
    bound_ms = sweep[tightest].get(metric, 0.0)
    if min_speedup > 0 and bound_ms > 0:
        speedup = zbdd_ms / bound_ms
        print(
            f"\ntightest epsilon vs truncated zbdd: {speedup:.1f}x "
            f"({zbdd_ms:.1f} ms / {bound_ms:.2f} ms)"
        )
        if speedup < min_speedup:
            failures.append(
                f"bound engine only {speedup:.1f}x faster than the "
                f"truncated zbdd run (bar: {min_speedup:.0f}x)"
            )

    if failures:
        print(f"\n{len(failures)} bound-engine check(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nok: certified interval within width and time budget; "
          "zbdd truncates at 10x the node budget")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files."
    )
    parser.add_argument(
        "baseline", nargs="?", help="committed reference JSON"
    )
    parser.add_argument(
        "candidate", nargs="?", help="freshly measured JSON"
    )
    parser.add_argument(
        "--service-report",
        metavar="RESULTS",
        help="report daemon warm-vs-cold latency from one "
        "BENCH_service.json instead of diffing two files",
    )
    parser.add_argument(
        "--prob-report",
        metavar="RESULTS",
        help="report cut-set-path vs diagram-path analyse latency from one "
        "BENCH_prob.json instead of diffing two files",
    )
    parser.add_argument(
        "--contention-report",
        metavar="RESULTS",
        help="report worker-axis scaling of the parallel ZBDD conversion "
        "from one BENCH_contention.json instead of diffing two files",
    )
    parser.add_argument(
        "--bound-report",
        metavar="RESULTS",
        help="report anytime-bound convergence vs the truncated ZBDD run "
        "from one BENCH_bound.json instead of diffing two files",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="with --service-report (--prob-report, --contention-report, "
        "--bound-report): fail when any workload's cold/warm (cutsets/"
        "diagram, serial/parallel, zbdd/bound) ratio is below X "
        "(default: report only)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="fail when a benchmark slows down by more than PCT%% "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--filter",
        default="",
        metavar="REGEX",
        help="only compare benchmarks whose name matches REGEX",
    )
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which per-iteration time to compare (default: %(default)s)",
    )
    args = parser.parse_args()

    if args.service_report:
        return service_report(args.service_report, args.metric, args.min_speedup)
    if args.prob_report:
        return prob_report(args.prob_report, args.metric, args.min_speedup)
    if args.contention_report:
        return contention_report(
            args.contention_report, args.metric, args.min_speedup
        )
    if args.bound_report:
        return bound_report(args.bound_report, args.metric, args.min_speedup)
    if args.baseline is None or args.candidate is None:
        parser.error(
            "BASELINE and CANDIDATE are required unless "
            "--service-report/--prob-report/--contention-report/"
            "--bound-report"
        )

    baseline = load_benchmarks(args.baseline, args.metric)
    candidate = load_benchmarks(args.candidate, args.metric)
    if args.filter:
        pattern = re.compile(args.filter)
        baseline = {k: v for k, v in baseline.items() if pattern.search(k)}
        candidate = {k: v for k, v in candidate.items() if pattern.search(k)}

    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        # A brand-new benchmark suite has no committed baseline yet (and a
        # retired one no candidate). That is routine, not an error: warn,
        # list the one-sided names, and let the comparison pass so adding a
        # bench_*.cpp never breaks CI by itself.
        print(
            "warning: no benchmarks in common; nothing to compare",
            file=sys.stderr,
        )
        for name in sorted(set(baseline) | set(candidate)):
            side = "baseline" if name in baseline else "candidate"
            print(f"  {name}: only in {side} (skipped)", file=sys.stderr)
        return 0

    width = max(len(name) for name in shared)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  change")
    for name in shared:
        base = baseline[name]
        cand = candidate[name]
        change = (cand / base - 1.0) * 100.0 if base > 0 else 0.0
        flag = ""
        if change > args.threshold:
            flag = "  REGRESSED"
            regressions.append((name, change))
        print(
            f"{name:<{width}}  {base:>12.1f}  {cand:>12.1f}  "
            f"{change:+7.1f}%{flag}"
        )

    for name in sorted(set(baseline) ^ set(candidate)):
        side = "baseline" if name in baseline else "candidate"
        print(f"{name}: only in {side} (skipped)")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, change in regressions:
            print(f"  {name}: {change:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nok: no regression beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
