#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files.

Usage:
    tools/compare_benchmarks.py BASELINE.json CANDIDATE.json
        [--threshold PCT] [--filter REGEX] [--metric METRIC]

Pairs benchmark records by name (e.g. "BM_ZbddReplicated/6/4") and prints
one line per pair with the baseline time, the candidate time and the
relative change. Exits 1 when any matched benchmark regressed by more than
--threshold percent (default 20), 0 otherwise; benchmarks present in only
one file are listed but never fail the comparison, and two files with no
benchmark in common compare clean with a warning (a new suite simply has
no baseline yet).

Results are only meaningful between files produced the same way (same
machine class, Release build -- see tools/run_benchmarks.sh). The files in
bench_results/ are the committed baselines for exactly this purpose:

    tools/run_benchmarks.sh bench_cutsets
    tools/compare_benchmarks.py bench_results/BENCH_cutsets.json \
        /tmp/new_cutsets.json --threshold 20
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def load_benchmarks(path: str, metric: str) -> dict[str, float]:
    """Returns {benchmark name: metric value}; aggregates keep only means."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    out: dict[str, float] = {}
    for record in data.get("benchmarks", []):
        # With repetitions google-benchmark emits per-repetition records plus
        # _mean/_median/_stddev aggregates; compare the mean when present.
        run_type = record.get("run_type", "iteration")
        if run_type == "aggregate" and record.get("aggregate_name") != "mean":
            continue
        name = record["name"]
        if run_type == "aggregate":
            name = name.rsplit("_", 1)[0]
        if metric not in record:
            continue
        out[name] = float(record[metric])
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files."
    )
    parser.add_argument("baseline", help="committed reference JSON")
    parser.add_argument("candidate", help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="fail when a benchmark slows down by more than PCT%% "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--filter",
        default="",
        metavar="REGEX",
        help="only compare benchmarks whose name matches REGEX",
    )
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which per-iteration time to compare (default: %(default)s)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline, args.metric)
    candidate = load_benchmarks(args.candidate, args.metric)
    if args.filter:
        pattern = re.compile(args.filter)
        baseline = {k: v for k, v in baseline.items() if pattern.search(k)}
        candidate = {k: v for k, v in candidate.items() if pattern.search(k)}

    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        # A brand-new benchmark suite has no committed baseline yet (and a
        # retired one no candidate). That is routine, not an error: warn,
        # list the one-sided names, and let the comparison pass so adding a
        # bench_*.cpp never breaks CI by itself.
        print(
            "warning: no benchmarks in common; nothing to compare",
            file=sys.stderr,
        )
        for name in sorted(set(baseline) | set(candidate)):
            side = "baseline" if name in baseline else "candidate"
            print(f"  {name}: only in {side} (skipped)", file=sys.stderr)
        return 0

    width = max(len(name) for name in shared)
    regressions = []
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  change")
    for name in shared:
        base = baseline[name]
        cand = candidate[name]
        change = (cand / base - 1.0) * 100.0 if base > 0 else 0.0
        flag = ""
        if change > args.threshold:
            flag = "  REGRESSED"
            regressions.append((name, change))
        print(
            f"{name:<{width}}  {base:>12.1f}  {cand:>12.1f}  "
            f"{change:+7.1f}%{flag}"
        )

    for name in sorted(set(baseline) ^ set(candidate)):
        side = "baseline" if name in baseline else "candidate"
        print(f"{name}: only in {side} (skipped)")

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, change in regressions:
            print(f"  {name}: {change:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nok: no regression beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
