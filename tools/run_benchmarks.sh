#!/usr/bin/env bash
# Builds every benchmark in Release mode and refreshes bench_results/.
#
# Usage:  tools/run_benchmarks.sh [bench_name ...]
#
# With no arguments every bench/bench_*.cpp target is built and run; with
# arguments only the named benches run (e.g. `tools/run_benchmarks.sh
# bench_parallel`). Each run writes bench_results/BENCH_<name>.json in
# google-benchmark's JSON format (machine-readable: context block with CPU
# info + build type, one record per benchmark repetition).
#
# Environment:
#   BUILD_DIR   Release build tree (default: build-release)
#   MIN_TIME    --benchmark_min_time value in seconds (default: benchmark's
#               own heuristic; set e.g. MIN_TIME=0.01 for a smoke run)
#
# Results are only comparable when produced by this script: a DEBUG-build
# number is meaningless (google-benchmark itself warns), which is why the
# output lands in files prefixed BENCH_ -- anything else in bench_results/
# is legacy and should be deleted rather than compared against.
#
# To check a fresh run against the committed baselines (e.g. before
# refreshing them), diff the JSON files with the companion script:
#
#   tools/run_benchmarks.sh bench_cutsets
#   git stash -- bench_results   # or copy the old file aside first
#   tools/compare_benchmarks.py /tmp/old_cutsets.json \
#       bench_results/BENCH_cutsets.json --threshold 20
#
# compare_benchmarks.py exits 1 on any regression beyond --threshold
# percent; CI runs it warn-only on the ZBDD engine series.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-release}"
RESULTS_DIR="bench_results"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

if [ "$#" -gt 0 ]; then
  benches=("$@")
else
  benches=()
  for source in bench/bench_*.cpp; do
    name="$(basename "$source" .cpp)"
    benches+=("$name")
  done
fi

cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${benches[@]}"

mkdir -p "$RESULTS_DIR"

extra_args=()
if [ -n "${MIN_TIME:-}" ]; then
  extra_args+=("--benchmark_min_time=$MIN_TIME")
fi

for name in "${benches[@]}"; do
  out="$RESULTS_DIR/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  "$BUILD_DIR/bench/$name" \
    --benchmark_format=json \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    "${extra_args[@]}" >/dev/null
done

echo "done: ${#benches[@]} benchmark suites in $RESULTS_DIR/"
