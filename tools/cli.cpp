// Thin front end: argv -> ServiceRequest -> ServiceRunner (one cold run),
// plus the two daemon verbs `serve` (run the analysis server on a local
// socket) and `call` (send one request to it). All command logic lives in
// src/service/runner.cpp, shared byte-for-byte between this CLI and the
// daemon.

#include "tools/cli.h"

#include <fstream>
#include <optional>
#include <type_traits>

#include "core/diagnostics.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/runner.h"
#include "service/server.h"

namespace ftsynth::cli {

namespace {

constexpr const char* kUsage = R"(usage: ftsynth <command> <model> [options]

The model is a .mdl architecture file, or an Open-PSA MEF XML document
(sniffed by the .xml extension or a leading '<'): fault-tree roots and
event-tree sequences become the top events, and analyse appends a
per-sequence probability table. audit/diff need a .mdl model.

commands:
  info         print model summary (blocks, hierarchy, annotations)
  validate     run structural validation; exit 1 on errors
  synthesise   synthesise fault trees      (--top, --format, --output)
  analyse      cut sets + reliability      (--top, --time, --tree)
  audit        HAZOP completeness audit; exit 1 on findings
  fmea         system-level FMEA           (--time)
  sensitivity  failure-rate sensitivity    (--top, --time)
  report       full Markdown safety report (--top, --time, --output)
  diff         structural diff vs a revised model (--against FILE)
  load         parse the model and print the info summary (daemon: pins
               the parsed model in the warm cache)
  serve        run the analysis daemon on --socket PATH (line-delimited
               JSON; see docs/FORMATS.md for the wire protocol)
  call         send one request to a running daemon (--socket PATH)

options:
  --top CLASS-PORT   top event, e.g. Omission-brake_force_fl (repeatable;
                     analyse/fmea default to every derivable top event)
  --against FILE     diff: the revised model to compare against
  --format FMT       synthesise output: text (default), dot, xml, json,
                     ftp, openpsa (Open-PSA MEF XML; re-importable);
                     Open-PSA analyse also takes xml or json
  --output FILE      write to FILE instead of stdout
  --time HOURS       mission time for probabilities (default 1)
  --tree             include the rendered tree in analyse output
  --strict           fail fast on the first error (disables recovery)
  --max-errors N     stop collecting after N recovered errors (default 100)
  --deadline-ms N    wall-clock budget for synthesis and analysis
                     (mandatory on daemon requests; `call` defaults to
                     60000 when unset)
  --max-depth N      budget: synthesis recursion-depth cap
  --max-nodes N      budget: fault-tree node cap (0 = unlimited)
  --jobs N           worker threads for synthesise/analyse/fmea
                     (default: hardware concurrency; 1 = serial; output
                     is byte-identical for every N)
  --engine ENG       cut-set engine for analyse/fmea/report: micsup
                     (default), mocus, zbdd (symbolic; fastest on large
                     trees), or bound (anytime best-first: emits the most
                     probable cut sets first and certifies a [lower, upper]
                     interval on P(top); the only engine that returns a
                     sound probability statement on trees beyond exact
                     reach). The exact engines emit identical cut sets;
                     bound matches them when it runs to exhaustion.
  --bound-epsilon E  bound engine: stop once the interval width is <= E
                     (default 1e-6). Negative E disables early stopping:
                     run to exhaustion or budget expiry. With --max-nodes N
                     the bound engine caps total frontier expansions at N.
  --order POL        variable-order policy for the zbdd engine: static
                     (default; the fixed DFS-occurrence heuristic), sift
                     (Rudell sifting on unique-table pressure), or
                     sift-converge (sift until a pass stops paying). Every
                     policy emits identical output; sift keeps the diagram
                     small on adversarially shaped models.
  --prob-mode MODE   probability/importance computation for analyse/fmea/
                     report: cutsets (evaluate the extracted cut-set list),
                     diagram (evaluate the zbdd engine's diagram directly:
                     identical output on clean runs, EXACT probabilities
                     and importance even when the cut-set listing is
                     truncated), or auto (default: diagram exactly when
                     --engine zbdd)
  --cache DIR        persist per-cone cut-set results in DIR and reuse them
                     on later runs of analyse/fmea/report (incremental
                     re-analysis: after an edit only affected cones are
                     recomputed). Stale or corrupt cache files are ignored
                     with a warning; output is byte-identical either way.
                     `serve` keeps DIR warm across requests and restarts.
  --no-cache         disable all cone-result reuse, including the default
                     in-memory sharing across the top events of one run
  --verbose          print run statistics (cone-cache counters, final
                     variable order and reorder effort) to stderr

daemon options:
  --socket PATH          serve/call: AF_UNIX socket path
  --json                 call: print the raw JSON response envelope
  --executors N          serve: concurrent request executors (default 2)
  --queue N              serve: admission queue bound; requests beyond it
                         are shed with `overloaded` (default 16)
  --max-deadline-ms N    serve: clamp every client deadline to N
  --save-interval-ms N   serve: warm-state save period (default 30000;
                         0 disables the periodic save)

exit codes:
  0  clean run                       1  completed, but with diagnostics
  2  parse failure / bad usage       3  structurally invalid model
  4  missing entity (lookup)         5  analysis failure
  6  internal error
)";

struct Options {
  service::ServiceRequest request;
  std::string cache_dir;
  // serve/call:
  std::string socket_path;
  bool json_output = false;
  int executors = 2;
  std::size_t queue_limit = 16;
  long max_deadline_ms = 0;
  long save_interval_ms = 30000;
};

bool is_control_verb(const std::string& command) {
  return command == "ping" || command == "stats" || command == "shutdown";
}

/// Parses argv; returns nullopt (after printing the message) on bad usage.
std::optional<Options> parse_args(const std::vector<std::string>& args,
                                  std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return std::nullopt;
  }
  Options options;
  options.request.command = args[0];
  std::size_t i = 1;
  const bool serve = options.request.command == "serve";
  const bool call = options.request.command == "call";
  if (call) {
    // `call` forwards its own command word: ftsynth call analyse m.mdl ...
    if (i >= args.size() || args[i].rfind("--", 0) == 0) {
      err << "error: call needs a command to send (e.g. ftsynth call "
             "analyse model.mdl --socket PATH)\n";
      return std::nullopt;
    }
    options.request.command = args[i++];
  }
  if (!serve && i < args.size() && args[i].rfind("--", 0) != 0) {
    options.request.model_path = args[i++];
  }
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        err << "error: " << arg << " needs a value\n";
        return std::nullopt;
      }
      return args[++i];
    };
    auto count_value = [&](const char* flag, auto* out) -> bool {
      auto v = value();
      if (!v) return false;
      try {
        if constexpr (std::is_same_v<decltype(out), long*>) {
          *out = std::stol(*v);
        } else if constexpr (std::is_same_v<decltype(out), int*>) {
          *out = std::stoi(*v);
        } else {
          *out = std::stoul(*v);
        }
      } catch (const std::exception&) {
        err << "error: " << flag << " needs a count, got '" << *v << "'\n";
        return false;
      }
      return true;
    };
    if (arg == "--top") {
      auto v = value();
      if (!v) return std::nullopt;
      options.request.tops.push_back(*v);
    } else if (arg == "--against") {
      auto v = value();
      if (!v) return std::nullopt;
      options.request.against_path = *v;
    } else if (arg == "--format") {
      auto v = value();
      if (!v) return std::nullopt;
      options.request.format = *v;
    } else if (arg == "--output") {
      auto v = value();
      if (!v) return std::nullopt;
      options.request.output = *v;
    } else if (arg == "--time") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.request.mission_time_hours = std::stod(*v);
      } catch (const std::exception&) {
        err << "error: --time needs a number, got '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--tree") {
      options.request.render_tree = true;
    } else if (arg == "--strict") {
      options.request.strict = true;
    } else if (arg == "--max-errors") {
      if (!count_value("--max-errors", &options.request.max_errors))
        return std::nullopt;
    } else if (arg == "--deadline-ms") {
      if (!count_value("--deadline-ms", &options.request.deadline_ms))
        return std::nullopt;
      if (options.request.deadline_ms < 0) {
        err << "error: --deadline-ms must be >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--max-depth") {
      if (!count_value("--max-depth", &options.request.max_depth))
        return std::nullopt;
    } else if (arg == "--max-nodes") {
      if (!count_value("--max-nodes", &options.request.max_nodes))
        return std::nullopt;
    } else if (arg == "--jobs") {
      if (!count_value("--jobs", &options.request.jobs)) return std::nullopt;
      if (options.request.jobs < 0) {
        err << "error: --jobs must be >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--engine") {
      auto v = value();
      if (!v) return std::nullopt;
      if (*v == "micsup") {
        options.request.engine = CutSetEngine::kMicsup;
      } else if (*v == "mocus") {
        options.request.engine = CutSetEngine::kMocus;
      } else if (*v == "zbdd") {
        options.request.engine = CutSetEngine::kZbdd;
      } else if (*v == "bound") {
        options.request.engine = CutSetEngine::kBound;
      } else {
        err << "error: unknown --engine '" << *v
            << "' (expected micsup, mocus, zbdd or bound)\n";
        return std::nullopt;
      }
    } else if (arg == "--bound-epsilon") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.request.bound_epsilon = std::stod(*v);
      } catch (const std::exception&) {
        err << "error: --bound-epsilon needs a number, got '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--order") {
      auto v = value();
      if (!v) return std::nullopt;
      if (std::optional<OrderPolicy> policy = parse_order_policy(*v)) {
        options.request.order = *policy;
      } else {
        err << "error: unknown --order '" << *v
            << "' (expected static, sift or sift-converge)\n";
        return std::nullopt;
      }
    } else if (arg == "--prob-mode") {
      auto v = value();
      if (!v) return std::nullopt;
      if (std::optional<ProbMode> mode = parse_prob_mode(*v)) {
        options.request.prob_mode = *mode;
      } else {
        err << "error: unknown --prob-mode '" << *v
            << "' (expected cutsets, diagram or auto)\n";
        return std::nullopt;
      }
    } else if (arg == "--cache") {
      auto v = value();
      if (!v) return std::nullopt;
      options.cache_dir = *v;
    } else if (arg == "--no-cache") {
      options.request.no_cache = true;
    } else if (arg == "--verbose") {
      options.request.verbose = true;
    } else if (arg == "--socket") {
      auto v = value();
      if (!v) return std::nullopt;
      options.socket_path = *v;
    } else if (arg == "--json") {
      options.json_output = true;
    } else if (arg == "--executors") {
      if (!count_value("--executors", &options.executors)) return std::nullopt;
    } else if (arg == "--queue") {
      if (!count_value("--queue", &options.queue_limit)) return std::nullopt;
    } else if (arg == "--max-deadline-ms") {
      if (!count_value("--max-deadline-ms", &options.max_deadline_ms))
        return std::nullopt;
    } else if (arg == "--save-interval-ms") {
      if (!count_value("--save-interval-ms", &options.save_interval_ms))
        return std::nullopt;
    } else if (arg == "--help" || arg == "-h") {
      err << kUsage;
      return std::nullopt;
    } else {
      err << "error: unknown option '" << arg << "'\n" << kUsage;
      return std::nullopt;
    }
  }
  if (serve) {
    if (options.socket_path.empty()) {
      err << "error: serve needs --socket PATH\n";
      return std::nullopt;
    }
    return options;
  }
  if (call) {
    if (options.socket_path.empty()) {
      err << "error: call needs --socket PATH\n";
      return std::nullopt;
    }
    if (options.request.model_path.empty() &&
        !is_control_verb(options.request.command)) {
      err << "error: no model file given\n" << kUsage;
      return std::nullopt;
    }
    return options;
  }
  if (options.request.model_path.empty()) {
    err << "error: no model file given\n" << kUsage;
    return std::nullopt;
  }
  return options;
}

int cmd_serve(const Options& options, std::ostream& out, std::ostream& err) {
  service::ServerOptions server_options;
  server_options.socket_path = options.socket_path;
  server_options.jobs = options.request.jobs;
  server_options.executors = options.executors;
  server_options.queue_limit = options.queue_limit;
  server_options.cache_dir = options.cache_dir;
  server_options.max_deadline_ms = options.max_deadline_ms;
  server_options.save_interval_ms = options.save_interval_ms;
  service::ServiceServer server(server_options);
  std::string error;
  if (!server.start(&error)) {
    err << "error: " << error << "\n";
    return 2;
  }
  err << "listening on " << options.socket_path << "\n";
  err.flush();
  // Runs until a `shutdown` request arrives. A SIGKILL instead is the
  // crash path: the periodic warm-state saves bound what a restart loses.
  server.wait();
  server.stop();
  if (options.request.verbose) err << server.runner().stats_text();
  (void)out;
  return 0;
}

/// The wire JSON for one `call`. Only non-default fields travel, plus the
/// mandatory deadline (defaulted here so ad-hoc calls stay convenient).
service::Json build_wire_request(const Options& options) {
  using service::Json;
  const service::ServiceRequest& request = options.request;
  Json json = Json::object();
  json.set("command", Json::string(request.command));
  if (is_control_verb(request.command)) return json;
  json.set("model", Json::string(request.model_path));
  if (!request.against_path.empty())
    json.set("against", Json::string(request.against_path));
  if (!request.tops.empty()) {
    Json tops = Json::array();
    for (const std::string& top : request.tops)
      tops.push_back(Json::string(top));
    json.set("tops", tops);
  }
  if (request.format != "text") json.set("format", Json::string(request.format));
  if (request.mission_time_hours != 1.0)
    json.set("time_hours", Json::number(request.mission_time_hours));
  if (request.render_tree) json.set("tree", Json::boolean(true));
  if (request.strict) json.set("strict", Json::boolean(true));
  if (request.max_errors != DiagnosticSink::kDefaultMaxErrors)
    json.set("max_errors",
             Json::number(static_cast<double>(request.max_errors)));
  if (request.max_depth != 0)
    json.set("max_depth", Json::number(static_cast<double>(request.max_depth)));
  if (request.max_nodes != 0)
    json.set("max_nodes", Json::number(static_cast<double>(request.max_nodes)));
  if (request.no_cache) json.set("no_cache", Json::boolean(true));
  if (request.verbose) json.set("verbose", Json::boolean(true));
  if (request.engine == CutSetEngine::kMocus) {
    json.set("engine", Json::string("mocus"));
  } else if (request.engine == CutSetEngine::kZbdd) {
    json.set("engine", Json::string("zbdd"));
  } else if (request.engine == CutSetEngine::kBound) {
    json.set("engine", Json::string("bound"));
  }
  if (request.bound_epsilon != 1e-6)
    json.set("bound_epsilon", Json::number(request.bound_epsilon));
  if (request.order == OrderPolicy::kSift) {
    json.set("order", Json::string("sift"));
  } else if (request.order == OrderPolicy::kSiftConverge) {
    json.set("order", Json::string("sift-converge"));
  }
  if (request.prob_mode != ProbMode::kAuto)
    json.set("prob_mode", Json::string(to_string(request.prob_mode)));
  const long deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : 60000;
  json.set("deadline_ms", Json::number(static_cast<double>(deadline_ms)));
  return json;
}

/// Exit code for a daemon-side error response: protocol/usage problems
/// mirror bad usage (2), load-shed and shutdown map to the analysis-failure
/// code (5; the request was valid, the run did not complete), internal = 6.
int exit_code_for_wire_error(std::string_view code) {
  if (code == "bad-request" || code == "budget-required") return 2;
  if (code == "internal") return 6;
  return 5;
}

int cmd_call(const Options& options, std::ostream& out, std::ostream& err) {
  service::ServiceClient client;
  std::string error;
  if (!client.connect(options.socket_path, &error)) {
    err << "error: " << error << "\n";
    return 2;
  }
  std::optional<service::Json> response =
      client.call(build_wire_request(options), &error);
  if (!response) {
    err << "error: " << error << "\n";
    return 6;
  }
  if (options.json_output) {
    out << response->dump() << "\n";
  }
  const service::Json* status = response->find("status");
  if (status == nullptr || !status->is_string()) {
    err << "error: malformed response (no status)\n";
    return 6;
  }
  if (status->as_string() == "error") {
    const service::Json* code = response->find("error");
    const service::Json* message = response->find("message");
    const std::string code_text =
        code != nullptr && code->is_string() ? code->as_string() : "internal";
    err << "error: " << code_text << ": "
        << (message != nullptr && message->is_string() ? message->as_string()
                                                       : "")
        << "\n";
    return exit_code_for_wire_error(code_text);
  }
  const service::Json* output = response->find("output");
  const service::Json* log = response->find("log");
  const service::Json* exit_code = response->find("exit_code");
  if (log != nullptr && log->is_string()) err << log->as_string();
  const std::string text =
      output != nullptr && output->is_string() ? output->as_string() : "";
  if (!options.json_output) {
    // --output is applied client-side: the daemon never writes files for
    // its clients, it only returns bytes.
    if (options.request.output.empty()) {
      out << text;
    } else {
      std::ofstream file(options.request.output);
      if (!file.good()) {
        err << "error: cannot write '" << options.request.output << "'\n";
        return 2;
      }
      file << text;
    }
  }
  return exit_code != nullptr && exit_code->is_number()
             ? static_cast<int>(exit_code->as_number())
             : 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  std::optional<Options> options = parse_args(args, err);
  if (!options) return 2;
  if (options->request.command == "serve") return cmd_serve(*options, out, err);
  if (args[0] == "call") return cmd_call(*options, out, err);
  // Local cold run: one request through the shared runner, byte-for-byte
  // the pre-daemon CLI behaviour. Unknown commands are caught up front so
  // the usage text can accompany the error.
  service::ServiceRunner::Options runner_options;
  runner_options.cache_dir = options->cache_dir;
  service::ServiceRunner runner(runner_options);
  // The request's --output path is handled inside the runner; the CLI only
  // relays the streams.
  service::ServiceResult result = runner.execute(options->request);
  out << result.output;
  err << result.log;
  if (result.exit_code == 2 &&
      result.log.find("unknown command") != std::string::npos) {
    err << kUsage;
  }
  return result.exit_code;
}

}  // namespace ftsynth::cli
