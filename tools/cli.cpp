#include "tools/cli.h"

#include <fstream>
#include <iostream>
#include <optional>

#include "analysis/completeness.h"
#include "analysis/fmea.h"
#include "analysis/report.h"
#include "analysis/markdown_report.h"
#include "analysis/sensitivity.h"
#include "core/error.h"
#include "core/strings.h"
#include "failure/expr_parser.h"
#include "ftp/dot_writer.h"
#include "ftp/ftp_writer.h"
#include "ftp/json_writer.h"
#include "ftp/xml_writer.h"
#include "fta/synthesis.h"
#include "mdl/parser.h"
#include "model/validate.h"

namespace ftsynth::cli {

namespace {

constexpr const char* kUsage = R"(usage: ftsynth <command> <model.mdl> [options]

commands:
  info         print model summary (blocks, hierarchy, annotations)
  validate     run structural validation; exit 2 on errors
  synthesise   synthesise fault trees      (--top, --format, --output)
  analyse      cut sets + reliability      (--top, --time, --tree)
  audit        HAZOP completeness audit; exit 2 on findings
  fmea         system-level FMEA           (--time)
  sensitivity  failure-rate sensitivity    (--top, --time)
  report       full Markdown safety report (--top, --time, --output)

options:
  --top CLASS-PORT   top event, e.g. Omission-brake_force_fl (repeatable;
                     analyse/fmea default to every derivable top event)
  --format FMT       synthesise output: text (default), dot, xml, json, ftp
  --output FILE      write to FILE instead of stdout
  --time HOURS       mission time for probabilities (default 1)
  --tree             include the rendered tree in analyse output
)";

struct Options {
  std::string command;
  std::string model_path;
  std::vector<std::string> tops;
  std::string format = "text";
  std::string output;
  double mission_time_hours = 1.0;
  bool render_tree = false;
};

/// Parses argv; returns nullopt (after printing the message) on bad usage.
std::optional<Options> parse_args(const std::vector<std::string>& args,
                                  std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return std::nullopt;
  }
  Options options;
  options.command = args[0];
  std::size_t i = 1;
  if (i < args.size() && args[i].rfind("--", 0) != 0) {
    options.model_path = args[i++];
  }
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        err << "error: " << arg << " needs a value\n";
        return std::nullopt;
      }
      return args[++i];
    };
    if (arg == "--top") {
      auto v = value();
      if (!v) return std::nullopt;
      options.tops.push_back(*v);
    } else if (arg == "--format") {
      auto v = value();
      if (!v) return std::nullopt;
      options.format = *v;
    } else if (arg == "--output") {
      auto v = value();
      if (!v) return std::nullopt;
      options.output = *v;
    } else if (arg == "--time") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.mission_time_hours = std::stod(*v);
      } catch (const std::exception&) {
        err << "error: --time needs a number, got '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--tree") {
      options.render_tree = true;
    } else if (arg == "--help" || arg == "-h") {
      err << kUsage;
      return std::nullopt;
    } else {
      err << "error: unknown option '" << arg << "'\n" << kUsage;
      return std::nullopt;
    }
  }
  if (options.model_path.empty()) {
    err << "error: no model file given\n" << kUsage;
    return std::nullopt;
  }
  return options;
}

/// Sends `text` to --output or to stdout.
int emit(const std::string& text, const Options& options, std::ostream& out,
         std::ostream& err) {
  if (options.output.empty()) {
    out << text;
    return 0;
  }
  std::ofstream file(options.output);
  if (!file.good()) {
    err << "error: cannot write '" << options.output << "'\n";
    return 1;
  }
  file << text;
  return 0;
}

std::vector<Deviation> resolve_tops(const Model& model,
                                    const Options& options) {
  std::vector<Deviation> tops;
  if (!options.tops.empty()) {
    for (const std::string& top : options.tops)
      tops.push_back(parse_deviation(top, model.registry()));
    return tops;
  }
  // Default: every derivable top event (prune undeveloped roots so only
  // genuinely explained deviations appear).
  SynthesisOptions prune;
  prune.unannotated = SynthesisOptions::UnannotatedPolicy::kPrune;
  Synthesiser probe(model, prune);
  for (const Port* port : model.root().outputs()) {
    for (FailureClass cls : model.registry().all()) {
      Deviation candidate{cls, port->name()};
      if (probe.synthesise(candidate).top() != nullptr)
        tops.push_back(candidate);
    }
  }
  return tops;
}

int cmd_info(const Model& model, const Options& options, std::ostream& out,
             std::ostream& err) {
  std::string text = "model: " + model.name() + "\n";
  text += "blocks: " + std::to_string(model.block_count()) + "\n";
  std::size_t annotated = 0;
  std::size_t malfunctions = 0;
  model.for_each_block([&](const Block& block) {
    if (!block.annotation().rows().empty()) ++annotated;
    malfunctions += block.annotation().malfunctions().size();
  });
  text += "annotated blocks: " + std::to_string(annotated) + "\n";
  text += "malfunctions: " + std::to_string(malfunctions) + "\n";
  text += "boundary inputs:";
  for (const Port* port : model.root().inputs())
    text += " " + port->name().str();
  text += "\nboundary outputs:";
  for (const Port* port : model.root().outputs())
    text += " " + port->name().str();
  text += "\nhierarchy:\n";
  model.for_each_block([&](const Block& block) {
    std::size_t depth = 0;
    for (const Block* b = &block; b->parent() != nullptr; b = b->parent())
      ++depth;
    text += std::string(depth * 2, ' ') + block.name().str() + " [" +
            std::string(to_string(block.kind())) + "]\n";
  });
  return emit(text, options, out, err);
}

int cmd_validate(const Model& model, const Options& options,
                 std::ostream& out, std::ostream& err) {
  std::vector<Issue> issues = validate(model);
  std::string text;
  int errors = 0;
  for (const Issue& issue : issues) {
    text += issue.to_string() + "\n";
    if (issue.severity == Severity::kError) ++errors;
  }
  text += std::to_string(errors) + " error(s), " +
          std::to_string(issues.size() - static_cast<std::size_t>(errors)) +
          " warning(s)\n";
  int rc = emit(text, options, out, err);
  return rc != 0 ? rc : (errors > 0 ? 2 : 0);
}

int cmd_synthesise(const Model& model, const Options& options,
                   std::ostream& out, std::ostream& err) {
  Synthesiser synthesiser(model);
  std::vector<FaultTree> trees;
  for (const Deviation& top : resolve_tops(model, options))
    trees.push_back(synthesiser.synthesise(top));
  if (trees.empty()) {
    err << "error: no top events (give --top or annotate the model)\n";
    return 1;
  }
  std::string text;
  if (options.format == "text") {
    for (const FaultTree& tree : trees) text += tree.to_text() + "\n";
  } else if (options.format == "dot") {
    for (const FaultTree& tree : trees) text += write_dot(tree);
  } else if (options.format == "xml") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_xml(pointers);
  } else if (options.format == "json") {
    for (const FaultTree& tree : trees) text += write_json(tree);
  } else if (options.format == "ftp") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_ftp_project(model.name(), pointers);
  } else {
    err << "error: unknown --format '" << options.format << "'\n";
    return 1;
  }
  return emit(text, options, out, err);
}

int cmd_analyse(const Model& model, const Options& options, std::ostream& out,
                std::ostream& err) {
  AnalysisOptions analysis_options;
  analysis_options.probability.mission_time_hours =
      options.mission_time_hours;
  analysis_options.render_tree = options.render_tree;
  Synthesiser synthesiser(model);
  std::string text;
  for (const Deviation& top : resolve_tops(model, options)) {
    FaultTree tree = synthesiser.synthesise(top);
    TreeAnalysis analysis = analyse_tree(tree, analysis_options);
    text += render(tree, analysis, analysis_options) + "\n";
  }
  if (text.empty()) {
    err << "error: no top events (give --top or annotate the model)\n";
    return 1;
  }
  return emit(text, options, out, err);
}

int cmd_audit(const Model& model, const Options& options, std::ostream& out,
              std::ostream& err) {
  std::vector<CompletenessFinding> findings = audit_completeness(model);
  std::string text;
  for (const CompletenessFinding& finding : findings)
    text += finding.to_string() + "\n";
  text += std::to_string(findings.size()) + " finding(s)\n";
  int rc = emit(text, options, out, err);
  return rc != 0 ? rc : (findings.empty() ? 0 : 2);
}

int cmd_report(const Model& model, const Options& options,
               std::ostream& out, std::ostream& err) {
  MarkdownReportOptions report_options;
  report_options.analysis.probability.mission_time_hours =
      options.mission_time_hours;
  std::vector<std::string> tops;
  for (const Deviation& top : resolve_tops(model, options))
    tops.push_back(top.to_string());
  if (tops.empty()) {
    err << "error: no top events (give --top or annotate the model)\n";
    return 1;
  }
  return emit(markdown_report(model, tops, report_options), options, out,
              err);
}

int cmd_sensitivity(const Model& model, const Options& options,
                    std::ostream& out, std::ostream& err) {
  SensitivityOptions sensitivity;
  sensitivity.probability.mission_time_hours = options.mission_time_hours;
  Synthesiser synthesiser(model);
  std::string text;
  for (const Deviation& top : resolve_tops(model, options)) {
    FaultTree tree = synthesiser.synthesise(top);
    text += "=== " + tree.top_description() + " ===\n";
    text += render_sensitivity(rate_sensitivity(tree, sensitivity));
  }
  if (text.empty()) {
    err << "error: no top events (give --top or annotate the model)\n";
    return 1;
  }
  return emit(text, options, out, err);
}

int cmd_fmea(const Model& model, const Options& options, std::ostream& out,
             std::ostream& err) {
  ProbabilityOptions probability;
  probability.mission_time_hours = options.mission_time_hours;
  Synthesiser synthesiser(model);
  std::vector<FaultTree> trees;
  for (const Deviation& top : resolve_tops(model, options))
    trees.push_back(synthesiser.synthesise(top));
  if (trees.empty()) {
    err << "error: no derivable top events in this model\n";
    return 1;
  }
  std::vector<CutSetAnalysis> analyses;
  analyses.reserve(trees.size());
  for (const FaultTree& tree : trees)
    analyses.push_back(minimal_cut_sets(tree));
  std::vector<const FaultTree*> tree_ptrs;
  std::vector<const CutSetAnalysis*> analysis_ptrs;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    tree_ptrs.push_back(&trees[i]);
    analysis_ptrs.push_back(&analyses[i]);
  }
  std::string text =
      render_fmea(synthesise_fmea(tree_ptrs, analysis_ptrs, probability));
  return emit(text, options, out, err);
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  std::optional<Options> options = parse_args(args, err);
  if (!options) return 1;
  try {
    // `validate` parses without the implicit validation so it can report
    // the issues itself instead of dying on the first one.
    Model model = parse_mdl_file(options->model_path,
                                 options->command != "validate");
    if (options->command == "info") return cmd_info(model, *options, out, err);
    if (options->command == "validate")
      return cmd_validate(model, *options, out, err);
    if (options->command == "synthesise" || options->command == "synthesize")
      return cmd_synthesise(model, *options, out, err);
    if (options->command == "analyse" || options->command == "analyze")
      return cmd_analyse(model, *options, out, err);
    if (options->command == "audit") return cmd_audit(model, *options, out, err);
    if (options->command == "fmea") return cmd_fmea(model, *options, out, err);
    if (options->command == "sensitivity")
      return cmd_sensitivity(model, *options, out, err);
    if (options->command == "report")
      return cmd_report(model, *options, out, err);
    err << "error: unknown command '" << options->command << "'\n" << kUsage;
    return 1;
  } catch (const Error& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace ftsynth::cli
