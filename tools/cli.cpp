#include "tools/cli.h"

#include <fstream>
#include <iostream>
#include <optional>

#include "analysis/batch.h"
#include "analysis/cache.h"
#include "analysis/completeness.h"
#include "analysis/cutsets.h"
#include "analysis/fmea.h"
#include "analysis/report.h"
#include "analysis/markdown_report.h"
#include "analysis/sensitivity.h"
#include "core/budget.h"
#include "core/diagnostics.h"
#include "core/error.h"
#include "core/parallel.h"
#include "core/strings.h"
#include "core/thread_pool.h"
#include "failure/expr_parser.h"
#include "ftp/dot_writer.h"
#include "ftp/ftp_writer.h"
#include "ftp/json_writer.h"
#include "ftp/xml_writer.h"
#include "fta/synthesis.h"
#include "mdl/parser.h"
#include "model/validate.h"

namespace ftsynth::cli {

namespace {

constexpr const char* kUsage = R"(usage: ftsynth <command> <model.mdl> [options]

commands:
  info         print model summary (blocks, hierarchy, annotations)
  validate     run structural validation; exit 1 on errors
  synthesise   synthesise fault trees      (--top, --format, --output)
  analyse      cut sets + reliability      (--top, --time, --tree)
  audit        HAZOP completeness audit; exit 1 on findings
  fmea         system-level FMEA           (--time)
  sensitivity  failure-rate sensitivity    (--top, --time)
  report       full Markdown safety report (--top, --time, --output)

options:
  --top CLASS-PORT   top event, e.g. Omission-brake_force_fl (repeatable;
                     analyse/fmea default to every derivable top event)
  --format FMT       synthesise output: text (default), dot, xml, json, ftp
  --output FILE      write to FILE instead of stdout
  --time HOURS       mission time for probabilities (default 1)
  --tree             include the rendered tree in analyse output
  --strict           fail fast on the first error (disables recovery)
  --max-errors N     stop collecting after N recovered errors (default 100)
  --deadline-ms N    wall-clock budget for synthesis and analysis
  --jobs N           worker threads for synthesise/analyse/fmea
                     (default: hardware concurrency; 1 = serial; output
                     is byte-identical for every N)
  --engine ENG       cut-set engine for analyse/fmea/report: micsup
                     (default), mocus, or zbdd (symbolic; fastest on large
                     trees). Every engine emits identical cut sets.
  --order POL        variable-order policy for the zbdd engine: static
                     (default; the fixed DFS-occurrence heuristic), sift
                     (Rudell sifting on unique-table pressure), or
                     sift-converge (sift until a pass stops paying). Every
                     policy emits identical output; sift keeps the diagram
                     small on adversarially shaped models.
  --cache DIR        persist per-cone cut-set results in DIR and reuse them
                     on later runs of analyse/fmea/report (incremental
                     re-analysis: after an edit only affected cones are
                     recomputed). Stale or corrupt cache files are ignored
                     with a warning; output is byte-identical either way.
  --no-cache         disable all cone-result reuse, including the default
                     in-memory sharing across the top events of one run
  --verbose          print run statistics (cone-cache counters, final
                     variable order and reorder effort) to stderr

exit codes:
  0  clean run                       1  completed, but with diagnostics
  2  parse failure / bad usage       3  structurally invalid model
  4  missing entity (lookup)         5  analysis failure
  6  internal error
)";

struct Options {
  std::string command;
  std::string model_path;
  std::vector<std::string> tops;
  std::string format = "text";
  std::string output;
  double mission_time_hours = 1.0;
  bool render_tree = false;
  bool strict = false;
  std::size_t max_errors = DiagnosticSink::kDefaultMaxErrors;
  long deadline_ms = 0;  ///< 0 = no deadline
  int jobs = 0;          ///< 0 = hardware concurrency; 1 = serial
  CutSetEngine engine = CutSetEngine::kMicsup;
  /// --order: diagram variable-order policy (static default: byte-stable
  /// without opting in, and reordering costs time on well-shaped models).
  OrderPolicy order = OrderPolicy::kStatic;
  std::string cache_dir;   ///< --cache DIR; empty = no persistent layer
  bool no_cache = false;   ///< --no-cache wins over --cache
  bool verbose = false;    ///< --verbose stats block on stderr
  /// Armed once per run (one shared deadline latch); every stage copies it.
  Budget budget;
};

/// Parses argv; returns nullopt (after printing the message) on bad usage.
std::optional<Options> parse_args(const std::vector<std::string>& args,
                                  std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return std::nullopt;
  }
  Options options;
  options.command = args[0];
  std::size_t i = 1;
  if (i < args.size() && args[i].rfind("--", 0) != 0) {
    options.model_path = args[i++];
  }
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        err << "error: " << arg << " needs a value\n";
        return std::nullopt;
      }
      return args[++i];
    };
    if (arg == "--top") {
      auto v = value();
      if (!v) return std::nullopt;
      options.tops.push_back(*v);
    } else if (arg == "--format") {
      auto v = value();
      if (!v) return std::nullopt;
      options.format = *v;
    } else if (arg == "--output") {
      auto v = value();
      if (!v) return std::nullopt;
      options.output = *v;
    } else if (arg == "--time") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.mission_time_hours = std::stod(*v);
      } catch (const std::exception&) {
        err << "error: --time needs a number, got '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--tree") {
      options.render_tree = true;
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--max-errors") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.max_errors = std::stoul(*v);
      } catch (const std::exception&) {
        err << "error: --max-errors needs a count, got '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--deadline-ms") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.deadline_ms = std::stol(*v);
      } catch (const std::exception&) {
        err << "error: --deadline-ms needs a count, got '" << *v << "'\n";
        return std::nullopt;
      }
      if (options.deadline_ms < 0) {
        err << "error: --deadline-ms must be >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--jobs") {
      auto v = value();
      if (!v) return std::nullopt;
      try {
        options.jobs = std::stoi(*v);
      } catch (const std::exception&) {
        err << "error: --jobs needs a count, got '" << *v << "'\n";
        return std::nullopt;
      }
      if (options.jobs < 0) {
        err << "error: --jobs must be >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--engine") {
      auto v = value();
      if (!v) return std::nullopt;
      if (*v == "micsup") {
        options.engine = CutSetEngine::kMicsup;
      } else if (*v == "mocus") {
        options.engine = CutSetEngine::kMocus;
      } else if (*v == "zbdd") {
        options.engine = CutSetEngine::kZbdd;
      } else {
        err << "error: unknown --engine '" << *v
            << "' (expected micsup, mocus or zbdd)\n";
        return std::nullopt;
      }
    } else if (arg == "--order") {
      auto v = value();
      if (!v) return std::nullopt;
      if (std::optional<OrderPolicy> policy = parse_order_policy(*v)) {
        options.order = *policy;
      } else {
        err << "error: unknown --order '" << *v
            << "' (expected static, sift or sift-converge)\n";
        return std::nullopt;
      }
    } else if (arg == "--cache") {
      auto v = value();
      if (!v) return std::nullopt;
      options.cache_dir = *v;
    } else if (arg == "--no-cache") {
      options.no_cache = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      err << kUsage;
      return std::nullopt;
    } else {
      err << "error: unknown option '" << arg << "'\n" << kUsage;
      return std::nullopt;
    }
  }
  if (options.model_path.empty()) {
    err << "error: no model file given\n" << kUsage;
    return std::nullopt;
  }
  return options;
}

/// Hard-failure exit code for an error category (see kUsage).
int exit_code_for(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kParse:
      return 2;
    case ErrorKind::kModel:
      return 3;
    case ErrorKind::kLookup:
      return 4;
    case ErrorKind::kAnalysis:
      return 5;
    case ErrorKind::kInternal:
      break;
  }
  return 6;
}

/// Copies the run's single armed budget: every stage of every worker
/// shares one deadline latch, so --deadline-ms bites globally.
Budget make_budget(const Options& options) { return options.budget; }

/// --verbose stats block. Stats go to stderr so stdout stays byte-identical
/// with and without the cache (the acceptance bar for this feature).
void report_cache_stats(const Options& options,
                        const std::optional<ConeCacheStats>& stats,
                        std::ostream& err) {
  if (!options.verbose) return;
  if (stats) {
    err << stats->to_string() << "\n";
  } else {
    err << "cone cache: disabled\n";
  }
}

/// --verbose reordering stats for one analysed top event. Stderr only, like
/// the cache stats: stdout must stay byte-identical across --order policies.
void report_reorder_stats(const Options& options, const std::string& top,
                          const std::optional<ReorderReport>& reorder,
                          std::ostream& err) {
  if (!options.verbose || !reorder) return;
  err << "variable order [" << top << "]: policy " << reorder->policy
      << ", passes " << reorder->passes << ", swaps " << reorder->swaps
      << ", nodes " << reorder->nodes_before << " -> " << reorder->nodes_after
      << " (root " << reorder->root_nodes << ")\n";
  if (!reorder->final_order.empty()) {
    err << "  final order: ";
    for (std::size_t i = 0; i < reorder->final_order.size(); ++i) {
      if (i != 0) err << ", ";
      err << reorder->final_order[i];
    }
    err << "\n";
  }
}

/// Synthesis options for a command run: resource budget always, degraded
/// mode (diagnostics instead of aborts) unless --strict.
SynthesisOptions synthesis_options(const Options& options,
                                   DiagnosticSink& sink) {
  SynthesisOptions synthesis;
  synthesis.budget = make_budget(options);
  if (!options.strict) synthesis.sink = &sink;
  return synthesis;
}

/// Sends `text` to --output or to stdout.
int emit(const std::string& text, const Options& options, std::ostream& out,
         std::ostream& err) {
  if (options.output.empty()) {
    out << text;
    return 0;
  }
  std::ofstream file(options.output);
  if (!file.good()) {
    err << "error: cannot write '" << options.output << "'\n";
    return 2;
  }
  file << text;
  return 0;
}

std::vector<Deviation> resolve_tops(const Model& model,
                                    const Options& options,
                                    ThreadPool* pool = nullptr) {
  std::vector<Deviation> tops;
  if (!options.tops.empty()) {
    for (const std::string& top : options.tops)
      tops.push_back(parse_deviation(top, model.registry()));
    return tops;
  }
  // Default: every derivable top event (prune undeveloped roots so only
  // genuinely explained deviations appear). The probe synthesises every
  // (output port x class) candidate, so it parallelises like the real run;
  // the candidate list and its order are independent of the pool.
  SynthesisOptions prune;
  prune.unannotated = SynthesisOptions::UnannotatedPolicy::kPrune;
  prune.budget = make_budget(options);
  // The probe only decides which candidates are worth synthesising; its
  // degraded-mode diagnostics would duplicate the real run's, so they go
  // to a throwaway sink (thread-safe: probe workers share it).
  DiagnosticSink probe_sink;
  if (!options.strict) prune.sink = &probe_sink;
  std::vector<Deviation> candidates;
  for (const Port* port : model.root().outputs()) {
    for (FailureClass cls : model.registry().all())
      candidates.push_back(Deviation{cls, port->name()});
  }
  std::vector<char> derivable(candidates.size(), 0);
  parallel_for(pool, candidates.size(), [&](std::size_t i) {
    Synthesiser probe(model, prune);
    derivable[i] = probe.synthesise(candidates[i]).top() != nullptr ? 1 : 0;
  });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (derivable[i] != 0) tops.push_back(candidates[i]);
  }
  return tops;
}

int cmd_info(const Model& model, const Options& options, std::ostream& out,
             std::ostream& err) {
  std::string text = "model: " + model.name() + "\n";
  text += "blocks: " + std::to_string(model.block_count()) + "\n";
  std::size_t annotated = 0;
  std::size_t malfunctions = 0;
  model.for_each_block([&](const Block& block) {
    if (!block.annotation().rows().empty()) ++annotated;
    malfunctions += block.annotation().malfunctions().size();
  });
  text += "annotated blocks: " + std::to_string(annotated) + "\n";
  text += "malfunctions: " + std::to_string(malfunctions) + "\n";
  text += "boundary inputs:";
  for (const Port* port : model.root().inputs())
    text += " " + port->name().str();
  text += "\nboundary outputs:";
  for (const Port* port : model.root().outputs())
    text += " " + port->name().str();
  text += "\nhierarchy:\n";
  model.for_each_block([&](const Block& block) {
    std::size_t depth = 0;
    for (const Block* b = &block; b->parent() != nullptr; b = b->parent())
      ++depth;
    text += std::string(depth * 2, ' ') + block.name().str() + " [" +
            std::string(to_string(block.kind())) + "]\n";
  });
  return emit(text, options, out, err);
}

int cmd_validate(const Model& model, const Options& options,
                 DiagnosticSink& sink, std::ostream& out, std::ostream& err) {
  std::vector<Issue> issues = validate(model);
  std::string text;
  int errors = 0;
  for (const Issue& issue : issues) {
    text += issue.to_string() + "\n";
    if (issue.severity == Severity::kError) ++errors;
  }
  text += std::to_string(errors) + " error(s), " +
          std::to_string(issues.size() - static_cast<std::size_t>(errors)) +
          " warning(s)\n";
  int rc = emit(text, options, out, err);
  if (rc != 0) return rc;
  // The recovering parser already forwarded these to the sink; in --strict
  // mode forward them here so the exit-code logic is uniform.
  if (options.strict) {
    for (const Issue& issue : issues) {
      sink.report({issue.severity, ErrorKind::kModel, {}, issue.block_path,
                   issue.message});
    }
  }
  return 0;
}

/// Replays one batch item's diagnostics and error into the shared sink in
/// the order a serial loop would have produced them. Returns false when
/// the item failed (strict mode rethrows instead; non-Error exceptions
/// always propagate, as they would from a serial loop body).
bool replay_item(BatchItem& item, const Options& options,
                 DiagnosticSink& sink) {
  for (const Diagnostic& diagnostic : item.diagnostics)
    sink.report(diagnostic);
  if (!item.error) return true;
  if (options.strict) std::rethrow_exception(item.error);
  try {
    std::rethrow_exception(item.error);
  } catch (const Error& error) {
    sink.error_from(error, item.top.to_string());
  }
  return false;
}

int cmd_synthesise(const Model& model, const Options& options,
                   DiagnosticSink& sink, ThreadPool* pool, std::ostream& out,
                   std::ostream& err) {
  BatchOptions batch_options;
  batch_options.synthesis = synthesis_options(options, sink);
  batch_options.analyse = false;
  BatchResult batch = analyse_batch(model, resolve_tops(model, options, pool),
                                    batch_options, pool);
  std::vector<FaultTree> trees;
  for (BatchItem& item : batch.items) {
    if (replay_item(item, options, sink)) trees.push_back(std::move(*item.tree));
  }
  if (trees.empty()) {
    if (sink.has_errors()) return exit_code_for(sink.first_error_kind());
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  std::string text;
  if (options.format == "text") {
    for (const FaultTree& tree : trees) text += tree.to_text() + "\n";
  } else if (options.format == "dot") {
    for (const FaultTree& tree : trees) text += write_dot(tree);
  } else if (options.format == "xml") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_xml(pointers);
  } else if (options.format == "json") {
    for (const FaultTree& tree : trees) text += write_json(tree);
  } else if (options.format == "ftp") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_ftp_project(model.name(), pointers);
  } else {
    err << "error: unknown --format '" << options.format << "'\n";
    return 2;
  }
  return emit(text, options, out, err);
}

int cmd_analyse(const Model& model, const Options& options,
                DiagnosticSink& sink, ThreadPool* pool, std::ostream& out,
                std::ostream& err) {
  BatchOptions batch_options;
  batch_options.synthesis = synthesis_options(options, sink);
  batch_options.analysis.probability.mission_time_hours =
      options.mission_time_hours;
  batch_options.analysis.render_tree = options.render_tree;
  batch_options.analysis.cut_sets.engine = options.engine;
  batch_options.analysis.cut_sets.order = options.order;
  batch_options.analysis.cut_sets.budget = make_budget(options);
  batch_options.analysis.probability.budget = make_budget(options);
  batch_options.share_cones = !options.no_cache;
  // --cache DIR: preload the persistent cone results and hand the cache to
  // the batch (it then skips its own run-local one).
  std::optional<ConeCache> persistent;
  if (!options.no_cache && !options.cache_dir.empty()) {
    persistent.emplace(cone_keyspace(batch_options.analysis.cut_sets));
    persistent->load(options.cache_dir, &sink);
    batch_options.analysis.cut_sets.cone_cache = &*persistent;
  }
  BatchResult batch = analyse_batch(model, resolve_tops(model, options, pool),
                                    batch_options, pool);
  if (persistent) persistent->save(options.cache_dir, &sink);
  report_cache_stats(options, batch.cache_stats, err);
  std::string text;
  for (BatchItem& item : batch.items) {
    if (!replay_item(item, options, sink)) continue;
    report_reorder_stats(options, item.top.to_string(),
                         item.analysis->cut_sets.reorder, err);
    if (!options.strict && item.analysis->cut_sets.deadline_exceeded) {
      sink.warning(ErrorKind::kAnalysis,
                   "cut-set analysis stopped at the deadline; "
                   "results are partial",
                   {}, item.top.to_string());
    }
    text += render(*item.tree, *item.analysis, batch_options.analysis) + "\n";
  }
  if (text.empty()) {
    if (sink.has_errors()) return exit_code_for(sink.first_error_kind());
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  return emit(text, options, out, err);
}

int cmd_audit(const Model& model, const Options& options, std::ostream& out,
              std::ostream& err) {
  std::vector<CompletenessFinding> findings = audit_completeness(model);
  std::string text;
  for (const CompletenessFinding& finding : findings)
    text += finding.to_string() + "\n";
  text += std::to_string(findings.size()) + " finding(s)\n";
  int rc = emit(text, options, out, err);
  return rc != 0 ? rc : (findings.empty() ? 0 : 1);
}

int cmd_report(const Model& model, const Options& options,
               DiagnosticSink& sink, std::ostream& out, std::ostream& err) {
  MarkdownReportOptions report_options;
  report_options.analysis.probability.mission_time_hours =
      options.mission_time_hours;
  report_options.analysis.cut_sets.engine = options.engine;
  report_options.analysis.cut_sets.order = options.order;
  report_options.analysis.cut_sets.budget = make_budget(options);
  report_options.analysis.probability.budget = make_budget(options);
  std::optional<ConeCache> cones;
  if (!options.no_cache) {
    cones.emplace(cone_keyspace(report_options.analysis.cut_sets));
    if (!options.cache_dir.empty()) cones->load(options.cache_dir, &sink);
    report_options.analysis.cut_sets.cone_cache = &*cones;
  }
  std::vector<std::string> tops;
  for (const Deviation& top : resolve_tops(model, options))
    tops.push_back(top.to_string());
  if (tops.empty()) {
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  const std::string text = markdown_report(model, tops, report_options);
  if (cones && !options.cache_dir.empty())
    cones->save(options.cache_dir, &sink);
  report_cache_stats(
      options, cones ? std::optional<ConeCacheStats>(cones->stats())
                     : std::nullopt,
      err);
  return emit(text, options, out, err);
}

int cmd_sensitivity(const Model& model, const Options& options,
                    DiagnosticSink& sink, std::ostream& out,
                    std::ostream& err) {
  SensitivityOptions sensitivity;
  sensitivity.probability.mission_time_hours = options.mission_time_hours;
  Synthesiser synthesiser(model, synthesis_options(options, sink));
  std::string text;
  for (const Deviation& top : resolve_tops(model, options)) {
    if (!options.strict) {
      try {
        FaultTree tree = synthesiser.synthesise(top);
        text += "=== " + tree.top_description() + " ===\n";
        text += render_sensitivity(rate_sensitivity(tree, sensitivity));
      } catch (const Error& error) {
        sink.error_from(error, top.to_string());
      }
      continue;
    }
    FaultTree tree = synthesiser.synthesise(top);
    text += "=== " + tree.top_description() + " ===\n";
    text += render_sensitivity(rate_sensitivity(tree, sensitivity));
  }
  if (text.empty()) {
    if (sink.has_errors()) return exit_code_for(sink.first_error_kind());
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  return emit(text, options, out, err);
}

int cmd_fmea(const Model& model, const Options& options, DiagnosticSink& sink,
             ThreadPool* pool, std::ostream& out, std::ostream& err) {
  ProbabilityOptions probability;
  probability.mission_time_hours = options.mission_time_hours;
  probability.budget = make_budget(options);
  CutSetOptions cut_set_options;
  cut_set_options.engine = options.engine;
  cut_set_options.order = options.order;
  cut_set_options.budget = make_budget(options);
  cut_set_options.pool = pool;
  // FMEA analyses every derivable top event of one model: prime sharing
  // territory for the cone cache (plus the persistent layer on --cache).
  std::optional<ConeCache> cones;
  if (!options.no_cache) {
    cones.emplace(cone_keyspace(cut_set_options));
    if (!options.cache_dir.empty()) cones->load(options.cache_dir, &sink);
    cut_set_options.cone_cache = &*cones;
  }
  BatchOptions batch_options;
  batch_options.synthesis = synthesis_options(options, sink);
  batch_options.analyse = false;
  BatchResult batch = analyse_batch(model, resolve_tops(model, options, pool),
                                    batch_options, pool);
  std::vector<FaultTree> trees;
  for (BatchItem& item : batch.items) {
    if (replay_item(item, options, sink)) trees.push_back(std::move(*item.tree));
  }
  if (trees.empty()) {
    if (sink.has_errors()) return exit_code_for(sink.first_error_kind());
    err << "error: no derivable top events in this model\n";
    return 2;
  }
  std::vector<CutSetAnalysis> analyses =
      parallel_map(pool, trees.size(), [&](std::size_t i) {
        return compute_cut_sets(trees[i], cut_set_options);
      });
  if (cones && !options.cache_dir.empty())
    cones->save(options.cache_dir, &sink);
  report_cache_stats(
      options, cones ? std::optional<ConeCacheStats>(cones->stats())
                     : std::nullopt,
      err);
  for (std::size_t i = 0; i < trees.size(); ++i)
    report_reorder_stats(options, trees[i].top_description(),
                         analyses[i].reorder, err);
  std::vector<const FaultTree*> tree_ptrs;
  std::vector<const CutSetAnalysis*> analysis_ptrs;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    tree_ptrs.push_back(&trees[i]);
    analysis_ptrs.push_back(&analyses[i]);
  }
  std::string text =
      render_fmea(synthesise_fmea(tree_ptrs, analysis_ptrs, probability));
  return emit(text, options, out, err);
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  std::optional<Options> options = parse_args(args, err);
  if (!options) return 2;
  DiagnosticSink sink(options->max_errors);
  int rc = 0;
  try {
    // `validate` parses without the implicit validation so it can report
    // the issues itself instead of dying on the first one; the recovering
    // parser (default) reports syntax AND validation problems to the sink
    // and returns the best-effort model.
    Model model = options->strict
                      ? parse_mdl_file(options->model_path,
                                       options->command != "validate")
                      : parse_mdl_file(options->model_path, sink);
    // One budget, armed once: every stage and worker copies it, so they
    // all share a single deadline latch.
    if (options->deadline_ms > 0)
      options->budget.set_deadline_ms(options->deadline_ms);
    // One pool for the whole command. --jobs 1 keeps everything on this
    // thread (no pool at all); the parallel commands produce byte-identical
    // output either way.
    const int jobs = options->jobs == 0
                         ? static_cast<int>(ThreadPool::hardware_threads())
                         : options->jobs;
    std::optional<ThreadPool> owned_pool;
    if (jobs > 1) owned_pool.emplace(jobs);
    ThreadPool* pool = owned_pool ? &*owned_pool : nullptr;
    const std::string& command = options->command;
    if (command == "info") {
      rc = cmd_info(model, *options, out, err);
    } else if (command == "validate") {
      rc = cmd_validate(model, *options, sink, out, err);
    } else if (command == "synthesise" || command == "synthesize") {
      rc = cmd_synthesise(model, *options, sink, pool, out, err);
    } else if (command == "analyse" || command == "analyze") {
      rc = cmd_analyse(model, *options, sink, pool, out, err);
    } else if (command == "audit") {
      rc = cmd_audit(model, *options, out, err);
    } else if (command == "fmea") {
      rc = cmd_fmea(model, *options, sink, pool, out, err);
    } else if (command == "sensitivity") {
      rc = cmd_sensitivity(model, *options, sink, out, err);
    } else if (command == "report") {
      rc = cmd_report(model, *options, sink, out, err);
    } else {
      err << "error: unknown command '" << command << "'\n" << kUsage;
      return 2;
    }
  } catch (const Error& error) {
    err << "error: " << error.what() << "\n";
    if (!sink.empty()) err << sink.render_table();
    return exit_code_for(error.kind());
  }
  if (!sink.empty()) err << sink.render_table();
  if (rc != 0) return rc;
  return sink.has_errors() ? 1 : 0;
}

}  // namespace ftsynth::cli
