#!/usr/bin/env python3
"""Soak test for the `ftsynth serve` daemon.

Usage:
    tools/soak_service.py [--ftsynth PATH] [--requests N] [--clients N]

Drives a live daemon through ~200 mixed requests (default) and checks the
robustness ladder end to end, from outside the process boundary:

  * valid analyse/report/fmea/info traffic across engines (including the
    anytime bound engine at several convergence targets) and order
    policies, byte-compared against fresh serial CLI runs of the same
    flags (the daemon's byte-identity contract);
  * malformed JSON lines, unknown commands and unbudgeted requests, which
    must each earn their distinct wire error and never take the daemon
    down;
  * requests for missing and malformed model files, which must degrade
    into the CLI's diagnostic exit codes inside an ok envelope;
  * tiny deadlines, which must come back promptly as either a partial
    result or a `deadline` shed -- never a hang;
  * a mid-run SIGKILL of the daemon followed by a warm restart from the
    same --cache directory: the survivor must answer the same requests
    byte-identically (crash costs freshness, never correctness);
  * an orderly `shutdown` request, after which the process must exit 0.

Exits non-zero on the first contract violation, printing what diverged.
CI runs this as the daemon soak job; it is also handy interactively when
touching src/service/.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time


class Client:
    """Line-delimited JSON client for one daemon connection."""

    def __init__(self, socket_path: str):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(120)
        self.sock.connect(socket_path)
        self.buffer = b""

    def call(self, request: dict) -> dict:
        self.sock.sendall(json.dumps(request).encode() + b"\n")
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(line)

    def send_raw(self, line: bytes) -> dict:
        self.sock.sendall(line + b"\n")
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buffer += chunk
        response, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(response)

    def close(self) -> None:
        self.sock.close()


def wait_for_socket(path: str, process: subprocess.Popen, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with {process.returncode}"
            )
        if os.path.exists(path):
            try:
                Client(path).close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise RuntimeError("daemon socket never came up")


def start_daemon(ftsynth: str, sock: str, cache: str) -> subprocess.Popen:
    if os.path.exists(sock):
        os.unlink(sock)
    process = subprocess.Popen(
        [
            ftsynth,
            "serve",
            "--socket",
            sock,
            "--cache",
            cache,
            "--save-interval-ms",
            "500",
            "--executors",
            "2",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    wait_for_socket(sock, process)
    return process


def serial_reference(ftsynth: str, args: list[str]) -> tuple[int, bytes]:
    run = subprocess.run(
        [ftsynth] + args + ["--jobs", "1"], capture_output=True, check=False
    )
    return run.returncode, run.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ftsynth", default="./build/tools/ftsynth")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--seed", type=int, default=20010423)
    args = parser.parse_args()
    rng = random.Random(args.seed)

    workdir = tempfile.mkdtemp(prefix="ftsynth_soak_")
    sock = os.path.join(workdir, "daemon.sock")
    cache = os.path.join(workdir, "cache")

    malformed_model = os.path.join(workdir, "malformed.mdl")
    with open(malformed_model, "w", encoding="utf-8") as handle:
        handle.write('Model { Name "broken" System { Block {')  # truncated

    # The valid workload: (request fields, CLI flags) pairs whose daemon
    # output must be byte-identical to the serial CLI.
    model = "examples/duplex.mdl"
    workload = []
    for engine in ("micsup", "mocus", "zbdd"):
        for order in ("static", "sift"):
            workload.append(
                (
                    {"command": "analyse", "model": model, "engine": engine,
                     "order": order},
                    ["analyse", model, "--engine", engine, "--order", order],
                )
            )
    # Explicit prob modes: diagram-native evaluation (zbdd) and forced
    # cut-set evaluation, both byte-identical to the serial CLI.
    for prob_mode in ("diagram", "cutsets"):
        workload.append(
            (
                {"command": "analyse", "model": model, "engine": "zbdd",
                 "prob_mode": prob_mode},
                ["analyse", model, "--engine", "zbdd",
                 "--prob-mode", prob_mode],
            )
        )
    workload.append(
        (
            {"command": "fmea", "model": model, "engine": "zbdd",
             "prob_mode": "diagram"},
            ["fmea", model, "--engine", "zbdd", "--prob-mode", "diagram"],
        )
    )
    # The anytime bound engine: default convergence target, an explicit
    # tight target (distinct response-memo key), and a run-to-exhaustion
    # request -- all byte-identical to the serial CLI.
    workload.append(
        (
            {"command": "analyse", "model": model, "engine": "bound"},
            ["analyse", model, "--engine", "bound"],
        )
    )
    workload.append(
        (
            {"command": "analyse", "model": model, "engine": "bound",
             "bound_epsilon": 1e-9},
            ["analyse", model, "--engine", "bound", "--bound-epsilon", "1e-9"],
        )
    )
    workload.append(
        (
            {"command": "report", "model": model, "engine": "bound",
             "bound_epsilon": -1},
            ["report", model, "--engine", "bound", "--bound-epsilon", "-1"],
        )
    )
    workload.append(({"command": "info", "model": model}, ["info", model]))
    workload.append(({"command": "fmea", "model": model}, ["fmea", model]))
    workload.append(({"command": "report", "model": model}, ["report", model]))
    # Open-PSA event-tree traffic: the daemon sniffs the XML model, runs
    # the sequence pipeline, and must answer byte-identically to the
    # serial CLI -- including the structured `sequences` wire field, which
    # rides through the response memo (checked below for every ok
    # analyse/report answer on this model).
    xml_model = "tests/openpsa/event_tree.xml"
    workload.append(
        ({"command": "analyse", "model": xml_model}, ["analyse", xml_model])
    )
    workload.append(
        (
            {"command": "analyse", "model": xml_model, "engine": "bound",
             "bound_epsilon": -1},
            ["analyse", xml_model, "--engine", "bound",
             "--bound-epsilon", "-1"],
        )
    )
    workload.append(
        ({"command": "report", "model": xml_model}, ["report", xml_model])
    )
    workload.append(
        ({"command": "info", "model": xml_model}, ["info", xml_model])
    )

    print("computing serial references ...")
    references = [serial_reference(args.ftsynth, flags) for _, flags in workload]
    for (request, flags), (code, _) in zip(workload, references):
        if code != 0:
            print(f"reference run failed: {flags} -> {code}", file=sys.stderr)
            return 1

    failures: list[str] = []
    counters = {"ok": 0, "wire_error": 0}

    def check(response: dict, request: dict, reference: tuple[int, bytes] | None) -> None:
        if reference is not None:
            code, stdout = reference
            if response.get("status") != "ok":
                failures.append(f"{request}: expected ok, got {response}")
            elif response.get("exit_code") != code:
                failures.append(
                    f"{request}: exit {response.get('exit_code')} != {code}"
                )
            elif response.get("output", "").encode() != stdout:
                failures.append(f"{request}: output diverged from serial CLI")
            elif (
                request.get("model", "").endswith(".xml")
                and request["command"] in ("analyse", "report")
                and len(response.get("sequences", [])) != 2
            ):
                # Both LOSP sequences must arrive as structured rows on
                # every answer -- cold, warm, and memo-replayed alike.
                failures.append(f"{request}: missing sequences field")
            else:
                counters["ok"] += 1
        else:
            counters["wire_error"] += 1

    def run_mixed_traffic(count: int) -> None:
        clients = [Client(sock) for _ in range(args.clients)]
        try:
            for i in range(count):
                client = clients[i % len(clients)]
                roll = rng.random()
                if roll < 0.55:
                    index = rng.randrange(len(workload))
                    request = dict(workload[index][0])
                    request["deadline_ms"] = 600000
                    request["id"] = i
                    response = client.call(request)
                    check(response, request, references[index])
                elif roll < 0.65:  # malformed JSON: bad-request, no crash
                    response = client.send_raw(b'{"command": "analyse", ')
                    if response.get("error") != "bad-request":
                        failures.append(f"malformed JSON -> {response}")
                    counters["wire_error"] += 1
                elif roll < 0.72:  # unknown command
                    response = client.call(
                        {"command": "explode", "model": model,
                         "deadline_ms": 1000}
                    )
                    if response.get("error") != "bad-request":
                        failures.append(f"unknown command -> {response}")
                    counters["wire_error"] += 1
                elif roll < 0.79:  # missing budget
                    response = client.call({"command": "info", "model": model})
                    if response.get("error") != "budget-required":
                        failures.append(f"unbudgeted -> {response}")
                    counters["wire_error"] += 1
                elif roll < 0.86:  # malformed model: degrades inside ok envelope
                    response = client.call(
                        {"command": "analyse", "model": malformed_model,
                         "deadline_ms": 600000}
                    )
                    if response.get("status") == "ok":
                        if response.get("exit_code") == 0:
                            failures.append("malformed model analysed cleanly")
                    else:
                        failures.append(f"malformed model -> {response}")
                    counters["wire_error"] += 1
                elif roll < 0.93:  # missing model file
                    response = client.call(
                        {"command": "analyse", "model": "/nonexistent.mdl",
                         "deadline_ms": 600000}
                    )
                    if response.get("status") != "ok" or response.get("exit_code") != 2:
                        failures.append(f"missing model -> {response}")
                    counters["wire_error"] += 1
                else:  # tiny deadline: partial result or deadline shed, never a hang
                    request = {"command": "fmea", "model": model,
                               "deadline_ms": 1}
                    response = client.call(request)
                    if response.get("status") == "error" and response.get(
                        "error"
                    ) not in ("deadline", "overloaded"):
                        failures.append(f"tiny deadline -> {response}")
                    counters["wire_error"] += 1
        finally:
            for client in clients:
                client.close()

    half = args.requests // 2
    print(f"phase 1: {half} mixed requests against a cold daemon ...")
    daemon = start_daemon(args.ftsynth, sock, cache)
    run_mixed_traffic(half)

    # Let the periodic saver persist the warm state, then kill hard:
    # no shutdown handler runs, exactly like a crash.
    time.sleep(1.0)
    print("SIGKILL mid-run; restarting warm from the same --cache ...")
    daemon.send_signal(signal.SIGKILL)
    daemon.wait()

    daemon = start_daemon(args.ftsynth, sock, cache)
    print(f"phase 2: {args.requests - half} mixed requests after the crash ...")
    run_mixed_traffic(args.requests - half)

    print("orderly shutdown ...")
    shutdown_client = Client(sock)
    response = shutdown_client.call({"command": "shutdown"})
    shutdown_client.close()
    if response.get("status") != "ok":
        failures.append(f"shutdown -> {response}")
    exit_code = daemon.wait(timeout=60)
    if exit_code != 0:
        failures.append(f"daemon exited {exit_code} after shutdown")

    print(
        f"done: {counters['ok']} byte-checked ok responses, "
        f"{counters['wire_error']} degraded/error paths exercised"
    )
    if failures:
        print(f"\n{len(failures)} contract violation(s):", file=sys.stderr)
        for failure in failures[:20]:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("soak passed: no contract violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
