// The ftsynth command-line driver (testable core).
//
// The paper's tool is an interactive pipeline (Simulink -> text file ->
// parser -> synthesis -> Fault Tree Plus). This CLI is the batch
// equivalent over the same text format:
//
//   ftsynth info       <model.mdl>                    model summary
//   ftsynth validate   <model.mdl>                    structural checks
//   ftsynth synthesise <model.mdl> --top <Class-port> [--format text|dot|
//                      xml|json|ftp] [--output FILE]  fault tree synthesis
//   ftsynth analyse    <model.mdl> --top <Class-port> [--time HOURS]
//                      [--tree]                       cut sets/reliability
//   ftsynth audit      <model.mdl>                    HAZOP completeness
//   ftsynth fmea       <model.mdl> [--time HOURS]     system-level FMEA
//   ftsynth sensitivity <model.mdl> [--top ...] [--time HOURS]
//                                                      rate sensitivity
//   ftsynth report     <model.mdl> [--top ...] [--time HOURS]
//                      [--output FILE]                 Markdown safety report
//   ftsynth diff       <model.mdl> --against FILE     structural model diff
//   ftsynth serve      --socket PATH [--cache DIR]    analysis daemon
//   ftsynth call       <command> [model.mdl] --socket PATH
//                                                      one daemon request
//
// --top may repeat; `analyse` and `fmea` default to every derivable top
// event (boundary outputs x registered classes with a non-empty tree).
//
// The command logic itself lives in src/service/runner.h (shared with the
// `serve` daemon); this module is the argv front end. `serve` answers
// line-delimited JSON requests over a local socket with warm state --
// parsed models and cone caches -- kept across requests and persisted
// crash-safely to --cache DIR (docs/FORMATS.md documents the protocol).
//
// By default the driver runs resiliently: the parser recovers from syntax
// errors, synthesis degrades unresolvable propagations to marked
// undeveloped events, and every problem is collected as a structured
// diagnostic (rendered as a table on stderr at the end of the run).
// --strict restores fail-fast behaviour; --max-errors caps collection;
// --deadline-ms puts a wall-clock budget on synthesis and analysis.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftsynth::cli {

/// Runs the driver. `args` excludes the program name. Returns the process
/// exit code:
///   0  clean run, no diagnostics
///   1  run completed but produced error diagnostics (including validation
///      errors and audit findings)
///   2  parse failure or bad usage       3  structurally invalid model
///   4  missing entity (lookup)          5  analysis failure
///   6  internal error
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace ftsynth::cli
