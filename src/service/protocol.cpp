#include "service/protocol.h"

#include <cmath>

namespace ftsynth::service {

std::string_view to_string(WireErrorCode code) noexcept {
  switch (code) {
    case WireErrorCode::kBadRequest:
      return "bad-request";
    case WireErrorCode::kBudgetRequired:
      return "budget-required";
    case WireErrorCode::kOverloaded:
      return "overloaded";
    case WireErrorCode::kDeadline:
      return "deadline";
    case WireErrorCode::kShuttingDown:
      return "shutting-down";
    case WireErrorCode::kInternal:
      break;
  }
  return "internal";
}

namespace {

/// Commands the daemon executes through the runner. `sensitivity`,
/// `audit` etc. ride along for free -- the runner speaks them all.
bool known_command(std::string_view command) noexcept {
  return command == "info" || command == "validate" ||
         command == "synthesise" || command == "synthesize" ||
         command == "analyse" || command == "analyze" ||
         command == "audit" || command == "fmea" ||
         command == "sensitivity" || command == "report" ||
         command == "diff" || command == "load";
}

/// Typed field extraction: every helper fails (returns false and sets
/// `error`) on a present-but-wrong-typed value. A daemon must reject what
/// it does not understand, not coerce it.
bool read_string(const Json& object, std::string_view key, std::string* out,
                 WireError* error) {
  const Json* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_string()) {
    *error = {WireErrorCode::kBadRequest,
              "field '" + std::string(key) + "' must be a string"};
    return false;
  }
  *out = value->as_string();
  return true;
}

bool read_bool(const Json& object, std::string_view key, bool* out,
               WireError* error) {
  const Json* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_bool()) {
    *error = {WireErrorCode::kBadRequest,
              "field '" + std::string(key) + "' must be a boolean"};
    return false;
  }
  *out = value->as_bool();
  return true;
}

bool read_number(const Json& object, std::string_view key, double* out,
                 WireError* error) {
  const Json* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_number()) {
    *error = {WireErrorCode::kBadRequest,
              "field '" + std::string(key) + "' must be a number"};
    return false;
  }
  *out = value->as_number();
  return true;
}

bool read_count(const Json& object, std::string_view key, std::size_t* out,
                WireError* error) {
  double value = static_cast<double>(*out);
  if (!read_number(object, key, &value, error)) return false;
  if (value < 0 || value != std::floor(value)) {
    *error = {WireErrorCode::kBadRequest,
              "field '" + std::string(key) + "' must be a non-negative integer"};
    return false;
  }
  *out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

std::variant<WireRequest, WireError> parse_wire_request(
    std::string_view line) {
  std::string parse_error;
  std::optional<Json> json = Json::parse(line, &parse_error);
  if (!json) {
    return WireError{WireErrorCode::kBadRequest,
                     "malformed JSON: " + parse_error};
  }
  if (!json->is_object()) {
    return WireError{WireErrorCode::kBadRequest,
                     "request must be a JSON object"};
  }

  WireRequest out;
  if (const Json* id = json->find("id")) out.id = *id;

  // Everything from here on knows the request id; stamp it onto any
  // error so the response can echo it.
  const auto fail = [&](WireError error) {
    error.id = out.id;
    return error;
  };
  WireError error;
  std::string command;
  if (!read_string(*json, "command", &command, &error))
    return fail(error);
  if (command.empty()) {
    return fail(WireError{WireErrorCode::kBadRequest, "missing 'command'"});
  }
  if (command == "ping") {
    out.control = ControlCommand::kPing;
    return out;
  }
  if (command == "stats") {
    out.control = ControlCommand::kStats;
    return out;
  }
  if (command == "shutdown") {
    out.control = ControlCommand::kShutdown;
    return out;
  }
  if (!known_command(command)) {
    return fail(WireError{WireErrorCode::kBadRequest,
                     "unknown command '" + command + "'"});
  }

  ServiceRequest& request = out.request;
  request.command = command;
  if (!read_string(*json, "model", &request.model_path, &error)) return fail(error);
  if (request.model_path.empty()) {
    return fail(WireError{WireErrorCode::kBadRequest,
                     "missing 'model' (path to the .mdl file)"});
  }
  if (!read_string(*json, "against", &request.against_path, &error))
    return fail(error);
  if (const Json* tops = json->find("tops")) {
    if (!tops->is_array()) {
      return fail(WireError{WireErrorCode::kBadRequest,
                       "field 'tops' must be an array of strings"});
    }
    for (const Json& top : tops->as_array()) {
      if (!top.is_string()) {
        return fail(WireError{WireErrorCode::kBadRequest,
                         "field 'tops' must be an array of strings"});
      }
      request.tops.push_back(top.as_string());
    }
  }
  if (!read_string(*json, "format", &request.format, &error)) return fail(error);
  if (!read_number(*json, "time_hours", &request.mission_time_hours, &error))
    return fail(error);
  if (!read_bool(*json, "tree", &request.render_tree, &error)) return fail(error);
  if (!read_bool(*json, "strict", &request.strict, &error)) return fail(error);
  if (!read_count(*json, "max_errors", &request.max_errors, &error))
    return fail(error);
  if (!read_count(*json, "max_depth", &request.max_depth, &error))
    return fail(error);
  if (!read_count(*json, "max_nodes", &request.max_nodes, &error))
    return fail(error);
  if (!read_bool(*json, "no_cache", &request.no_cache, &error)) return fail(error);
  if (!read_bool(*json, "verbose", &request.verbose, &error)) return fail(error);

  std::string engine;
  if (!read_string(*json, "engine", &engine, &error)) return fail(error);
  if (!engine.empty()) {
    if (engine == "micsup") {
      request.engine = CutSetEngine::kMicsup;
    } else if (engine == "mocus") {
      request.engine = CutSetEngine::kMocus;
    } else if (engine == "zbdd") {
      request.engine = CutSetEngine::kZbdd;
    } else if (engine == "bound") {
      request.engine = CutSetEngine::kBound;
    } else {
      return fail(WireError{WireErrorCode::kBadRequest,
                       "unknown engine '" + engine + "'"});
    }
  }
  if (!read_number(*json, "bound_epsilon", &request.bound_epsilon, &error))
    return fail(error);
  std::string order;
  if (!read_string(*json, "order", &order, &error)) return fail(error);
  if (!order.empty()) {
    if (std::optional<OrderPolicy> policy = parse_order_policy(order)) {
      request.order = *policy;
    } else {
      return fail(WireError{WireErrorCode::kBadRequest,
                       "unknown order policy '" + order + "'"});
    }
  }
  std::string prob_mode;
  if (!read_string(*json, "prob_mode", &prob_mode, &error)) return fail(error);
  if (!prob_mode.empty()) {
    if (std::optional<ProbMode> mode = parse_prob_mode(prob_mode)) {
      request.prob_mode = *mode;
    } else {
      return fail(WireError{WireErrorCode::kBadRequest,
                       "unknown prob mode '" + prob_mode + "'"});
    }
  }

  // The mandatory per-request budget: a wall-clock deadline, always.
  // max_depth/max_nodes refine it but cannot stand in for it -- only the
  // deadline bounds how long a request can hold a worker.
  double deadline = 0;
  if (!read_number(*json, "deadline_ms", &deadline, &error)) return fail(error);
  if (deadline <= 0 || deadline != std::floor(deadline)) {
    return fail(WireError{
        WireErrorCode::kBudgetRequired,
        "every request must carry a budget: 'deadline_ms' (positive integer "
        "milliseconds) is required"});
  }
  request.deadline_ms = static_cast<long>(deadline);
  return out;
}

std::string render_ok_response(const Json& id, const ServiceResult& result) {
  Json response = Json::object();
  response.set("id", id);
  response.set("status", Json::string("ok"));
  response.set("exit_code", Json::number(result.exit_code));
  response.set("output", Json::string(result.output));
  response.set("log", Json::string(result.log));
  // Open-PSA event-tree runs carry structured per-sequence rows so wire
  // clients need not scrape the text table. Absent (not an empty array)
  // for every other request -- pre-event-tree envelopes are unchanged.
  if (!result.sequences.empty()) {
    Json rows = Json::array();
    for (const SequenceSummary& row : result.sequences) {
      Json entry = Json::object();
      entry.set("name", Json::string(row.name));
      entry.set("probability", Json::number(row.probability));
      if (row.p_lower) entry.set("p_lower", Json::number(*row.p_lower));
      if (row.p_upper) entry.set("p_upper", Json::number(*row.p_upper));
      entry.set("cut_sets",
                Json::number(static_cast<double>(row.cut_set_count)));
      entry.set("min_order", Json::number(static_cast<double>(row.min_order)));
      entry.set("truncated", Json::boolean(row.truncated));
      rows.push_back(std::move(entry));
    }
    response.set("sequences", std::move(rows));
  }
  return response.dump();
}

std::string render_error_response(const Json& id, WireErrorCode code,
                                  std::string_view message) {
  Json response = Json::object();
  response.set("id", id);
  response.set("status", Json::string("error"));
  response.set("error", Json::string(std::string(to_string(code))));
  response.set("message", Json::string(std::string(message)));
  return response.dump();
}

std::string render_control_response(const Json& id, std::string_view output) {
  ServiceResult result;
  result.output = std::string(output);
  return render_ok_response(id, result);
}

}  // namespace ftsynth::service
