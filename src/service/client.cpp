#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ftsynth::service {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool ServiceClient::connect(const std::string& socket_path,
                            std::string* error) {
  close();
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof address.sun_path) {
    set_error(error, "bad socket path '" + socket_path + "'");
    return false;
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_error(error, std::strerror(errno));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    set_error(error, "connect '" + socket_path + "': " + std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool ServiceClient::send_line(const std::string& line, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  std::string framed = line;
  framed.push_back('\n');
  std::size_t offset = 0;
  while (offset < framed.size()) {
    const ssize_t sent = ::send(fd_, framed.data() + offset,
                                framed.size() - offset, kSendFlags);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      set_error(error, "send: " + std::string(std::strerror(errno)));
      return false;
    }
    offset += static_cast<std::size_t>(sent);
  }
  return true;
}

bool ServiceClient::read_line(std::string* line, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got == 0) {
      set_error(error, "connection closed by server");
      return false;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      set_error(error, "recv: " + std::string(std::strerror(errno)));
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

std::optional<Json> ServiceClient::call(const Json& request,
                                        std::string* error) {
  if (!send_line(request.dump(), error)) return std::nullopt;
  std::string line;
  if (!read_line(&line, error)) return std::nullopt;
  std::string parse_error;
  std::optional<Json> response = Json::parse(line, &parse_error);
  if (!response) {
    set_error(error, "malformed response: " + parse_error);
    return std::nullopt;
  }
  return response;
}

}  // namespace ftsynth::service
