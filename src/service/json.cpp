#include "service/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ftsynth::service {

Json Json::boolean(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::array(Array value) {
  Json json;
  json.kind_ = Kind::kArray;
  json.array_ = std::move(value);
  return json;
}

Json Json::object(Object value) {
  Json json;
  json.kind_ = Kind::kObject;
  json.object_ = std::move(value);
  return json;
}

const Json* Json::find(std::string_view key) const noexcept {
  const Json* found = nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) found = &value;
  }
  return found;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) return;
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (kind_ != Kind::kArray) return;
  array_.push_back(std::move(value));
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char byte : text) {
    switch (byte) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (byte < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", byte);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(byte));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void dump_number(double value, std::string& out) {
  // Integral doubles print without an exponent or trailing ".0" (request
  // ids and counts round-trip as the client sent them); everything else
  // uses shortest-round-trip formatting.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    out += buffer;
    return;
  }
  if (!std::isfinite(value)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void dump_value(const Json& json, std::string& out) {
  switch (json.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += json.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kNumber:
      dump_number(json.as_number(), out);
      return;
    case Json::Kind::kString:
      out += json_quote(json.as_string());
      return;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& element : json.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(element, out);
      }
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : json.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        out += json_quote(key);
        out.push_back(':');
        dump_value(value, out);
      }
      out.push_back('}');
      return;
    }
  }
}

/// Strict recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    std::optional<Json> value = parse_value(0);
    if (!value) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing characters after the value";
      return std::nullopt;
    }
    return value;
  }

 private:
  /// Nesting ceiling: a request is small; a 10k-deep array is an attack.
  static constexpr int kMaxDepth = 64;

  std::optional<Json> fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return std::nullopt;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s) return std::nullopt;
      return Json::string(std::move(*s));
    }
    if (c == 't') {
      if (!consume_word("true")) return fail("invalid literal");
      return Json::boolean(true);
    }
    if (c == 'f') {
      if (!consume_word("false")) return fail("invalid literal");
      return Json::boolean(false);
    }
    if (c == 'n') {
      if (!consume_word("null")) return fail("invalid literal");
      return Json();
    }
    return parse_number();
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    double value = 0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) return fail("malformed number");
    return Json::number(value);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected a string");
      return std::nullopt;
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("malformed \\u escape");
              return std::nullopt;
            }
          }
          // Encode the code point as UTF-8. Surrogate pairs are not
          // stitched (model paths and analysis text are ASCII in
          // practice); a lone surrogate round-trips as its 3-byte form.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
  }

  std::optional<Json> parse_array(int depth) {
    consume('[');
    Json out = Json::array();
    skip_whitespace();
    if (consume(']')) return out;
    while (true) {
      std::optional<Json> element = parse_value(depth + 1);
      if (!element) return std::nullopt;
      out.push_back(std::move(*element));
      skip_whitespace();
      if (consume(']')) return out;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  std::optional<Json> parse_object(int depth) {
    consume('{');
    Json out = Json::object();
    skip_whitespace();
    if (consume('}')) return out;
    while (true) {
      skip_whitespace();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      std::optional<Json> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      out.set(std::move(*key), std::move(*value));
      skip_whitespace();
      if (consume('}')) return out;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace ftsynth::service
