// Service command handlers for Open-PSA MEF models.
//
// runner.cpp dispatches a request here when its model path sniffs as XML
// (openpsa_model). The handlers import the document (src/openpsa/), run
// the imported fault-tree roots and event-tree sequence tops through the
// same deterministic batch pipeline as .mdl models -- every engine,
// --jobs, --order, --prob-mode, the cone cache and the response memo work
// unchanged -- and render through the same emit/exit-code discipline, so
// `ftsynth analyse model.xml` behaves exactly like its .mdl counterpart.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/event_tree.h"

namespace ftsynth::service {

struct Exec;

/// True when `path` should go to the Open-PSA handlers: the extension is
/// .xml, or the file's leading non-whitespace byte is '<'. An unreadable
/// non-.xml path returns false so the mdl parser reports its canonical
/// "cannot read" error.
bool openpsa_model(const std::string& path);

/// Executes exec.request against the Open-PSA model at its model_path.
/// Returns the command's exit code (the sink may add more); fills
/// `sequences` with the event-tree rows of analyse/report runs (cleared
/// otherwise). Throws ftsynth::Error exactly like the .mdl handlers --
/// execute()'s catch ladder maps it to the exit code.
int run_openpsa_command(Exec& exec, std::ostream& out, std::ostream& err,
                        std::vector<SequenceSummary>* sequences);

}  // namespace ftsynth::service
