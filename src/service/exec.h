// Shared per-request execution state for the service command handlers.
//
// Internal to src/service/: runner.cpp owns request dispatch for .mdl
// models, openpsa_commands.cpp for Open-PSA XML models. Both sets of
// handlers thread the same Exec through the same helpers (exit-code
// mapping, cone-cache selection, --verbose stat reporting), so a command
// behaves identically whichever parser fed it.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "analysis/batch.h"
#include "analysis/cache.h"
#include "core/budget.h"
#include "core/diagnostics.h"
#include "service/runner.h"

namespace ftsynth {
class ThreadPool;
}

namespace ftsynth::service {

/// Per-request execution state threaded through the command handlers.
/// `budget` is the run's single armed budget: every stage copies it, so
/// all of them share one deadline latch (and the daemon's
/// disconnect/shutdown force_expire reaches every worker).
struct Exec {
  const ServiceRequest& request;
  ServiceRunner& runner;
  DiagnosticSink& sink;
  ThreadPool* pool = nullptr;
  Budget budget;

  Budget make_budget() const { return budget; }
};

namespace detail {

/// Hard-failure exit code for an error category (see tools/cli.h).
int exit_code_for(ErrorKind kind) noexcept;

/// Sends `text` to the request's --output file or to the result output.
int emit(const std::string& text, const Exec& exec, std::ostream& out,
         std::ostream& err);

/// The cone cache a command should use, or nullptr (--no-cache, and cold
/// mode without a cache_dir unless `always_local`). See runner.cpp for
/// the full warm/cold discipline.
ConeCache* choose_cone_cache(Exec& exec, const CutSetOptions& cut_sets,
                             bool always_local,
                             std::optional<ConeCache>& local);

/// Cold-mode counterpart of choose_cone_cache: persists the request-local
/// cache after the run (the CLI's per-run --cache DIR round trip).
void save_local_cache(Exec& exec, std::optional<ConeCache>& local);

/// --verbose stat blocks. All go to the log so `output` stays
/// byte-identical across cache/order/jobs variants (the acceptance bar).
void report_cache_stats(const Exec& exec,
                        const std::optional<ConeCacheStats>& stats,
                        std::ostream& err);
void report_reorder_stats(const Exec& exec, const std::string& top,
                          const std::optional<ReorderReport>& reorder,
                          std::ostream& err);
void report_frontier_stats(const Exec& exec, const std::string& top,
                           const std::optional<FrontierStats>& frontier,
                           std::ostream& err);

/// Replays one batch item's diagnostics and error into the shared sink in
/// the order a serial loop would have produced them. Returns false when
/// the item failed (strict mode rethrows instead; non-Error exceptions
/// always propagate, as they would from a serial loop body).
bool replay_item(BatchItem& item, Exec& exec);

}  // namespace detail

}  // namespace ftsynth::service
