// Blocking line client for the `ftsynth serve` daemon.
//
// Speaks the wire protocol of service/protocol.h over an AF_UNIX stream
// socket: one JSON request per line out, one JSON response line back.
// Used by `ftsynth call`, the service tests and the CI soak harness --
// and it doubles as the reference implementation for anyone writing a
// client in another language (see docs/FORMATS.md).

#pragma once

#include <optional>
#include <string>

#include "service/json.h"

namespace ftsynth::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();  ///< closes the connection

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to the daemon's socket. Returns false (message in `error`)
  /// when the socket is absent or refuses -- the daemon is not running.
  bool connect(const std::string& socket_path, std::string* error);

  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request line (newline appended here).
  bool send_line(const std::string& line, std::string* error);

  /// Blocks for the next response line (newline stripped). Returns false
  /// on EOF/reset -- the daemon went away mid-call.
  bool read_line(std::string* line, std::string* error);

  /// send_line + read_line + Json::parse in one step. Returns nullopt
  /// (message in `error`) on any transport or parse failure.
  std::optional<Json> call(const Json& request, std::string* error);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace ftsynth::service
