// The daemon's line-delimited JSON wire protocol.
//
// One request per line, one response line per request, over a local
// stream socket (docs/FORMATS.md §"Service wire protocol" documents the
// full field tables). This module is the pure translation layer between
// wire JSON and the structured ServiceRequest/ServiceResult types -- no
// I/O, so every malformed-input path is unit-testable without a socket.
//
// Robustness contract: parsing NEVER throws and never guesses. Anything
// malformed -- bad JSON, a missing command, an unknown field value, and
// in particular a missing budget -- comes back as a typed WireError the
// server turns into an error response. A budget is MANDATORY on every
// executing request (`deadline_ms` > 0): a daemon serving many clients
// cannot let one of them submit unbounded work.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "service/json.h"
#include "service/runner.h"

namespace ftsynth::service {

/// Wire error codes (the `error` field of an error response).
/// Stable strings: clients and the soak harness match on them.
enum class WireErrorCode {
  kBadRequest,      ///< malformed JSON / unknown command / bad field
  kBudgetRequired,  ///< executing request without a positive deadline_ms
  kOverloaded,      ///< admission queue full -- retry later (load shed)
  kDeadline,        ///< deadline expired before execution finished admission
  kShuttingDown,    ///< server is stopping; no new work accepted
  kInternal,        ///< unexpected server-side failure
};

std::string_view to_string(WireErrorCode code) noexcept;

struct WireError {
  WireErrorCode code = WireErrorCode::kBadRequest;
  std::string message;
  /// The request's id when one was readable (echoed in the error
  /// response so pipelining clients can match it), else null.
  Json id;
};

/// Control verbs the server answers without touching the runner.
enum class ControlCommand {
  kNone,      ///< a normal executing request
  kPing,      ///< liveness probe
  kStats,     ///< warm-state counters
  kShutdown,  ///< orderly stop (responds, then the server drains)
};

/// One parsed request line: the echoed id, either a control verb or an
/// executable ServiceRequest.
struct WireRequest {
  Json id;  ///< echoed verbatim in the response (null when absent)
  ControlCommand control = ControlCommand::kNone;
  ServiceRequest request;
};

/// Parses one request line. Returns a WireError instead of throwing;
/// the mandatory-budget rule is enforced here (control verbs exempt).
std::variant<WireRequest, WireError> parse_wire_request(
    std::string_view line);

/// Response renderers; each returns one complete JSON line WITHOUT the
/// trailing newline (the transport adds framing).
///
/// Success envelope: {"id":..,"status":"ok","exit_code":N,
///                    "output":"..","log":".."}
/// Error envelope:   {"id":..,"status":"error","error":"<code>",
///                    "message":".."}
std::string render_ok_response(const Json& id, const ServiceResult& result);
std::string render_error_response(const Json& id, WireErrorCode code,
                                  std::string_view message);
/// Control responses reuse the ok envelope with exit_code 0 and the
/// payload (pong text, stats block) in `output`.
std::string render_control_response(const Json& id, std::string_view output);

}  // namespace ftsynth::service
