#include "service/openpsa_commands.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <ostream>
#include <utility>

#include "analysis/batch.h"
#include "analysis/fmea.h"
#include "analysis/report.h"
#include "analysis/sensitivity.h"
#include "core/error.h"
#include "core/parallel.h"
#include "core/strings.h"
#include "ftp/dot_writer.h"
#include "ftp/ftp_writer.h"
#include "ftp/json_writer.h"
#include "ftp/openpsa_writer.h"
#include "ftp/xml_writer.h"
#include "openpsa/mef_reader.h"
#include "service/exec.h"

namespace ftsynth::service {

namespace {

using namespace detail;
using openpsa::MefModel;
using openpsa::MefTop;

/// Imports the request's model (strict: throw on the first semantic
/// problem; default: recover through the sink) and applies the --top
/// selection. An unknown --top name is a lookup error, like the mdl path.
MefModel load_model(Exec& exec) {
  MefModel mef =
      exec.request.strict
          ? openpsa::read_openpsa_file(exec.request.model_path)
          : openpsa::read_openpsa_file(exec.request.model_path, exec.sink);
  if (exec.request.tops.empty()) return mef;
  std::vector<MefTop> selected;
  for (const std::string& name : exec.request.tops) {
    auto it = std::find_if(
        mef.tops.begin(), mef.tops.end(),
        [&](const MefTop& top) { return top.name == name; });
    require(it != mef.tops.end(), ErrorKind::kLookup,
            "no top event '" + name +
                "' in this model (Open-PSA tops are named "
                "\"fault-tree\", \"fault-tree.gate\" or "
                "\"event-tree/sequence\")");
    selected.push_back(std::move(*it));
    // Leave a non-matching shell behind so a repeated --top NAME fails
    // the lookup above instead of analysing a moved-from tree.
    it->name.clear();
  }
  mef.tops = std::move(selected);
  return mef;
}

/// Exit for commands that found nothing to work on: diagnostics explain
/// it when present, otherwise the canonical no-tops parse error.
int empty_exit(Exec& exec, std::ostream& err) {
  if (exec.sink.has_errors())
    return exit_code_for(exec.sink.first_error_kind());
  err << "error: no importable top events in this model\n";
  return 2;
}

/// The request's analysis knobs, exactly as the mdl handlers map them.
AnalysisOptions analysis_options(Exec& exec) {
  AnalysisOptions analysis;
  analysis.probability.mission_time_hours = exec.request.mission_time_hours;
  analysis.render_tree = exec.request.render_tree;
  analysis.cut_sets.engine = exec.request.engine;
  analysis.cut_sets.bound_epsilon = exec.request.bound_epsilon;
  analysis.cut_sets.order = exec.request.order;
  analysis.cut_sets.budget = exec.make_budget();
  analysis.probability.budget = exec.make_budget();
  analysis.prob_mode = exec.request.prob_mode;
  return analysis;
}

/// Moves the selected tops into the deterministic batch pipeline. Labels
/// are the MEF top names, so diagnostics and --verbose stats report
/// "fault-tree.gate" / "event-tree/sequence" names.
BatchResult run_batch(MefModel& mef, Exec& exec,
                      const BatchOptions& batch_options) {
  std::vector<FaultTree> trees;
  std::vector<std::string> labels;
  trees.reserve(mef.tops.size());
  for (MefTop& top : mef.tops) {
    labels.push_back(top.name);
    trees.push_back(std::move(top.tree));
  }
  return analyse_trees(std::move(trees), labels, batch_options, exec.pool);
}

int cmd_openpsa_info(const MefModel& mef, Exec& exec, std::ostream& out,
                     std::ostream& err) {
  std::string text = "model: " + mef.name + "\n";
  text += "fault trees: " + std::to_string(mef.fault_tree_count) + "\n";
  text += "event trees: " + std::to_string(mef.event_tree_count) + "\n";
  text += "gates: " + std::to_string(mef.gate_count) + "\n";
  text += "basic events: " + std::to_string(mef.basic_event_count) + "\n";
  text += "house events: " + std::to_string(mef.house_event_count) + "\n";
  text += "sequences: " + std::to_string(mef.sequence_count) + "\n";
  text += "top events:\n";
  for (const MefTop& top : mef.tops) {
    text += "  " + top.name + " [" +
            (top.kind == MefTop::Kind::kSequence ? "sequence" : "fault-tree") +
            "]\n";
  }
  return emit(text, exec, out, err);
}

int cmd_openpsa_validate(const MefModel& mef, Exec& exec, std::ostream& out,
                         std::ostream& err) {
  // The import itself is the validation pass: semantic problems are
  // already in the sink (rendered into the log; they drive the exit
  // code). The output carries the summary the mdl validate prints.
  std::string text = "model: " + mef.name + "\n";
  text += "top events: " + std::to_string(mef.tops.size()) + "\n";
  text += std::to_string(exec.sink.error_count()) + " error(s), " +
          std::to_string(exec.sink.warning_count()) + " warning(s)\n";
  return emit(text, exec, out, err);
}

int cmd_openpsa_synthesise(const MefModel& mef, Exec& exec, std::ostream& out,
                           std::ostream& err) {
  if (mef.tops.empty()) return empty_exit(exec, err);
  std::vector<const FaultTree*> pointers;
  for (const MefTop& top : mef.tops) pointers.push_back(&top.tree);
  std::string text;
  const std::string& format = exec.request.format;
  if (format == "text") {
    for (const FaultTree* tree : pointers) text += tree->to_text() + "\n";
  } else if (format == "dot") {
    for (const FaultTree* tree : pointers) text += write_dot(*tree);
  } else if (format == "xml") {
    text = write_xml(pointers);
  } else if (format == "json") {
    for (const FaultTree* tree : pointers) text += write_json(*tree);
  } else if (format == "ftp") {
    text = write_ftp_project(mef.name, pointers);
  } else if (format == "openpsa") {
    text = write_openpsa(pointers);
  } else {
    err << "error: unknown --format '" << format << "'\n";
    return 2;
  }
  return emit(text, exec, out, err);
}

int cmd_openpsa_analyse(MefModel& mef, Exec& exec, std::ostream& out,
                        std::ostream& err,
                        std::vector<SequenceSummary>* sequences) {
  if (mef.tops.empty()) return empty_exit(exec, err);
  const std::string& format = exec.request.format;
  if (format != "text" && format != "xml" && format != "json") {
    err << "error: unknown --format '" << format
        << "' (analyse supports text|xml|json)\n";
    return 2;
  }
  BatchOptions batch_options;
  batch_options.analysis = analysis_options(exec);
  batch_options.share_cones = !exec.request.no_cache;
  std::optional<ConeCache> local;
  ConeCache* cones =
      choose_cone_cache(exec, batch_options.analysis.cut_sets, false, local);
  if (cones != nullptr) batch_options.analysis.cut_sets.cone_cache = cones;
  std::vector<MefTop::Kind> kinds;
  for (const MefTop& top : mef.tops) kinds.push_back(top.kind);
  BatchResult batch = run_batch(mef, exec, batch_options);
  save_local_cache(exec, local);
  report_cache_stats(exec, batch.cache_stats, err);
  std::string text;
  std::vector<const FaultTree*> tree_ptrs;
  std::vector<const TreeAnalysis*> analysis_ptrs;
  std::vector<SequenceSummary> rows;
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    BatchItem& item = batch.items[i];
    if (!replay_item(item, exec)) continue;
    report_reorder_stats(exec, item.display_name(),
                         item.analysis->cut_sets.reorder, err);
    report_frontier_stats(exec, item.display_name(),
                          item.analysis->frontier_stats, err);
    // Log-only, like the reorder stats: `output` stays byte-identical.
    if (exec.request.verbose && item.analysis->diagram_native) {
      err << "probability [" << item.display_name()
          << "]: diagram-native (exact despite truncated extraction)\n";
    }
    if (!exec.request.strict && item.analysis->cut_sets.deadline_exceeded) {
      exec.sink.warning(ErrorKind::kAnalysis,
                        "cut-set analysis stopped at the deadline; "
                        "results are partial",
                        {}, item.display_name());
    }
    if (format == "text")
      text += render(*item.tree, *item.analysis, batch_options.analysis) + "\n";
    tree_ptrs.push_back(&*item.tree);
    analysis_ptrs.push_back(&*item.analysis);
    if (kinds[i] == MefTop::Kind::kSequence)
      rows.push_back(summarise_sequence(item.display_name(), *item.analysis));
  }
  if (tree_ptrs.empty()) return empty_exit(exec, err);
  if (format == "text") {
    text += render_sequence_table(rows);
  } else if (format == "xml") {
    text = write_xml(tree_ptrs, analysis_ptrs, rows);
  } else {
    text = write_json(tree_ptrs, analysis_ptrs, rows);
  }
  if (sequences != nullptr) *sequences = std::move(rows);
  return emit(text, exec, out, err);
}

/// Caps matching MarkdownReportOptions' defaults, so the .mdl and
/// Open-PSA reports read alike.
constexpr std::size_t kReportMaxCutSets = 25;
constexpr std::size_t kReportMaxImportanceRows = 10;

void markdown_top_section(const BatchItem& item, std::string& text) {
  const TreeAnalysis& analysis = *item.analysis;
  text += "## Top event: " + item.display_name() + "\n\n";
  if (!item.tree->top_description().empty())
    text += item.tree->top_description() + "\n\n";
  if (analysis.p_lower && analysis.p_upper) {
    text += "Probability bound: [" + format_double(*analysis.p_lower) + ", " +
            format_double(*analysis.p_upper) + "]" +
            (analysis.bound_converged ? "" : " (not converged)") + "\n\n";
  } else {
    text += "| measure | value |\n|---|---|\n";
    text += "| exact (BDD) | " + format_double(analysis.p_exact) + " |\n";
    text += "| rare event | " + format_double(analysis.p_rare_event) + " |\n";
    text += "| Esary-Proschan | " + format_double(analysis.p_esary_proschan) +
            " |\n";
    text += "| MCUB | " + format_double(analysis.p_mcub) + " |\n\n";
  }
  const std::vector<CutSet>& cut_sets = analysis.cut_sets.cut_sets;
  text += "Minimal cut sets: " + std::to_string(cut_sets.size()) +
          (analysis.cut_sets.truncated ? " (truncated)" : "") + "\n\n";
  const std::size_t shown = std::min(cut_sets.size(), kReportMaxCutSets);
  for (std::size_t i = 0; i < shown; ++i) {
    text += "- {";
    for (std::size_t j = 0; j < cut_sets[i].size(); ++j) {
      if (j != 0) text += ", ";
      if (cut_sets[i][j].negated) text += "!";
      text += std::string(cut_sets[i][j].event->name().view());
    }
    text += "}\n";
  }
  if (shown < cut_sets.size()) {
    text += "- ... " + std::to_string(cut_sets.size() - shown) + " more\n";
  }
  if (shown != 0) text += "\n";
  if (!analysis.importance.empty()) {
    text += "| event | Fussell-Vesely | Birnbaum |\n|---|---|---|\n";
    const std::size_t importance_shown =
        std::min(analysis.importance.size(), kReportMaxImportanceRows);
    for (std::size_t i = 0; i < importance_shown; ++i) {
      const ImportanceEntry& entry = analysis.importance[i];
      text += "| " + std::string(entry.event->name().view()) + " | " +
              format_double(entry.fussell_vesely) + " | " +
              format_double(entry.birnbaum) + " |\n";
    }
    text += "\n";
  }
}

int cmd_openpsa_report(MefModel& mef, Exec& exec, std::ostream& out,
                       std::ostream& err,
                       std::vector<SequenceSummary>* sequences) {
  if (mef.tops.empty()) return empty_exit(exec, err);
  BatchOptions batch_options;
  batch_options.analysis = analysis_options(exec);
  batch_options.share_cones = !exec.request.no_cache;
  std::optional<ConeCache> local;
  ConeCache* cones =
      choose_cone_cache(exec, batch_options.analysis.cut_sets, true, local);
  if (cones != nullptr) batch_options.analysis.cut_sets.cone_cache = cones;
  std::vector<MefTop::Kind> kinds;
  for (const MefTop& top : mef.tops) kinds.push_back(top.kind);
  BatchResult batch = run_batch(mef, exec, batch_options);
  save_local_cache(exec, local);
  report_cache_stats(exec, batch.cache_stats, err);
  std::string text = "# Safety analysis report: " + mef.name + "\n\n";
  text += "## Model summary\n\n";
  text += "| item | count |\n|---|---|\n";
  text += "| fault trees | " + std::to_string(mef.fault_tree_count) + " |\n";
  text += "| event trees | " + std::to_string(mef.event_tree_count) + " |\n";
  text += "| gates | " + std::to_string(mef.gate_count) + " |\n";
  text += "| basic events | " + std::to_string(mef.basic_event_count) + " |\n";
  text +=
      "| house events | " + std::to_string(mef.house_event_count) + " |\n";
  text += "| sequences | " + std::to_string(mef.sequence_count) + " |\n\n";
  std::vector<SequenceSummary> rows;
  bool analysed = false;
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    BatchItem& item = batch.items[i];
    if (!replay_item(item, exec)) continue;
    analysed = true;
    markdown_top_section(item, text);
    if (kinds[i] == MefTop::Kind::kSequence)
      rows.push_back(summarise_sequence(item.display_name(), *item.analysis));
  }
  if (!analysed) return empty_exit(exec, err);
  text += render_sequence_markdown(rows);
  if (sequences != nullptr) *sequences = std::move(rows);
  return emit(text, exec, out, err);
}

int cmd_openpsa_sensitivity(const MefModel& mef, Exec& exec,
                            std::ostream& out, std::ostream& err) {
  if (mef.tops.empty()) return empty_exit(exec, err);
  SensitivityOptions sensitivity;
  sensitivity.probability.mission_time_hours =
      exec.request.mission_time_hours;
  std::string text;
  for (const MefTop& top : mef.tops) {
    const std::string& description = top.tree.top_description();
    text += "=== " + (description.empty() ? top.name : description) +
            " ===\n";
    text += render_sensitivity(rate_sensitivity(top.tree, sensitivity));
  }
  return emit(text, exec, out, err);
}

int cmd_openpsa_fmea(const MefModel& mef, Exec& exec, std::ostream& out,
                     std::ostream& err) {
  if (mef.tops.empty()) return empty_exit(exec, err);
  ProbabilityOptions probability;
  probability.mission_time_hours = exec.request.mission_time_hours;
  probability.budget = exec.make_budget();
  CutSetOptions cut_set_options;
  cut_set_options.engine = exec.request.engine;
  cut_set_options.bound_epsilon = exec.request.bound_epsilon;
  cut_set_options.bound_mission_time_hours = exec.request.mission_time_hours;
  cut_set_options.bound_default_probability =
      probability.default_event_probability;
  cut_set_options.order = exec.request.order;
  cut_set_options.budget = exec.make_budget();
  cut_set_options.pool = exec.pool;
  const bool fmea_diagram = exec.request.prob_mode != ProbMode::kCutSets &&
                            exec.request.engine == CutSetEngine::kZbdd;
  cut_set_options.keep_diagram = fmea_diagram;
  std::optional<ConeCache> local;
  ConeCache* cones = choose_cone_cache(exec, cut_set_options, true, local);
  if (cones != nullptr) cut_set_options.cone_cache = cones;
  std::vector<CutSetAnalysis> analyses =
      parallel_map(exec.pool, mef.tops.size(), [&](std::size_t i) {
        return compute_cut_sets(mef.tops[i].tree, cut_set_options);
      });
  save_local_cache(exec, local);
  report_cache_stats(
      exec,
      cones != nullptr ? std::optional<ConeCacheStats>(cones->stats())
                       : std::nullopt,
      err);
  for (std::size_t i = 0; i < mef.tops.size(); ++i)
    report_reorder_stats(exec, mef.tops[i].name, analyses[i].reorder, err);
  std::vector<const FaultTree*> tree_ptrs;
  std::vector<const CutSetAnalysis*> analysis_ptrs;
  for (std::size_t i = 0; i < mef.tops.size(); ++i) {
    tree_ptrs.push_back(&mef.tops[i].tree);
    analysis_ptrs.push_back(&analyses[i]);
  }
  std::string text = render_fmea(
      synthesise_fmea(tree_ptrs, analysis_ptrs, probability,
                      fmea_diagram ? ProbMode::kDiagram : ProbMode::kCutSets));
  return emit(text, exec, out, err);
}

}  // namespace

bool openpsa_model(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::string head;
  if (file.good()) {
    head.resize(256);
    file.read(head.data(), static_cast<std::streamsize>(head.size()));
    head.resize(static_cast<std::size_t>(file.gcount()));
  }
  return openpsa::looks_like_openpsa(path, head);
}

int run_openpsa_command(Exec& exec, std::ostream& out, std::ostream& err,
                        std::vector<SequenceSummary>* sequences) {
  if (sequences != nullptr) sequences->clear();
  const std::string& command = exec.request.command;
  if (command == "audit" || command == "diff") {
    err << "error: '" << command
        << "' needs a .mdl architecture model (an Open-PSA document has "
           "no block structure)\n";
    return 2;
  }
  const bool known =
      command == "info" || command == "load" || command == "validate" ||
      command == "synthesise" || command == "synthesize" ||
      command == "analyse" || command == "analyze" || command == "report" ||
      command == "fmea" || command == "sensitivity";
  if (!known) {
    err << "error: unknown command '" << command << "'\n";
    return 2;
  }
  MefModel mef = load_model(exec);
  if (command == "info" || command == "load")
    return cmd_openpsa_info(mef, exec, out, err);
  if (command == "validate") return cmd_openpsa_validate(mef, exec, out, err);
  if (command == "synthesise" || command == "synthesize")
    return cmd_openpsa_synthesise(mef, exec, out, err);
  if (command == "analyse" || command == "analyze")
    return cmd_openpsa_analyse(mef, exec, out, err, sequences);
  if (command == "report")
    return cmd_openpsa_report(mef, exec, out, err, sequences);
  if (command == "fmea") return cmd_openpsa_fmea(mef, exec, out, err);
  return cmd_openpsa_sensitivity(mef, exec, out, err);
}

}  // namespace ftsynth::service
