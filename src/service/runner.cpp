#include "service/runner.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "analysis/batch.h"
#include "analysis/completeness.h"
#include "analysis/fmea.h"
#include "analysis/markdown_report.h"
#include "analysis/report.h"
#include "analysis/sensitivity.h"
#include "core/error.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "failure/expr_parser.h"
#include "fta/synthesis.h"
#include "ftp/dot_writer.h"
#include "ftp/ftp_writer.h"
#include "ftp/json_writer.h"
#include "ftp/openpsa_writer.h"
#include "ftp/xml_writer.h"
#include "mdl/parser.h"
#include "model/diff.h"
#include "model/validate.h"
#include "service/exec.h"
#include "service/openpsa_commands.h"

namespace ftsynth::service {

namespace detail {

int exit_code_for(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kParse:
      return 2;
    case ErrorKind::kModel:
      return 3;
    case ErrorKind::kLookup:
      return 4;
    case ErrorKind::kAnalysis:
      return 5;
    case ErrorKind::kInternal:
      break;
  }
  return 6;
}

}  // namespace detail

namespace {

using namespace detail;

/// FNV-1a 64 over the model file bytes: the warm model-cache key. Content
/// addressing (not mtime) so an edit-and-undo round trip still hits and a
/// changed file can never serve stale state.
std::uint64_t content_hash(std::string_view content) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char byte : content) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::optional<std::string> read_file_bytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

namespace detail {

/// --verbose stats block. Stats go to the log so `output` stays
/// byte-identical with and without the cache (the acceptance bar).
void report_cache_stats(const Exec& exec,
                        const std::optional<ConeCacheStats>& stats,
                        std::ostream& err) {
  if (!exec.request.verbose) return;
  if (stats) {
    err << stats->to_string() << "\n";
  } else {
    err << "cone cache: disabled\n";
  }
}

/// --verbose reordering stats for one analysed top event. Log only, like
/// the cache stats: `output` must stay byte-identical across --order.
void report_reorder_stats(const Exec& exec, const std::string& top,
                          const std::optional<ReorderReport>& reorder,
                          std::ostream& err) {
  if (!exec.request.verbose || !reorder) return;
  err << "variable order [" << top << "]: policy " << reorder->policy
      << ", passes " << reorder->passes << ", swaps " << reorder->swaps
      << ", nodes " << reorder->nodes_before << " -> " << reorder->nodes_after
      << " (root " << reorder->root_nodes << ")\n";
  if (!reorder->final_order.empty()) {
    err << "  final order: ";
    for (std::size_t i = 0; i < reorder->final_order.size(); ++i) {
      if (i != 0) err << ", ";
      err << reorder->final_order[i];
    }
    err << "\n";
  }
}

/// --verbose frontier counters for one bound-engine run. Log only, like
/// the reorder stats: `output` must stay byte-identical across --jobs.
void report_frontier_stats(const Exec& exec, const std::string& top,
                           const std::optional<FrontierStats>& frontier,
                           std::ostream& err) {
  if (!exec.request.verbose || !frontier) return;
  err << "bound frontier [" << top << "]: rounds " << frontier->rounds
      << ", expansions " << frontier->expansions << ", emitted "
      << frontier->emitted << ", peak frontier " << frontier->peak_frontier
      << ", subsumed " << frontier->subsumed << ", deferred "
      << frontier->deferred << "\n";
}

/// Sends `text` to the request's --output file or to the result output.
int emit(const std::string& text, const Exec& exec, std::ostream& out,
         std::ostream& err) {
  if (exec.request.output.empty()) {
    out << text;
    return 0;
  }
  std::ofstream file(exec.request.output);
  if (!file.good()) {
    err << "error: cannot write '" << exec.request.output << "'\n";
    return 2;
  }
  file << text;
  return 0;
}

/// The cone cache a command should use, or nullptr:
///   * --no-cache wins everywhere;
///   * warm mode uses the runner's resident per-keyspace cache (loaded
///     from disk on first use), shared across requests and saved by the
///     daemon's persistence loop, never per request;
///   * cold mode reproduces the CLI: a request-local cache in `local`,
///     loaded from cache_dir when one is set (`always_local` marks the
///     commands -- report/fmea -- that build an in-memory cache even
///     without a directory), and saved back by save_local_cache().
/// Cached families are exact (clean-run-only stores), so every variant
/// produces byte-identical `output`.
ConeCache* choose_cone_cache(Exec& exec, const CutSetOptions& cut_sets,
                             bool always_local,
                             std::optional<ConeCache>& local) {
  if (exec.request.no_cache) return nullptr;
  ServiceRunner& runner = exec.runner;
  if (runner.options().warm) return runner.warm_cone_cache(cut_sets, &exec.sink);
  const std::string& dir = runner.options().cache_dir;
  if (dir.empty() && !always_local) return nullptr;
  local.emplace(cone_keyspace(cut_sets));
  if (!dir.empty()) local->load(dir, &exec.sink);
  return &*local;
}

/// Cold-mode counterpart of choose_cone_cache: persists the request-local
/// cache after the run (the CLI's per-run --cache DIR round trip).
void save_local_cache(Exec& exec, std::optional<ConeCache>& local) {
  if (!local) return;
  const std::string& dir = exec.runner.options().cache_dir;
  if (!dir.empty() && !exec.runner.options().warm) local->save(dir, &exec.sink);
}

bool replay_item(BatchItem& item, Exec& exec) {
  for (const Diagnostic& diagnostic : item.diagnostics)
    exec.sink.report(diagnostic);
  if (!item.error) return true;
  if (exec.request.strict) std::rethrow_exception(item.error);
  try {
    std::rethrow_exception(item.error);
  } catch (const Error& error) {
    exec.sink.error_from(error, item.display_name());
  }
  return false;
}

}  // namespace detail

namespace {

using namespace detail;

/// Synthesis options for a command run: resource budget always, degraded
/// mode (diagnostics instead of aborts) unless --strict.
SynthesisOptions synthesis_options(Exec& exec) {
  SynthesisOptions synthesis;
  synthesis.budget = exec.make_budget();
  if (!exec.request.strict) synthesis.sink = &exec.sink;
  return synthesis;
}

std::vector<Deviation> resolve_tops(const Model& model, Exec& exec,
                                    ThreadPool* pool = nullptr) {
  std::vector<Deviation> tops;
  if (!exec.request.tops.empty()) {
    for (const std::string& top : exec.request.tops)
      tops.push_back(parse_deviation(top, model.registry()));
    return tops;
  }
  // Default: every derivable top event (prune undeveloped roots so only
  // genuinely explained deviations appear). The probe synthesises every
  // (output port x class) candidate, so it parallelises like the real run;
  // the candidate list and its order are independent of the pool.
  SynthesisOptions prune;
  prune.unannotated = SynthesisOptions::UnannotatedPolicy::kPrune;
  prune.budget = exec.make_budget();
  // The probe only decides which candidates are worth synthesising; its
  // degraded-mode diagnostics would duplicate the real run's, so they go
  // to a throwaway sink (thread-safe: probe workers share it).
  DiagnosticSink probe_sink;
  if (!exec.request.strict) prune.sink = &probe_sink;
  std::vector<Deviation> candidates;
  for (const Port* port : model.root().outputs()) {
    for (FailureClass cls : model.registry().all())
      candidates.push_back(Deviation{cls, port->name()});
  }
  std::vector<char> derivable(candidates.size(), 0);
  parallel_for(pool, candidates.size(), [&](std::size_t i) {
    Synthesiser probe(model, prune);
    derivable[i] = probe.synthesise(candidates[i]).top() != nullptr ? 1 : 0;
  });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (derivable[i] != 0) tops.push_back(candidates[i]);
  }
  return tops;
}

int cmd_info(const Model& model, Exec& exec, std::ostream& out,
             std::ostream& err) {
  std::string text = "model: " + model.name() + "\n";
  text += "blocks: " + std::to_string(model.block_count()) + "\n";
  std::size_t annotated = 0;
  std::size_t malfunctions = 0;
  model.for_each_block([&](const Block& block) {
    if (!block.annotation().rows().empty()) ++annotated;
    malfunctions += block.annotation().malfunctions().size();
  });
  text += "annotated blocks: " + std::to_string(annotated) + "\n";
  text += "malfunctions: " + std::to_string(malfunctions) + "\n";
  text += "boundary inputs:";
  for (const Port* port : model.root().inputs())
    text += " " + port->name().str();
  text += "\nboundary outputs:";
  for (const Port* port : model.root().outputs())
    text += " " + port->name().str();
  text += "\nhierarchy:\n";
  model.for_each_block([&](const Block& block) {
    std::size_t depth = 0;
    for (const Block* b = &block; b->parent() != nullptr; b = b->parent())
      ++depth;
    text += std::string(depth * 2, ' ') + block.name().str() + " [" +
            std::string(to_string(block.kind())) + "]\n";
  });
  return emit(text, exec, out, err);
}

int cmd_validate(const Model& model, Exec& exec, std::ostream& out,
                 std::ostream& err) {
  std::vector<Issue> issues = validate(model);
  std::string text;
  int errors = 0;
  for (const Issue& issue : issues) {
    text += issue.to_string() + "\n";
    if (issue.severity == Severity::kError) ++errors;
  }
  text += std::to_string(errors) + " error(s), " +
          std::to_string(issues.size() - static_cast<std::size_t>(errors)) +
          " warning(s)\n";
  int rc = emit(text, exec, out, err);
  if (rc != 0) return rc;
  // The recovering parser already forwarded these to the sink; in --strict
  // mode forward them here so the exit-code logic is uniform.
  if (exec.request.strict) {
    for (const Issue& issue : issues) {
      exec.sink.report({issue.severity, ErrorKind::kModel, {}, issue.block_path,
                        issue.message});
    }
  }
  return 0;
}

int cmd_synthesise(const Model& model, Exec& exec, std::ostream& out,
                   std::ostream& err) {
  BatchOptions batch_options;
  batch_options.synthesis = synthesis_options(exec);
  batch_options.analyse = false;
  BatchResult batch = analyse_batch(model, resolve_tops(model, exec, exec.pool),
                                    batch_options, exec.pool);
  std::vector<FaultTree> trees;
  for (BatchItem& item : batch.items) {
    if (replay_item(item, exec)) trees.push_back(std::move(*item.tree));
  }
  if (trees.empty()) {
    if (exec.sink.has_errors())
      return exit_code_for(exec.sink.first_error_kind());
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  std::string text;
  const std::string& format = exec.request.format;
  if (format == "text") {
    for (const FaultTree& tree : trees) text += tree.to_text() + "\n";
  } else if (format == "dot") {
    for (const FaultTree& tree : trees) text += write_dot(tree);
  } else if (format == "xml") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_xml(pointers);
  } else if (format == "json") {
    for (const FaultTree& tree : trees) text += write_json(tree);
  } else if (format == "ftp") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_ftp_project(model.name(), pointers);
  } else if (format == "openpsa") {
    std::vector<const FaultTree*> pointers;
    for (const FaultTree& tree : trees) pointers.push_back(&tree);
    text = write_openpsa(pointers);
  } else {
    err << "error: unknown --format '" << format << "'\n";
    return 2;
  }
  return emit(text, exec, out, err);
}

int cmd_analyse(const Model& model, Exec& exec, std::ostream& out,
                std::ostream& err) {
  BatchOptions batch_options;
  batch_options.synthesis = synthesis_options(exec);
  batch_options.analysis.probability.mission_time_hours =
      exec.request.mission_time_hours;
  batch_options.analysis.render_tree = exec.request.render_tree;
  batch_options.analysis.cut_sets.engine = exec.request.engine;
  batch_options.analysis.cut_sets.bound_epsilon = exec.request.bound_epsilon;
  batch_options.analysis.cut_sets.order = exec.request.order;
  batch_options.analysis.cut_sets.budget = exec.make_budget();
  batch_options.analysis.probability.budget = exec.make_budget();
  batch_options.analysis.prob_mode = exec.request.prob_mode;
  batch_options.share_cones = !exec.request.no_cache;
  std::optional<ConeCache> local;
  ConeCache* cones =
      choose_cone_cache(exec, batch_options.analysis.cut_sets, false, local);
  if (cones != nullptr) batch_options.analysis.cut_sets.cone_cache = cones;
  BatchResult batch = analyse_batch(model, resolve_tops(model, exec, exec.pool),
                                    batch_options, exec.pool);
  save_local_cache(exec, local);
  report_cache_stats(exec, batch.cache_stats, err);
  std::string text;
  for (BatchItem& item : batch.items) {
    if (!replay_item(item, exec)) continue;
    report_reorder_stats(exec, item.display_name(),
                         item.analysis->cut_sets.reorder, err);
    report_frontier_stats(exec, item.display_name(),
                          item.analysis->frontier_stats, err);
    // Log-only, like the reorder stats: `output` stays byte-identical.
    if (exec.request.verbose && item.analysis->diagram_native) {
      err << "probability [" << item.display_name()
          << "]: diagram-native (exact despite truncated extraction)\n";
    }
    if (!exec.request.strict && item.analysis->cut_sets.deadline_exceeded) {
      exec.sink.warning(ErrorKind::kAnalysis,
                        "cut-set analysis stopped at the deadline; "
                        "results are partial",
                        {}, item.display_name());
    }
    text += render(*item.tree, *item.analysis, batch_options.analysis) + "\n";
  }
  if (text.empty()) {
    if (exec.sink.has_errors())
      return exit_code_for(exec.sink.first_error_kind());
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  return emit(text, exec, out, err);
}

int cmd_audit(const Model& model, Exec& exec, std::ostream& out,
              std::ostream& err) {
  std::vector<CompletenessFinding> findings = audit_completeness(model);
  std::string text;
  for (const CompletenessFinding& finding : findings)
    text += finding.to_string() + "\n";
  text += std::to_string(findings.size()) + " finding(s)\n";
  int rc = emit(text, exec, out, err);
  return rc != 0 ? rc : (findings.empty() ? 0 : 1);
}

int cmd_report(const Model& model, Exec& exec, std::ostream& out,
               std::ostream& err) {
  MarkdownReportOptions report_options;
  report_options.analysis.probability.mission_time_hours =
      exec.request.mission_time_hours;
  report_options.analysis.cut_sets.engine = exec.request.engine;
  report_options.analysis.cut_sets.bound_epsilon = exec.request.bound_epsilon;
  report_options.analysis.cut_sets.order = exec.request.order;
  report_options.analysis.cut_sets.budget = exec.make_budget();
  report_options.analysis.probability.budget = exec.make_budget();
  report_options.analysis.prob_mode = exec.request.prob_mode;
  std::optional<ConeCache> local;
  ConeCache* cones =
      choose_cone_cache(exec, report_options.analysis.cut_sets, true, local);
  if (cones != nullptr) report_options.analysis.cut_sets.cone_cache = cones;
  std::vector<std::string> tops;
  for (const Deviation& top : resolve_tops(model, exec))
    tops.push_back(top.to_string());
  if (tops.empty()) {
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  const std::string text = markdown_report(model, tops, report_options);
  save_local_cache(exec, local);
  report_cache_stats(
      exec,
      cones != nullptr ? std::optional<ConeCacheStats>(cones->stats())
                       : std::nullopt,
      err);
  return emit(text, exec, out, err);
}

int cmd_sensitivity(const Model& model, Exec& exec, std::ostream& out,
                    std::ostream& err) {
  SensitivityOptions sensitivity;
  sensitivity.probability.mission_time_hours = exec.request.mission_time_hours;
  Synthesiser synthesiser(model, synthesis_options(exec));
  std::string text;
  for (const Deviation& top : resolve_tops(model, exec)) {
    if (!exec.request.strict) {
      try {
        FaultTree tree = synthesiser.synthesise(top);
        text += "=== " + tree.top_description() + " ===\n";
        text += render_sensitivity(rate_sensitivity(tree, sensitivity));
      } catch (const Error& error) {
        exec.sink.error_from(error, top.to_string());
      }
      continue;
    }
    FaultTree tree = synthesiser.synthesise(top);
    text += "=== " + tree.top_description() + " ===\n";
    text += render_sensitivity(rate_sensitivity(tree, sensitivity));
  }
  if (text.empty()) {
    if (exec.sink.has_errors())
      return exit_code_for(exec.sink.first_error_kind());
    err << "error: no top events (give --top or annotate the model)\n";
    return 2;
  }
  return emit(text, exec, out, err);
}

int cmd_fmea(const Model& model, Exec& exec, std::ostream& out,
             std::ostream& err) {
  ProbabilityOptions probability;
  probability.mission_time_hours = exec.request.mission_time_hours;
  probability.budget = exec.make_budget();
  CutSetOptions cut_set_options;
  cut_set_options.engine = exec.request.engine;
  cut_set_options.bound_epsilon = exec.request.bound_epsilon;
  // FMEA calls compute_cut_sets directly (no analyse_tree to copy the
  // probability inputs over), so hand the bound engine its inputs here.
  cut_set_options.bound_mission_time_hours = exec.request.mission_time_hours;
  cut_set_options.bound_default_probability =
      probability.default_event_probability;
  cut_set_options.order = exec.request.order;
  cut_set_options.budget = exec.make_budget();
  cut_set_options.pool = exec.pool;
  // Diagram-native FMEA columns need the ZBDD engine's retained diagram.
  const bool fmea_diagram =
      exec.request.prob_mode != ProbMode::kCutSets &&
      exec.request.engine == CutSetEngine::kZbdd;
  cut_set_options.keep_diagram = fmea_diagram;
  // FMEA analyses every derivable top event of one model: prime sharing
  // territory for the cone cache (plus the persistent layer on --cache).
  std::optional<ConeCache> local;
  ConeCache* cones = choose_cone_cache(exec, cut_set_options, true, local);
  if (cones != nullptr) cut_set_options.cone_cache = cones;
  BatchOptions batch_options;
  batch_options.synthesis = synthesis_options(exec);
  batch_options.analyse = false;
  BatchResult batch = analyse_batch(model, resolve_tops(model, exec, exec.pool),
                                    batch_options, exec.pool);
  std::vector<FaultTree> trees;
  for (BatchItem& item : batch.items) {
    if (replay_item(item, exec)) trees.push_back(std::move(*item.tree));
  }
  if (trees.empty()) {
    if (exec.sink.has_errors())
      return exit_code_for(exec.sink.first_error_kind());
    err << "error: no derivable top events in this model\n";
    return 2;
  }
  std::vector<CutSetAnalysis> analyses =
      parallel_map(exec.pool, trees.size(), [&](std::size_t i) {
        return compute_cut_sets(trees[i], cut_set_options);
      });
  save_local_cache(exec, local);
  report_cache_stats(
      exec,
      cones != nullptr ? std::optional<ConeCacheStats>(cones->stats())
                       : std::nullopt,
      err);
  for (std::size_t i = 0; i < trees.size(); ++i)
    report_reorder_stats(exec, trees[i].top_description(),
                         analyses[i].reorder, err);
  std::vector<const FaultTree*> tree_ptrs;
  std::vector<const CutSetAnalysis*> analysis_ptrs;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    tree_ptrs.push_back(&trees[i]);
    analysis_ptrs.push_back(&analyses[i]);
  }
  std::string text = render_fmea(
      synthesise_fmea(tree_ptrs, analysis_ptrs, probability,
                      fmea_diagram ? ProbMode::kDiagram : ProbMode::kCutSets));
  return emit(text, exec, out, err);
}

/// Structural + annotation diff against a second model revision
/// (`against_path`). Both revisions parse under the request's error
/// discipline; the diff itself is cheap -- this is the daemon's
/// editor-loop primitive ("what changed since my last analyse?").
int cmd_diff(const Model& model, Exec& exec, std::ostream& out,
             std::ostream& err) {
  if (exec.request.against_path.empty()) {
    err << "error: diff needs --against FILE (the revised model)\n";
    return 2;
  }
  std::shared_ptr<const Model> after = exec.runner.acquire_model(
      exec.request.against_path, exec.request,
      /*implicit_validation=*/true, exec.request.strict ? nullptr : &exec.sink);
  return emit(diff_models(model, *after).to_string(), exec, out, err);
}

}  // namespace

ServiceRunner::ServiceRunner(Options options) : options_(std::move(options)) {
  if (options_.warm) {
    const int jobs = options_.jobs == 0
                         ? static_cast<int>(ThreadPool::hardware_threads())
                         : options_.jobs;
    if (jobs > 1) pool_ = std::make_unique<ThreadPool>(jobs);
  }
  if (options_.max_models == 0) options_.max_models = 1;
}

ServiceRunner::~ServiceRunner() = default;

ThreadPool* ServiceRunner::pool() const noexcept { return pool_.get(); }

std::shared_ptr<const Model> ServiceRunner::acquire_model(
    const std::string& path, const ServiceRequest& request,
    bool implicit_validation, DiagnosticSink* sink) {
  const auto parse_fresh = [&](DiagnosticSink* parse_sink) {
    if (request.strict || parse_sink == nullptr)
      return std::make_shared<const Model>(
          parse_mdl_file(path, implicit_validation));
    return std::make_shared<const Model>(parse_mdl_file(path, *parse_sink));
  };

  if (!options_.warm) return parse_fresh(sink);

  // Warm mode: key by file content + parse flavour. An unreadable file
  // falls through to the parser for its canonical error.
  std::string content;
  {
    std::ifstream file(path, std::ios::binary);
    if (!file.good()) return parse_fresh(sink);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    content = buffer.str();
  }
  std::ostringstream key_stream;
  key_stream << path << '|' << content.size() << '|'
             << content_hash(content) << '|' << (request.strict ? 's' : 'r')
             << (implicit_validation ? 'v' : 'n') << '|' << request.max_errors;
  const std::string key = key_stream.str();

  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    if (auto it = models_.find(key); it != models_.end()) {
      // Replay the stored parse diagnostics so a warm hit reports exactly
      // what a cold parse would have (they also drive the exit code).
      if (sink != nullptr) {
        for (const Diagnostic& diagnostic : it->second.diagnostics)
          sink->report(diagnostic);
      }
      model_lru_.remove(key);
      model_lru_.push_front(key);
      return it->second.model;
    }
  }

  // Parse outside the lock (it can be slow); the parse diagnostics are
  // captured in a private sink so they can be stored for later replay.
  ModelEntry entry;
  if (request.strict) {
    entry.model = parse_fresh(nullptr);  // throws on the first error
  } else {
    DiagnosticSink parse_sink(request.max_errors);
    entry.model = std::make_shared<const Model>(parse_mdl_file(path, parse_sink));
    entry.diagnostics = parse_sink.diagnostics();
    if (sink != nullptr) {
      for (const Diagnostic& diagnostic : entry.diagnostics)
        sink->report(diagnostic);
    }
  }

  std::lock_guard<std::mutex> lock(models_mutex_);
  auto [it, inserted] = models_.emplace(key, entry);
  if (inserted) {
    model_lru_.push_front(key);
    while (models_.size() > options_.max_models) {
      models_.erase(model_lru_.back());
      model_lru_.pop_back();
    }
  }
  return entry.model;
}

ConeCache* ServiceRunner::warm_cone_cache(const CutSetOptions& cut_sets,
                                          DiagnosticSink* sink) {
  const ConeKeyspace keyspace = cone_keyspace(cut_sets);
  std::ostringstream key_stream;
  key_stream << keyspace.engine << '/' << keyspace.max_order << '/'
             << keyspace.max_sets;
  const std::string key = key_stream.str();
  std::lock_guard<std::mutex> lock(cones_mutex_);
  auto it = cones_.find(key);
  if (it == cones_.end()) {
    auto cache = std::make_unique<ConeCache>(keyspace);
    // First use of this keyspace: adopt whatever the last daemon run (or
    // a crashed one's last good save) persisted. A stale/corrupt file is
    // rejected inside load() -- the cache simply starts cold.
    if (!options_.cache_dir.empty()) cache->load(options_.cache_dir, sink);
    it = cones_.emplace(key, std::move(cache)).first;
  }
  return it->second.get();
}

std::optional<std::string> ServiceRunner::response_key(
    const ServiceRequest& request) const {
  if (!options_.warm || options_.max_results == 0) return std::nullopt;
  // --output writes a file per run: replaying a stored result would skip
  // the side effect. --verbose logs cumulative warm-cache counters, which
  // a replay would freeze at their store-time values. `load` exists to
  // pin the parsed model, which a replay would skip.
  if (!request.output.empty() || request.verbose) return std::nullopt;
  if (request.command == "load") return std::nullopt;
  const std::optional<std::string> content = read_file_bytes(request.model_path);
  if (!content) return std::nullopt;
  std::ostringstream key;
  key.precision(17);
  key << request.command << '\x1f' << request.model_path << '\x1f'
      << content->size() << ':' << content_hash(*content) << '\x1f';
  if (!request.against_path.empty()) {
    const std::optional<std::string> against =
        read_file_bytes(request.against_path);
    if (!against) return std::nullopt;
    key << request.against_path << '\x1f' << against->size() << ':'
        << content_hash(*against);
  }
  key << '\x1f';
  for (const std::string& top : request.tops) key << top << '\x1e';
  key << '\x1f' << request.format << '\x1f' << request.mission_time_hours
      << '\x1f' << request.render_tree << request.strict << request.no_cache
      << '\x1f' << request.max_errors << '\x1f' << request.max_depth << '\x1f'
      << request.max_nodes << '\x1f' << static_cast<int>(request.engine)
      << '\x1f' << request.bound_epsilon << '\x1f'
      << static_cast<int>(request.order) << '\x1f'
      << static_cast<int>(request.prob_mode);
  return key.str();
}

bool ServiceRunner::save_warm_state(DiagnosticSink* sink) {
  if (options_.cache_dir.empty()) return true;
  std::vector<ConeCache*> caches;
  {
    std::lock_guard<std::mutex> lock(cones_mutex_);
    caches.reserve(cones_.size());
    for (const auto& [key, cache] : cones_) caches.push_back(cache.get());
  }
  bool ok = true;
  for (ConeCache* cache : caches)
    ok = cache->save(options_.cache_dir, sink) && ok;
  return ok;
}

std::string ServiceRunner::stats_text() const {
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(models_mutex_);
    out << "models resident: " << models_.size() << "\n";
  }
  {
    std::lock_guard<std::mutex> lock(results_mutex_);
    out << "results memoised: " << results_.size() << "\n";
  }
  std::lock_guard<std::mutex> lock(cones_mutex_);
  std::vector<std::pair<std::string, ConeCache*>> caches;
  for (const auto& [key, cache] : cones_) caches.emplace_back(key, cache.get());
  std::sort(caches.begin(), caches.end());
  for (const auto& [key, cache] : caches)
    out << "[" << key << "] " << cache->stats().to_string() << "\n";
  return out.str();
}

ServiceResult ServiceRunner::execute(const ServiceRequest& request) {
  // Response memo, warm mode only. A request whose deadline already fired
  // (shed late, or force_expired on disconnect) must take the degraded
  // partial-results path, never be satisfied from the memo.
  std::optional<std::string> memo_key;
  if (!request.budget || !request.budget->expired())
    memo_key = response_key(request);
  if (memo_key) {
    std::lock_guard<std::mutex> lock(results_mutex_);
    if (auto it = results_.find(*memo_key); it != results_.end()) {
      result_lru_.remove(*memo_key);
      result_lru_.push_front(*memo_key);
      return it->second;
    }
  }

  ServiceResult result;
  std::ostringstream out;
  std::ostringstream err;
  DiagnosticSink sink(request.max_errors);
  std::vector<SequenceSummary> sequences;
  int rc = 0;
  bool deadline_fired = false;
  try {
    const std::string& command = request.command;

    Exec exec{request, *this, sink, nullptr, Budget{}};
    // One budget, armed once: every stage and worker copies it, so they
    // all share a single deadline latch. The daemon pre-arms it at
    // admission (queue wait counts, and disconnect can force_expire it);
    // the CLI arms it here, after the un-budgeted parse, exactly as
    // before the refactor.
    if (request.budget) {
      exec.budget = *request.budget;
    } else if (request.deadline_ms > 0) {
      exec.budget.set_deadline_ms(request.deadline_ms);
    }
    if (request.max_depth != 0) exec.budget.max_depth = request.max_depth;
    if (request.max_nodes != 0) exec.budget.max_nodes = request.max_nodes;

    // Cold mode sizes a pool per request (the CLI's --jobs); warm mode
    // shares the runner's pool across requests (output is byte-identical
    // for every worker count, so the daemon ignores the request's jobs).
    std::optional<ThreadPool> owned_pool;
    if (options_.warm) {
      exec.pool = pool_.get();
    } else {
      const int jobs = request.jobs == 0
                           ? static_cast<int>(ThreadPool::hardware_threads())
                           : request.jobs;
      if (jobs > 1) owned_pool.emplace(jobs);
      exec.pool = owned_pool ? &*owned_pool : nullptr;
    }

    if (openpsa_model(request.model_path)) {
      // Open-PSA XML model: its own dispatch over imported trees. The
      // model cache is skipped on purpose -- importing is cheap relative
      // to analysis and the response memo already gives warm replays.
      rc = run_openpsa_command(exec, out, err, &sequences);
    } else {
      // `validate` parses without the implicit validation so it can
      // report the issues itself instead of dying on the first one; the
      // recovering parser (default) reports syntax AND validation
      // problems to the sink and returns the best-effort model.
      const bool implicit_validation = command != "validate";
      std::shared_ptr<const Model> model_ptr = acquire_model(
          request.model_path, request, implicit_validation,
          request.strict ? nullptr : &sink);
      const Model& model = *model_ptr;

      if (command == "info" || command == "load") {
        // `load` is the daemon's warm-up verb: acquire_model above
        // already pinned the parsed model; the summary doubles as
        // confirmation.
        rc = cmd_info(model, exec, out, err);
      } else if (command == "validate") {
        rc = cmd_validate(model, exec, out, err);
      } else if (command == "synthesise" || command == "synthesize") {
        rc = cmd_synthesise(model, exec, out, err);
      } else if (command == "analyse" || command == "analyze") {
        rc = cmd_analyse(model, exec, out, err);
      } else if (command == "audit") {
        rc = cmd_audit(model, exec, out, err);
      } else if (command == "fmea") {
        rc = cmd_fmea(model, exec, out, err);
      } else if (command == "sensitivity") {
        rc = cmd_sensitivity(model, exec, out, err);
      } else if (command == "report") {
        rc = cmd_report(model, exec, out, err);
      } else if (command == "diff") {
        rc = cmd_diff(model, exec, out, err);
      } else {
        err << "error: unknown command '" << command << "'\n";
        rc = 2;
      }
    }
    deadline_fired = exec.budget.expired();
  } catch (const Error& error) {
    err << "error: " << error.what() << "\n";
    if (!sink.empty()) err << sink.render_table();
    result.exit_code = exit_code_for(error.kind());
    result.output = out.str();
    result.log = err.str();
    return result;
  } catch (const std::exception& error) {
    // Request isolation: a non-Error exception (bad_alloc, a library bug)
    // must degrade into this one request's result, never escape into the
    // daemon. The CLI maps it to the internal-error exit code.
    err << "error: internal: " << error.what() << "\n";
    if (!sink.empty()) err << sink.render_table();
    result.exit_code = exit_code_for(ErrorKind::kInternal);
    result.output = out.str();
    result.log = err.str();
    return result;
  }
  if (!sink.empty()) err << sink.render_table();
  result.exit_code = rc != 0 ? rc : (sink.has_errors() ? 1 : 0);
  result.output = out.str();
  result.log = err.str();
  result.sequences = std::move(sequences);
  // Clean-run-only stores, like the cone cache: a result whose deadline
  // fired may be partial (wall-clock nondeterminism), so only complete
  // runs are replayable -- and a complete run satisfies any deadline.
  if (memo_key && !deadline_fired) {
    std::lock_guard<std::mutex> lock(results_mutex_);
    auto [it, inserted] = results_.emplace(*memo_key, result);
    if (inserted) {
      result_lru_.push_front(*memo_key);
      while (results_.size() > options_.max_results) {
        results_.erase(result_lru_.back());
        result_lru_.pop_back();
      }
    }
  }
  return result;
}

}  // namespace ftsynth::service
