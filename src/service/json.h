// Minimal JSON for the service wire protocol.
//
// The daemon speaks line-delimited JSON (docs/FORMATS.md §"Wire
// protocol"). The repo deliberately has no third-party JSON dependency,
// and the protocol needs only a small, strict subset: objects, arrays,
// strings (with escapes), doubles, booleans and null. This module is that
// subset -- a strict recursive-descent parser that rejects anything
// malformed (a daemon must never guess about a request) and a writer that
// escapes every control character, so arbitrary analysis output and
// diagnostic text survive a round trip byte-for-byte.
//
// Objects preserve insertion order so responses serialise
// deterministically (the soak harness diffs raw response lines).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftsynth::service {

/// One JSON value. A small sum type: cheap to copy for the request-sized
/// payloads the protocol carries.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered members (duplicate keys: last one wins on lookup).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  static Json boolean(bool value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array(Array value = {});
  static Json object(Object value = {});

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const Array& as_array() const noexcept { return array_; }
  const Object& as_object() const noexcept { return object_; }

  /// Object member by key (last occurrence), or nullptr.
  const Json* find(std::string_view key) const noexcept;

  /// Appends a member / element (no-op on the wrong kind).
  void set(std::string key, Json value);
  void push_back(Json value);

  /// Serialises compactly (no whitespace) onto a single line: strings are
  /// fully escaped (control characters as \uXXXX), so embedded newlines
  /// can never break the line-delimited framing.
  std::string dump() const;

  /// Strict parse of exactly one JSON value spanning all of `text`
  /// (surrounding whitespace allowed). On failure returns nullopt and, if
  /// `error` is given, a short description of the first problem.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// JSON string escaping of `text` including the surrounding quotes.
std::string json_quote(std::string_view text);

}  // namespace ftsynth::service
