// Library-first execution of ftsynth commands.
//
// The CLI used to own the whole pipeline -- argv parsing, model loading,
// command dispatch and rendering -- writing straight to stdout/stderr.
// That shape wastes everything PRs 4/5 built the moment the process
// exits: cone caches, interned variable orders and parsed models are all
// warm state a safety engineer's edit-analyse loop wants to keep. This
// module is the testable core both front ends share:
//
//   * `ServiceRequest` is one command in structured form (the CLI builds
//     it from argv, the daemon from a wire JSON line);
//   * `ServiceResult` is the full observable outcome: exit code, the
//     exact bytes a serial CLI run would have written to stdout, and the
//     log/diagnostic bytes it would have written to stderr;
//   * `ServiceRunner` executes requests. In cold mode (the CLI) each
//     request parses and analyses from scratch -- byte-for-byte the
//     pre-refactor behaviour. In warm mode (the daemon) the runner keeps
//     parsed models and per-keyspace cone caches resident across
//     requests, and `execute` may be called from many threads at once.
//
// The warm state is three layers, each correctness-neutral by
// construction: model entries are keyed by content hash (an edited file
// re-parses), replayed parse diagnostics reproduce the cold diagnostic
// stream, and the cone cache only ever serves exact families
// (clean-run-only stores, PR 4) -- so a warm `output` is byte-identical
// to a cold one, which the service tests enforce across every command x
// engine x order policy. On top of both sits the response memo: a full
// ServiceResult is replayed for a repeated request whose model bytes and
// output-affecting fields are unchanged, under the same discipline
// (content-addressed key, stores only from runs whose deadline never
// fired, bypassed for requests with filesystem side effects). The memo
// is what makes the warm daemon fast end to end -- the probability and
// importance stages dominate an analyse request and sit outside the
// cone cache's reach -- while an edit invalidates it the same way it
// invalidates the model cache: the content hash changes, the stale
// entry simply stops being looked up.

#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/cache.h"
#include "analysis/cutsets.h"
#include "analysis/event_tree.h"
#include "core/budget.h"
#include "core/diagnostics.h"

namespace ftsynth {
class Model;
class ThreadPool;
}  // namespace ftsynth

namespace ftsynth::service {

/// One command in structured form. Field semantics (and defaults) match
/// the CLI flags documented in tools/cli.h; docs/FORMATS.md maps the wire
/// protocol's JSON fields onto these.
struct ServiceRequest {
  std::string command;       ///< info|validate|synthesise|analyse|audit|
                             ///< fmea|sensitivity|report|diff|load
  std::string model_path;    ///< the .mdl file, or an Open-PSA .xml model
  std::string against_path;  ///< diff only: the revised model
  std::vector<std::string> tops;
  std::string format = "text";  ///< synthesise: text|dot|xml|json|ftp
  std::string output;           ///< CLI --output FILE; empty = in-result
  double mission_time_hours = 1.0;
  bool render_tree = false;
  bool strict = false;
  std::size_t max_errors = DiagnosticSink::kDefaultMaxErrors;
  long deadline_ms = 0;        ///< 0 = no deadline (CLI); daemon requires >0
  std::size_t max_depth = 0;   ///< 0 = Budget default
  std::size_t max_nodes = 0;   ///< 0 = unlimited
  int jobs = 0;                ///< cold mode only; warm mode uses the
                               ///< runner's shared pool (output identical)
  CutSetEngine engine = CutSetEngine::kMicsup;
  /// Bound engine only (CLI --bound-epsilon, wire "bound_epsilon"):
  /// interval-width convergence target; negative disables early stopping.
  /// Part of the response-memo key -- different targets emit different
  /// families.
  double bound_epsilon = 1e-6;
  OrderPolicy order = OrderPolicy::kStatic;
  /// Probability/importance mode (CLI --prob-mode, wire "prob_mode").
  /// kAuto = diagram-native exactly when engine is kZbdd. Part of the
  /// response-memo key: modes only differ on truncated runs, but they DO
  /// differ there.
  ProbMode prob_mode = ProbMode::kAuto;
  bool no_cache = false;
  bool verbose = false;
  /// Daemon: a budget armed at admission (so queue wait counts against
  /// the client's deadline) whose latch the connection can force_expire
  /// on disconnect. When set it wins over deadline_ms/max_*.
  std::optional<Budget> budget;
};

/// The full observable outcome of one request.
struct ServiceResult {
  int exit_code = 0;   ///< the CLI exit code contract (tools/cli.h)
  std::string output;  ///< exactly the serial CLI's stdout bytes
  std::string log;     ///< exactly the serial CLI's stderr bytes
  /// Event-tree sequence rows from an Open-PSA analyse/report run, in
  /// walk order; empty otherwise. Carried through the response memo and
  /// surfaced as the wire `sequences` field (docs/FORMATS.md section 5).
  std::vector<SequenceSummary> sequences;
};

/// Executes ServiceRequests; owns the warm state in warm mode.
class ServiceRunner {
 public:
  struct Options {
    /// Worker threads for warm mode's shared pool (0 = hardware).
    int jobs = 0;
    /// Persistent cone-cache directory ("--cache DIR" semantics). Cold
    /// mode loads/saves it around each request exactly as the CLI did;
    /// warm mode loads lazily and persists via save_warm_state().
    std::string cache_dir;
    /// Keep parsed models and cone caches resident across requests and
    /// allow concurrent execute() calls (the daemon). False = the
    /// process-per-run CLI semantics.
    bool warm = false;
    /// Warm-mode resident model cap (LRU past it).
    std::size_t max_models = 32;
    /// Warm-mode response-memo cap (LRU past it). 0 disables the memo
    /// (every request recomputes; model and cone caches still apply).
    std::size_t max_results = 256;
  };

  ServiceRunner() : ServiceRunner(Options{}) {}
  explicit ServiceRunner(Options options);
  ~ServiceRunner();

  ServiceRunner(const ServiceRunner&) = delete;
  ServiceRunner& operator=(const ServiceRunner&) = delete;

  /// Runs one request to completion. Never throws: failures of any kind
  /// (unreadable model, engine error, budget blow-up, internal bug)
  /// degrade into the result's exit code and log -- one bad request must
  /// never take the runner down or poison the warm state. Thread-safe in
  /// warm mode.
  ServiceResult execute(const ServiceRequest& request);

  /// Persists every resident cone cache to options().cache_dir (atomic
  /// tmp+fsync+rename per file). No-op without a cache_dir. Returns false
  /// when any file failed to write. Safe to call concurrently with
  /// execute() -- a killed daemon restarts warm from the last save.
  bool save_warm_state(DiagnosticSink* sink = nullptr);

  /// One-line warm-state summary per resident cone cache plus model
  /// count, for the wire `stats` command and --verbose serve logs.
  std::string stats_text() const;

  const Options& options() const noexcept { return options_; }

  /// The shared warm-mode pool (null in cold mode).
  ThreadPool* pool() const noexcept;

  /// The model at `path` under this request's parse discipline. Cold mode
  /// parses fresh; warm mode serves the resident entry keyed by file
  /// content + parse flavour (replaying its stored parse diagnostics into
  /// `sink`, so a hit reports exactly what a cold parse would have).
  /// Throws ftsynth::Error exactly as parse_mdl_file does.
  std::shared_ptr<const Model> acquire_model(const std::string& path,
                                             const ServiceRequest& request,
                                             bool implicit_validation,
                                             DiagnosticSink* sink);

  /// The resident cone cache for this cut-set configuration, created (and
  /// disk-loaded, when cache_dir is set) on first use. Warm mode only.
  ConeCache* warm_cone_cache(const CutSetOptions& cut_sets,
                             DiagnosticSink* sink);

 private:
  struct ModelEntry {
    std::shared_ptr<const Model> model;
    /// The parse-time diagnostic stream, replayed verbatim into each
    /// request's sink so a warm hit reports exactly what a cold parse
    /// would have.
    std::vector<Diagnostic> diagnostics;
  };

  Options options_;
  std::unique_ptr<ThreadPool> pool_;  ///< warm mode only

  mutable std::mutex models_mutex_;
  std::unordered_map<std::string, ModelEntry> models_;
  std::list<std::string> model_lru_;  ///< front = most recent

  mutable std::mutex cones_mutex_;
  /// Keyed by "<engine>/<max_order>/<max_sets>" (the ConeKeyspace).
  std::unordered_map<std::string, std::unique_ptr<ConeCache>> cones_;

  /// Response memo (warm mode): content hash of the model bytes (and the
  /// --against bytes for diff) plus every output-affecting request field
  /// maps to the full stored result. deadline_ms/budget/jobs/id are
  /// deliberately NOT in the key -- output is byte-identical across them
  /// (test-enforced) and a complete result satisfies any deadline.
  /// Returns nullopt when the request must not be memoised: cold mode,
  /// --output side effects, --verbose (its log carries cumulative warm
  /// counters), or an unreadable model file.
  std::optional<std::string> response_key(const ServiceRequest& request) const;

  mutable std::mutex results_mutex_;
  std::unordered_map<std::string, ServiceResult> results_;
  std::list<std::string> result_lru_;  ///< front = most recent
};

}  // namespace ftsynth::service
