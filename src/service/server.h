// `ftsynth serve`: the fault-tolerant analysis daemon.
//
// A long-lived server on a local (AF_UNIX) stream socket that holds warm
// state -- parsed models, per-keyspace cone caches, the interned variable
// orders behind them -- in a warm-mode ServiceRunner and answers
// line-delimited JSON requests (service/protocol.h). The paper's workflow
// is interactive: an engineer edits the Simulink model and re-checks the
// fault trees, so throwing the warm state away per process (the CLI
// shape) re-pays the whole analysis on every keystroke.
//
// The robustness layer is the point:
//
//   * ADMISSION CONTROL -- a bounded request queue. Every request carries
//     a mandatory Budget (deadline_ms; the protocol rejects requests
//     without one) armed AT ADMISSION, so time spent queued counts
//     against the client's deadline. A full queue sheds load with a
//     distinct `overloaded` error immediately -- bounded latency, never
//     an unbounded backlog; `max_deadline_ms` caps how long any one
//     request may hold a worker.
//   * REQUEST ISOLATION -- execution is ServiceRunner::execute, which
//     never throws: a malformed model, budget blow-up or engine error
//     degrades that one response (diagnostics, `und:` leaves, exit
//     codes) and cannot take the daemon down. Shared caches stay clean
//     because stores are clean-run-only (analysis/cache.h).
//   * TIMEOUT / CANCELLATION -- each connection watches its socket while
//     a request executes; a client disconnect force_expires the request's
//     budget latch, so every pool worker on that request unwinds at its
//     next poll and the workers are released. stop() force_expires all
//     in-flight budgets the same way.
//   * CRASH-SAFE WARM STATE -- a persistence loop saves the cone caches
//     to `cache_dir` every `save_interval_ms` and again on shutdown,
//     through the cache's atomic fsync+rename writer. A SIGKILLed daemon
//     restarts warm from the last good save; a torn or corrupt file is
//     rejected on load and merely costs a cold start (tested by fault
//     injection -- never a wrong answer).
//
// Byte-identity: a request's `output` is byte-identical to the serial
// CLI run with the same flags, for every command x engine x order x
// cold/warm state (enforced by tests/test_service.cpp and the CI soak).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/runner.h"

namespace ftsynth::service {

/// Test-only fault-injection points. Production leaves them empty.
struct ServiceHooks {
  /// Runs on the executor just before ServiceRunner::execute, with the
  /// admission-armed budget. Tests use it to hold a worker busy (until
  /// the budget expires) to provoke overload and cancellation paths.
  std::function<void(const ServiceRequest&, Budget&)> before_execute;
};

struct ServerOptions {
  /// Path of the AF_UNIX socket (required; a stale file is replaced).
  std::string socket_path;
  /// Workers in the shared analysis pool (0 = hardware concurrency).
  int jobs = 0;
  /// Concurrent request executors: how many requests make progress at
  /// once. Each one drives the shared pool for its intra-request
  /// parallelism, so a small number keeps the machine busy without
  /// thrashing.
  int executors = 2;
  /// Admission bound: requests queued (not yet executing) beyond this
  /// are shed with `overloaded`.
  std::size_t queue_limit = 16;
  /// Persistent cone-cache directory; empty = in-memory warm state only.
  std::string cache_dir;
  /// Clamp on any client deadline_ms (0 = uncapped): admission control
  /// over how long one request may hold an executor.
  long max_deadline_ms = 0;
  /// Warm-state persistence period (<= 0 disables the periodic save; the
  /// shutdown save still runs).
  long save_interval_ms = 30000;
  /// Resident model cap for the runner.
  std::size_t max_models = 32;
  ServiceHooks hooks;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;           ///< well-formed executing requests
  std::uint64_t admitted = 0;           ///< passed admission control
  std::uint64_t executed = 0;           ///< ran to a response
  std::uint64_t shed_overloaded = 0;    ///< rejected: queue full
  std::uint64_t shed_deadline = 0;      ///< expired before an executor ran it
  std::uint64_t bad_requests = 0;       ///< protocol-level rejections
  std::uint64_t disconnect_cancels = 0; ///< budgets expired by disconnect
  std::uint64_t saves = 0;              ///< completed warm-state saves
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();  ///< stops the server if still running

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds the socket and spawns the accept/executor/persistence
  /// threads. Returns false (with a message in `error`) when the socket
  /// cannot be created; the server then never started.
  bool start(std::string* error);

  /// Blocks until stop() is called or a `shutdown` request arrives.
  void wait();

  /// True once a `shutdown` request has been accepted.
  bool shutdown_requested() const noexcept;

  /// Orderly stop, idempotent: stops admitting, force_expires every
  /// in-flight budget, unblocks and joins all threads, saves the warm
  /// state. Safe to call from any thread except a connection handler.
  void stop();

  ServerStats stats() const;

  /// The warm runner (for tests and the serve command's verbose exit
  /// stats). Valid between construction and destruction.
  ServiceRunner& runner() noexcept { return runner_; }

 private:
  struct Pending;

  void accept_loop();
  void executor_loop();
  void saver_loop();
  void serve_connection(int fd);
  /// One request line -> one response line (empty = nothing to send).
  std::string handle_line(const std::string& line, int fd);

  ServerOptions options_;
  ServiceRunner runner_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> queue_;

  /// Budgets of requests currently queued or executing -- what stop()
  /// force_expires so no worker outlives the daemon's shutdown.
  std::mutex inflight_mutex_;
  std::vector<std::shared_ptr<Budget>> inflight_;

  /// Live connection fds. Handlers run detached; each deregisters itself
  /// as its last act, and stop() waits on the cv for the list to drain.
  std::mutex connections_mutex_;
  std::condition_variable connections_cv_;
  std::vector<int> connection_fds_;

  std::thread accept_thread_;
  std::vector<std::thread> executor_threads_;
  std::thread saver_thread_;
  std::mutex saver_mutex_;
  std::condition_variable saver_cv_;

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace ftsynth::service
