#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

namespace ftsynth::service {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;  // EPIPE instead of SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

/// A request line larger than this is rejected: requests are small, and a
/// daemon must bound what an arbitrary client can make it buffer.
constexpr std::size_t kMaxLineBytes = 1u << 20;

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t sent = ::send(fd, data.data(), data.size(), kSendFlags);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

/// Buffered newline-delimited reads off a blocking socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  enum class Status { kLine, kEof, kOverflow };

  Status read_line(std::string* line) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return Status::kLine;
      }
      if (buffer_.size() > kMaxLineBytes) return Status::kOverflow;
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got == 0) return Status::kEof;
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::kEof;  // reset/shutdown: treat as gone
      }
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace

/// One admitted request travelling from a connection to an executor. The
/// shared Budget is the cancellation handle: armed at admission, shared
/// (via its latch) with every engine-side copy, force_expired by
/// disconnect or shutdown.
struct ServiceServer::Pending {
  Json id;
  ServiceRequest request;
  std::shared_ptr<Budget> budget;
  std::promise<std::string> promise;  ///< the rendered response line
};

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)),
      runner_([&] {
        ServiceRunner::Options runner_options;
        runner_options.jobs = options_.jobs;
        runner_options.cache_dir = options_.cache_dir;
        runner_options.warm = true;
        runner_options.max_models = options_.max_models;
        return runner_options;
      }()) {
  if (options_.executors < 1) options_.executors = 1;
  if (options_.queue_limit == 0) options_.queue_limit = 1;
}

ServiceServer::~ServiceServer() { stop(); }

bool ServiceServer::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (options_.socket_path.empty()) return fail("no socket path given");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof address.sun_path)
    return fail("socket path too long for AF_UNIX");
  std::memcpy(address.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail(std::strerror(errno));
  // A previous daemon killed with the socket file in place would make
  // bind fail forever; the path is ours by contract, so replace it.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0)
    return fail("bind '" + options_.socket_path + "': " + std::strerror(errno));
  if (::listen(listen_fd_, 64) != 0) return fail(std::strerror(errno));

  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (int i = 0; i < options_.executors; ++i)
    executor_threads_.emplace_back([this] { executor_loop(); });
  if (options_.save_interval_ms > 0 && !options_.cache_dir.empty())
    saver_thread_ = std::thread([this] { saver_loop(); });
  return true;
}

void ServiceServer::wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [&] {
    return stopping_.load() || shutdown_requested_.load();
  });
}

bool ServiceServer::shutdown_requested() const noexcept {
  return shutdown_requested_.load();
}

void ServiceServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_ = true;
  // Release every worker promptly: queued and executing requests share
  // their budget latch with the engines, so one force_expire per request
  // unwinds synthesis, cut sets and probability at their next poll.
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (const std::shared_ptr<Budget>& budget : inflight_)
      budget->force_expire();
  }
  queue_cv_.notify_all();
  saver_cv_.notify_all();
  // Unblock connection readers stuck in recv().
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& executor : executor_threads_)
    if (executor.joinable()) executor.join();
  executor_threads_.clear();
  if (saver_thread_.joinable()) saver_thread_.join();
  // Connections run detached; wait until the last one deregistered.
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    connections_cv_.wait(lock, [&] { return connection_fds_.empty(); });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  // Crash-safety floor: whatever the periodic saver last wrote survives a
  // SIGKILL; an orderly stop additionally persists everything current.
  if (runner_.save_warm_state(nullptr)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.saves;
  }
  wait_cv_.notify_all();
}

ServerStats ServiceServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ServiceServer::accept_loop() {
  while (!stopping_) {
    pollfd poller{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poller, 1, 200);
    if (stopping_) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping_) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connection_fds_.push_back(fd);
    }
    // Detached: lifetime is managed by the fd registry -- the thread's
    // last touch of server state is deregistering itself (under the
    // connections mutex, which stop() waits on).
    std::thread([this, fd] { serve_connection(fd); }).detach();
  }
}

void ServiceServer::serve_connection(int fd) {
  LineReader reader(fd);
  while (!stopping_) {
    std::string line;
    const LineReader::Status status = reader.read_line(&line);
    if (status == LineReader::Status::kEof) break;
    if (status == LineReader::Status::kOverflow) {
      send_all(fd, render_error_response(Json(), WireErrorCode::kBadRequest,
                                         "request line too long") +
                       "\n");
      break;  // framing is lost; drop the connection
    }
    if (line.empty()) continue;
    const std::string response = handle_line(line, fd);
    if (response.empty()) break;  // client vanished mid-request
    if (!send_all(fd, response + "\n")) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connection_fds_.erase(
      std::find(connection_fds_.begin(), connection_fds_.end(), fd));
  connections_cv_.notify_all();
}

std::string ServiceServer::handle_line(const std::string& line, int fd) {
  std::variant<WireRequest, WireError> parsed = parse_wire_request(line);
  if (const WireError* error = std::get_if<WireError>(&parsed)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.bad_requests;
    return render_error_response(error->id, error->code, error->message);
  }
  WireRequest& wire = std::get<WireRequest>(parsed);

  switch (wire.control) {
    case ControlCommand::kPing:
      return render_control_response(wire.id, "pong");
    case ControlCommand::kStats: {
      ServerStats s = stats();
      std::string text = runner_.stats_text();
      text += "requests: " + std::to_string(s.requests) + " (" +
              std::to_string(s.executed) + " executed, " +
              std::to_string(s.shed_overloaded) + " overloaded, " +
              std::to_string(s.shed_deadline) + " deadline-shed, " +
              std::to_string(s.disconnect_cancels) + " disconnect-cancelled)\n";
      return render_control_response(wire.id, text);
    }
    case ControlCommand::kShutdown:
      shutdown_requested_ = true;
      wait_cv_.notify_all();
      return render_control_response(wire.id, "shutting down");
    case ControlCommand::kNone:
      break;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  if (stopping_ || shutdown_requested_) {
    return render_error_response(wire.id, WireErrorCode::kShuttingDown,
                                 "server is shutting down");
  }

  auto pending = std::make_shared<Pending>();
  pending->id = wire.id;
  pending->request = std::move(wire.request);
  pending->budget = std::make_shared<Budget>();
  // Arm the mandatory budget AT ADMISSION: queue wait counts against the
  // client's deadline, and the latch exists before anything can race to
  // force_expire it. max_deadline_ms is the operator's cap on how long
  // any request may hold an executor.
  long deadline_ms = pending->request.deadline_ms;
  if (options_.max_deadline_ms > 0 && deadline_ms > options_.max_deadline_ms)
    deadline_ms = options_.max_deadline_ms;
  pending->budget->set_deadline_ms(deadline_ms);
  std::future<std::string> response = pending->promise.get_future();

  // Admission control: a full queue sheds immediately with `overloaded`
  // (bounded latency) instead of queueing unboundedly.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.queue_limit) {
      lock.unlock();
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.shed_overloaded;
      return render_error_response(
          wire.id, WireErrorCode::kOverloaded,
          "request queue is full (" + std::to_string(options_.queue_limit) +
              " waiting); retry later");
    }
    queue_.push_back(pending);
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.push_back(pending->budget);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.admitted;
  }
  queue_cv_.notify_one();

  // Wait for the executor while watching the socket: a client that hangs
  // up mid-request has its budget force_expired so the pool workers are
  // released instead of finishing work nobody will read.
  bool disconnected = false;
  bool watch_socket = true;
  while (true) {
    if (response.wait_for(std::chrono::milliseconds(50)) ==
        std::future_status::ready)
      break;
    if (!watch_socket || disconnected) continue;
    pollfd poller{fd, POLLIN, 0};
    if (::poll(&poller, 1, 0) <= 0) continue;
    if ((poller.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    char peek = 0;
    const ssize_t got = ::recv(fd, &peek, 1, MSG_PEEK | MSG_DONTWAIT);
    if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
      disconnected = true;
      pending->budget->force_expire();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.disconnect_cancels;
    } else if (got > 0) {
      // Pipelined bytes of the NEXT request, not a hangup: stop peeking
      // (we would spin on them) and simply wait for completion.
      watch_socket = false;
    }
  }
  const std::string rendered = response.get();
  return disconnected ? std::string() : rendered;
}

void ServiceServer::executor_loop() {
  while (true) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [&] { return stopping_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }

    std::string response;
    if (stopping_) {
      response = render_error_response(pending->id,
                                       WireErrorCode::kShuttingDown,
                                       "server is shutting down");
    } else if (pending->budget->expired()) {
      // Expired while queued: deadline passed under load, or the client
      // already hung up. Shedding here is the degradation ladder's middle
      // rung -- the request never reaches an engine.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.shed_deadline;
      }
      response = render_error_response(
          pending->id, WireErrorCode::kDeadline,
          "deadline expired before execution started");
    } else {
      if (options_.hooks.before_execute)
        options_.hooks.before_execute(pending->request, *pending->budget);
      ServiceRequest request = pending->request;
      request.budget = *pending->budget;
      const ServiceResult result = runner_.execute(request);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.executed;
      }
      response = render_ok_response(pending->id, result);
    }

    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(
          std::find(inflight_.begin(), inflight_.end(), pending->budget));
    }
    pending->promise.set_value(std::move(response));
  }
}

void ServiceServer::saver_loop() {
  std::unique_lock<std::mutex> lock(saver_mutex_);
  while (!stopping_) {
    saver_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.save_interval_ms),
                       [&] { return stopping_.load(); });
    if (stopping_) break;
    // Periodic crash-safety checkpoint. Atomic fsync+rename per file: a
    // kill at ANY point leaves either the previous good file or the new
    // one, never a torn mix (tested by fault injection).
    if (runner_.save_warm_state(nullptr)) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.saves;
    }
  }
}

}  // namespace ftsynth::service
