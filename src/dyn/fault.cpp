#include "dyn/fault.h"

#include <cmath>

namespace ftsynth::dyn {

namespace {

class Omission : public FaultModel {
 public:
  Signal apply(const Signal& value, const StepContext&) override {
    return Signal(value.size(), std::nan(""));
  }
};

class Stuck : public FaultModel {
 public:
  explicit Stuck(double initial) : initial_(initial) {}
  Signal apply(const Signal& value, const StepContext&) override {
    if (!frozen_) {
      held_ = value;
      for (double& v : held_) {
        if (std::isnan(v)) v = initial_;
      }
      frozen_ = true;
    }
    if (held_.size() != value.size()) held_.assign(value.size(), initial_);
    return held_;
  }
  void reset() override {
    frozen_ = false;
    held_.clear();
  }

 private:
  double initial_;
  bool frozen_ = false;
  Signal held_;
};

class Bias : public FaultModel {
 public:
  explicit Bias(double offset) : offset_(offset) {}
  Signal apply(const Signal& value, const StepContext&) override {
    Signal out = value;
    for (double& v : out) v += offset_;
    return out;
  }

 private:
  double offset_;
};

class Drift : public FaultModel {
 public:
  explicit Drift(double rate) : rate_(rate) {}
  Signal apply(const Signal& value, const StepContext& context) override {
    if (start_ < 0.0) start_ = context.time;
    const double offset = rate_ * (context.time - start_);
    Signal out = value;
    for (double& v : out) v += offset;
    return out;
  }
  void reset() override { start_ = -1.0; }

 private:
  double rate_;
  double start_ = -1.0;
};

class Erratic : public FaultModel {
 public:
  Erratic(double amplitude, unsigned seed)
      : amplitude_(amplitude), state_(seed == 0 ? 1u : seed) {}
  Signal apply(const Signal& value, const StepContext&) override {
    Signal out = value;
    for (double& v : out) v += amplitude_ * (next_uniform() * 2.0 - 1.0);
    return out;
  }

 private:
  double next_uniform() {
    // xorshift32: deterministic, cheap, good enough for a disturbance.
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return static_cast<double>(state_) /
           static_cast<double>(UINT32_MAX);
  }

  double amplitude_;
  std::uint32_t state_;
};

class Commission : public FaultModel {
 public:
  explicit Commission(double value) : value_(value) {}
  Signal apply(const Signal& value, const StepContext&) override {
    return Signal(value.size(), value_);
  }

 private:
  double value_;
};

}  // namespace

std::unique_ptr<FaultModel> make_omission() {
  return std::make_unique<Omission>();
}
std::unique_ptr<FaultModel> make_stuck(double initial) {
  return std::make_unique<Stuck>(initial);
}
std::unique_ptr<FaultModel> make_bias(double offset) {
  return std::make_unique<Bias>(offset);
}
std::unique_ptr<FaultModel> make_drift(double rate) {
  return std::make_unique<Drift>(rate);
}
std::unique_ptr<FaultModel> make_erratic(double amplitude, unsigned seed) {
  return std::make_unique<Erratic>(amplitude, seed);
}
std::unique_ptr<FaultModel> make_commission(double value) {
  return std::make_unique<Commission>(value);
}

}  // namespace ftsynth::dyn
