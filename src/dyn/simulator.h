// Fixed-step numeric simulation of a model.
//
// Executes the same hierarchical models the safety analysis runs on:
// basic blocks are given Behaviours (dyn/behaviour.h), boundary inputs are
// driven by stimuli, and numeric faults (dyn/fault.h) can be injected on
// block outputs. Signals propagate through the structural elements --
// subsystem boundaries, mux/demux, data stores, grounds, triggers --
// exactly as the synthesiser traces failures through them.
//
// Update rule: synchronous. Every step all basic blocks read the previous
// step's values and produce new outputs, so the model's control loops
// execute without algebraic-loop solving.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dyn/fault.h"
#include "model/model.h"

namespace ftsynth::dyn {

/// A stimulus drives one model boundary input: value as a function of
/// time (broadcast across the port's channels).
using Stimulus = std::function<double(double)>;

// Common stimuli.
Stimulus constant_stimulus(double value);
Stimulus step_stimulus(double t_on, double value);
Stimulus ramp_stimulus(double rate);
Stimulus sine_stimulus(double amplitude, double frequency_hz);

/// Recorded samples of one watched port.
struct Trace {
  std::vector<double> times;
  std::vector<Signal> values;

  std::size_t size() const noexcept { return times.size(); }
};

/// One executable instance of a model. The model must outlive it.
class Simulation {
 public:
  explicit Simulation(const Model& model);
  ~Simulation();

  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;

  /// Assigns the behaviour of a basic block (path as in Model::block).
  /// Unassigned basic blocks copy their first input to every output
  /// (0 when they have no inputs).
  void set_behaviour(std::string_view block_path,
                     std::unique_ptr<Behaviour> behaviour);

  /// Drives the boundary input `port_name` of the model root.
  void set_stimulus(std::string_view port_name, Stimulus stimulus);

  /// Injects a numeric fault. The injection's port_path must name a basic
  /// block output ("wheel_fl/pwm.drive") or a root boundary input.
  void add_injection(Injection injection);

  /// Records `port_path` ("block/path.port") every step. Boundary outputs
  /// of the root are watched automatically.
  void watch(std::string_view port_path);

  /// Runs for `duration` seconds at step `dt`, appending to the traces.
  /// Throws ErrorKind::kAnalysis on missing stimuli or width mismatches.
  void run(double duration, double dt);

  /// Clears time, state and traces (keeps behaviours/stimuli/injections).
  void reset();

  const Trace& trace(std::string_view port_path) const;

  /// Last value observed at a watched port.
  const Signal& value(std::string_view port_path) const;

  double time() const noexcept;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftsynth::dyn
