// Numeric block behaviours -- what makes a model "executable".
//
// The paper's demonstration plan builds an *executable* Simulink model of
// the SETTA platform ("an executable model of vehicle dynamics provided by
// Renault", section 4). This module provides the numeric side: a Behaviour
// computes a block's output signals from its input signals once per fixed
// simulation step. The static failure-logic world (annotations, synthesis)
// and this dynamic world are bridged by the fault injector and the
// deviation detector (dyn/fault.h, dyn/detector.h).
//
// Semantics: synchronous update. Every step, all blocks compute their new
// outputs from the *previous* step's values, so feedback loops are
// well-defined without algebraic-loop solving (each cycle edge carries an
// implicit unit delay).

#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace ftsynth::dyn {

/// Signal values of one port: one double per channel. NaN encodes an
/// absent (omitted) signal.
using Signal = std::vector<double>;

/// Context handed to a behaviour on every step.
struct StepContext {
  double time = 0.0;  ///< simulation time, seconds
  double dt = 0.0;    ///< step size, seconds
  /// True when the block's trigger input (if any) is active this step.
  bool triggered = true;
};

/// Computes output signals from input signals. Inputs/outputs are indexed
/// in the block's port declaration order (triggers are not included).
/// Implementations may keep state (integrators, delays) -- one Behaviour
/// instance belongs to exactly one block instance.
class Behaviour {
 public:
  virtual ~Behaviour() = default;

  /// `inputs[i]` has the width of the block's i-th (non-trigger) input
  /// port; the result must match the output ports' widths.
  virtual std::vector<Signal> step(const std::vector<Signal>& inputs,
                                   const StepContext& context) = 0;

  /// Resets internal state to time zero.
  virtual void reset() {}
};

// -- Stock behaviours ------------------------------------------------------------

/// out = k * in (element-wise; single input, single output).
std::unique_ptr<Behaviour> make_gain(double k);

/// out = sum_i w_i * in_i (inputs broadcast to the widest input).
std::unique_ptr<Behaviour> make_sum(std::vector<double> weights);

/// out(t) = out(t-dt) + k * in * dt, starting from `initial`.
std::unique_ptr<Behaviour> make_integrator(double k = 1.0,
                                           double initial = 0.0);

/// out = in delayed by `steps` simulation steps (initially `initial`).
std::unique_ptr<Behaviour> make_delay(int steps, double initial = 0.0);

/// out = clamp(in, lo, hi).
std::unique_ptr<Behaviour> make_saturate(double lo, double hi);

/// out = constant `value` (no inputs).
std::unique_ptr<Behaviour> make_constant(double value);

/// out_i = in_i for every output port (identity; widths must match).
std::unique_ptr<Behaviour> make_passthrough();

/// out = median of the (single-channel) inputs -- a voter. NaN inputs are
/// ignored; all-NaN yields NaN (the voted signal is lost).
std::unique_ptr<Behaviour> make_median_voter();

/// First-order lag: out += (in - out) * dt / tau.
std::unique_ptr<Behaviour> make_first_order(double tau, double initial = 0.0);

/// Arbitrary stateless function of the inputs.
std::unique_ptr<Behaviour> make_function(
    std::function<std::vector<Signal>(const std::vector<Signal>&,
                                      const StepContext&)> function);

}  // namespace ftsynth::dyn
