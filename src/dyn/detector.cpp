#include "dyn/detector.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace ftsynth::dyn {

namespace {

struct Symptoms {
  std::size_t samples = 0;     ///< comparable (channel, step) pairs
  std::size_t omitted = 0;     ///< faulty NaN where golden is defined
  std::size_t spurious = 0;    ///< faulty active where golden is inactive
  std::size_t wrong = 0;       ///< both defined, difference beyond tolerance
};

Symptoms gather(const Trace& golden, const Trace& faulty,
                const DetectionOptions& options) {
  Symptoms symptoms;
  const std::size_t n = std::min(golden.size(), faulty.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Signal& g = golden.values[i];
    const Signal& f = faulty.values[i];
    const std::size_t channels = std::min(g.size(), f.size());
    for (std::size_t c = 0; c < channels; ++c) {
      ++symptoms.samples;
      const bool g_defined = !std::isnan(g[c]);
      const bool f_defined = !std::isnan(f[c]);
      if (g_defined && !f_defined) {
        ++symptoms.omitted;
        continue;
      }
      if (!f_defined) continue;
      const bool g_active = g_defined && std::abs(g[c]) > options.activity_threshold;
      const bool f_active = std::abs(f[c]) > options.activity_threshold;
      if (f_active && !g_active) {
        ++symptoms.spurious;
        continue;
      }
      if (g_defined && std::abs(f[c] - g[c]) > options.value_tolerance)
        ++symptoms.wrong;
    }
  }
  return symptoms;
}

/// Mean absolute error of faulty[i] against golden[i - lag] (defined
/// samples only); large when nothing is comparable.
double lag_error(const Trace& golden, const Trace& faulty, int lag,
                 const DetectionOptions& options) {
  double total = 0.0;
  std::size_t count = 0;
  const std::size_t n = std::min(golden.size(), faulty.size());
  for (std::size_t i = static_cast<std::size_t>(lag); i < n; ++i) {
    const Signal& g = golden.values[i - static_cast<std::size_t>(lag)];
    const Signal& f = faulty.values[i];
    const std::size_t channels = std::min(g.size(), f.size());
    for (std::size_t c = 0; c < channels; ++c) {
      if (std::isnan(g[c]) || std::isnan(f[c])) continue;
      total += std::abs(f[c] - g[c]);
      ++count;
    }
  }
  (void)options;
  if (count == 0) return 1e300;
  return total / static_cast<double>(count);
}

}  // namespace

std::vector<FailureClass> classify_deviation(
    const Trace& golden, const Trace& faulty,
    const FailureClassRegistry& registry, const DetectionOptions& options) {
  std::vector<FailureClass> classes;
  const Symptoms symptoms = gather(golden, faulty, options);
  if (symptoms.samples == 0) return classes;
  const auto fraction = [&](std::size_t count) {
    return static_cast<double>(count) /
           static_cast<double>(symptoms.samples);
  };

  if (fraction(symptoms.omitted) > options.persistence)
    classes.push_back(registry.omission());
  if (fraction(symptoms.spurious) > options.persistence)
    classes.push_back(registry.commission());

  if (fraction(symptoms.wrong) > options.persistence) {
    // A pure delay reads as a value error at lag 0; if shifting the golden
    // trace explains the difference, it is a timing failure instead.
    const double aligned = lag_error(golden, faulty, 0, options);
    double best = aligned;
    int best_lag = 0;
    for (int lag = 1; lag <= options.max_lag_steps; ++lag) {
      const double error = lag_error(golden, faulty, lag, options);
      if (error < best) {
        best = error;
        best_lag = lag;
      }
    }
    if (best_lag > 0 && best <= options.value_tolerance) {
      classes.push_back(registry.late());
    } else {
      classes.push_back(registry.value());
    }
  }
  return classes;
}

std::vector<Deviation> observed_output_deviations(
    const Model& model, const Simulation& golden, const Simulation& faulty,
    const DetectionOptions& options) {
  std::vector<Deviation> observed;
  for (const Port* port : model.root().outputs()) {
    const std::string name = port->name().str();
    std::vector<FailureClass> classes = classify_deviation(
        golden.trace(name), faulty.trace(name), model.registry(), options);
    for (FailureClass cls : classes)
      observed.push_back(Deviation{cls, port->name()});
  }
  std::sort(observed.begin(), observed.end());
  return observed;
}

}  // namespace ftsynth::dyn
