#include "dyn/simulator.h"

#include <cmath>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth::dyn {

Stimulus constant_stimulus(double value) {
  return [value](double) { return value; };
}
Stimulus step_stimulus(double t_on, double value) {
  return [t_on, value](double t) { return t >= t_on ? value : 0.0; };
}
Stimulus ramp_stimulus(double rate) {
  return [rate](double t) { return rate * t; };
}
Stimulus sine_stimulus(double amplitude, double frequency_hz) {
  return [amplitude, frequency_hz](double t) {
    return amplitude * std::sin(2.0 * 3.14159265358979323846 *
                                frequency_hz * t);
  };
}

namespace {

/// Unassigned basic blocks copy their first input to every output.
class DefaultBehaviour : public Behaviour {
 public:
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    Signal source = inputs.empty() ? Signal{0.0} : inputs.front();
    return {source};  // widths are fixed up by the engine's broadcast rule
  }
};

}  // namespace

class Simulation::Impl {
 public:
  explicit Impl(const Model& model) : model_(model) {
    model_.for_each_block([&](const Block& block) {
      if (block.kind() == BlockKind::kBasic) basic_blocks_.push_back(&block);
    });
    // State lives on basic-block outputs.
    for (const Block* block : basic_blocks_) {
      for (const Port* port : block->outputs())
        state_[port] = Signal(static_cast<std::size_t>(port->width()), 0.0);
    }
    // Boundary outputs are always observable.
    for (const Port* port : model_.root().outputs())
      watch_port(port, port->name().str());
  }

  void set_behaviour(std::string_view block_path,
                     std::unique_ptr<Behaviour> behaviour) {
    const Block& block = model_.block(block_path);
    require(block.kind() == BlockKind::kBasic, ErrorKind::kAnalysis,
            "behaviours attach to basic blocks; '" + block.path() + "' is " +
                std::string(to_string(block.kind())));
    behaviours_[&block] = std::move(behaviour);
  }

  void set_stimulus(std::string_view port_name, Stimulus stimulus) {
    const Port& port = model_.root().port(port_name);
    require(port.is_input(), ErrorKind::kAnalysis,
            "stimulus target '" + std::string(port_name) +
                "' is not a boundary input");
    stimuli_[&port] = std::move(stimulus);
  }

  void add_injection(Injection injection) {
    const Port* port = resolve_port_path(injection.port_path);
    const Block& owner = port->owner();
    const bool basic_output =
        owner.kind() == BlockKind::kBasic && port->is_output();
    const bool boundary_input = owner.is_root() && port->is_input();
    require(basic_output || boundary_input, ErrorKind::kAnalysis,
            "injections attach to basic block outputs or boundary inputs; "
            "got '" +
                injection.port_path + "'");
    injections_.push_back({port, std::move(injection)});
  }

  void watch(std::string_view port_path) {
    watch_port(resolve_port_path(port_path), std::string(port_path));
  }

  void run(double duration, double dt) {
    require(dt > 0.0 && duration >= 0.0, ErrorKind::kAnalysis,
            "simulation needs dt > 0 and duration >= 0");
    const auto steps = static_cast<std::size_t>(duration / dt + 0.5);
    for (std::size_t i = 0; i < steps; ++i) step(dt);
  }

  void reset() {
    time_ = 0.0;
    for (auto& [port, value] : state_)
      value.assign(value.size(), 0.0);
    stores_.clear();
    boundary_cache_.clear();
    for (auto& [block, behaviour] : behaviours_) behaviour->reset();
    for (auto& [port, injection] : injections_) injection.fault->reset();
    for (auto& [port, trace] : traces_) trace = Trace{};
  }

  const Trace& trace(std::string_view port_path) const {
    const Port* port = resolve_port_path(port_path);
    auto it = traces_.find(port);
    require(it != traces_.end(), ErrorKind::kAnalysis,
            "port '" + std::string(port_path) + "' is not watched");
    return it->second;
  }

  const Signal& value(std::string_view port_path) const {
    const Trace& t = trace(port_path);
    require(!t.values.empty(), ErrorKind::kAnalysis,
            "no samples recorded yet for '" + std::string(port_path) + "'");
    return t.values.back();
  }

  double time() const noexcept { return time_; }

 private:
  void watch_port(const Port* port, std::string label) {
    traces_.emplace(port, Trace{});
    labels_.emplace(std::move(label), port);
  }

  const Port* resolve_port_path(std::string_view path) const {
    std::string_view block_path = trim(path);
    std::string_view port_name;
    if (std::size_t dot = block_path.rfind('.');
        dot != std::string_view::npos) {
      port_name = trim(block_path.substr(dot + 1));
      block_path = trim(block_path.substr(0, dot));
      return &model_.block(block_path).port(port_name);
    }
    return &model_.root().port(block_path);  // bare boundary port name
  }

  // -- Value derivation over the previous step's state -------------------------

  Signal read_output(const Port& port) const {
    const Block& block = port.owner();
    switch (block.kind()) {
      case BlockKind::kBasic:
        return state_.at(&port);
      case BlockKind::kSubsystem: {
        const Block* proxy = block.find_child(port.name());
        check_internal(proxy != nullptr, "missing Outport proxy");
        return read_input(*proxy->inputs().front());
      }
      case BlockKind::kInport: {
        const Block* subsystem = block.parent();
        check_internal(subsystem != nullptr, "Inport proxy without parent");
        return read_input(subsystem->port(block.name()));
      }
      case BlockKind::kMux: {
        Signal out;
        for (const Port* input : block.inputs()) {
          Signal piece = read_input(*input);
          out.insert(out.end(), piece.begin(), piece.end());
        }
        return out;
      }
      case BlockKind::kDemux: {
        Signal whole = read_input(*block.inputs().front());
        int offset = 0;
        for (const Port* output : block.outputs()) {
          if (output == &port) break;
          offset += output->width();
        }
        const auto lo = static_cast<std::size_t>(offset);
        const auto hi =
            std::min(whole.size(), lo + static_cast<std::size_t>(port.width()));
        if (lo >= whole.size())
          return Signal(static_cast<std::size_t>(port.width()),
                        std::nan(""));
        return Signal(whole.begin() + static_cast<std::ptrdiff_t>(lo),
                      whole.begin() + static_cast<std::ptrdiff_t>(hi));
      }
      case BlockKind::kDataStoreRead: {
        auto it = stores_.find(block.store_name());
        if (it == stores_.end())
          return Signal(static_cast<std::size_t>(port.width()), 0.0);
        return it->second;
      }
      case BlockKind::kGround:
        return Signal(static_cast<std::size_t>(port.width()), 0.0);
      case BlockKind::kOutport:
      case BlockKind::kDataStoreWrite:
        break;
    }
    throw Error(ErrorKind::kInternal, "read_output on block without outputs");
  }

  Signal read_input(const Port& port) const {
    const Block& owner = port.owner();
    const Block* parent = owner.parent();
    if (parent == nullptr) {
      // Boundary input of the model root: stimulus (cached per step).
      auto it = boundary_cache_.find(&port);
      require(it != boundary_cache_.end(), ErrorKind::kAnalysis,
              "no stimulus for boundary input '" + port.name().str() + "'");
      return it->second;
    }
    const Connection* connection = parent->connection_into(port);
    if (connection == nullptr)
      return Signal(static_cast<std::size_t>(port.width()), std::nan(""));
    return read_output(*connection->from);
  }

  /// Fits a behaviour result onto a port: broadcast a single channel, or
  /// require an exact width match.
  Signal fit(Signal value, const Port& port, const Block& block) const {
    const auto width = static_cast<std::size_t>(port.width());
    if (value.size() == width) return value;
    if (value.size() == 1) return Signal(width, value[0]);
    throw Error(ErrorKind::kAnalysis,
                "behaviour of '" + block.path() + "' produced width " +
                    std::to_string(value.size()) + " for port '" +
                    port.name().str() + "' (width " + std::to_string(width) +
                    ")");
  }

  void step(double dt) {
    const StepContext context{time_, dt, true};

    // 1. Boundary inputs for this step (stimuli + input-side injections).
    boundary_cache_.clear();
    for (const Port* port : model_.root().inputs()) {
      auto it = stimuli_.find(port);
      require(it != stimuli_.end(), ErrorKind::kAnalysis,
              "no stimulus for boundary input '" + port->name().str() + "'");
      Signal value(static_cast<std::size_t>(port->width()),
                   it->second(time_));
      for (const auto& [target, injection] : injections_) {
        if (target == port && injection.active(time_))
          value = injection.fault->apply(value, context);
      }
      boundary_cache_.emplace(port, std::move(value));
    }

    // 2. New basic-block outputs from the previous state.
    std::unordered_map<const Port*, Signal> next;
    for (const Block* block : basic_blocks_) {
      std::vector<Signal> inputs;
      bool triggered = true;
      for (const Port* input : block->inputs()) {
        if (input->is_trigger()) {
          Signal t = read_input(*input);
          triggered = !t.empty() && !std::isnan(t[0]) && t[0] > 0.5;
          continue;
        }
        inputs.push_back(read_input(*input));
      }
      const std::vector<Port*> outputs = block->outputs();
      if (!triggered) {
        for (const Port* port : outputs) next[port] = state_.at(port);
      } else {
        Behaviour* behaviour = find_behaviour(*block);
        StepContext block_context = context;
        block_context.triggered = triggered;
        std::vector<Signal> produced = behaviour->step(inputs, block_context);
        require(produced.size() == outputs.size() ||
                    (produced.size() == 1 && !outputs.empty()),
                ErrorKind::kAnalysis,
                "behaviour of '" + block->path() + "' produced " +
                    std::to_string(produced.size()) + " signals for " +
                    std::to_string(outputs.size()) + " outputs");
        for (std::size_t i = 0; i < outputs.size(); ++i) {
          const Signal& raw =
              produced.size() == outputs.size() ? produced[i] : produced[0];
          next[outputs[i]] = fit(raw, *outputs[i], *block);
        }
      }
      // Output-side injections.
      for (const auto& [target, injection] : injections_) {
        if (injection.active(time_) && &target->owner() == block &&
            next.count(target) != 0) {
          next[target] = injection.fault->apply(next[target], context);
        }
      }
    }

    // 3. Data stores: written values become visible next step.
    std::unordered_map<Symbol, Signal> next_stores = stores_;
    model_.for_each_block([&](const Block& block) {
      if (block.kind() != BlockKind::kDataStoreWrite) return;
      next_stores[block.store_name()] =
          read_input(*block.inputs().front());
    });

    // 4. Commit.
    for (auto& [port, value] : next) state_[port] = std::move(value);
    stores_ = std::move(next_stores);

    // 5. Record traces against the committed state.
    for (auto& [port, trace] : traces_) {
      trace.times.push_back(time_);
      trace.values.push_back(port->is_output()
                                 ? read_output(*port)
                                 : read_input(*port));
    }
    time_ += dt;
  }

  Behaviour* find_behaviour(const Block& block) {
    auto it = behaviours_.find(&block);
    if (it != behaviours_.end()) return it->second.get();
    auto [inserted, ok] =
        behaviours_.emplace(&block, std::make_unique<DefaultBehaviour>());
    return inserted->second.get();
  }

  const Model& model_;
  double time_ = 0.0;
  std::vector<const Block*> basic_blocks_;
  std::unordered_map<const Port*, Signal> state_;
  std::unordered_map<Symbol, Signal> stores_;
  std::unordered_map<const Port*, Signal> boundary_cache_;
  std::unordered_map<const Block*, std::unique_ptr<Behaviour>> behaviours_;
  std::unordered_map<const Port*, Stimulus> stimuli_;
  std::vector<std::pair<const Port*, Injection>> injections_;
  std::unordered_map<const Port*, Trace> traces_;
  std::unordered_map<std::string, const Port*> labels_;
};

Simulation::Simulation(const Model& model)
    : impl_(std::make_unique<Impl>(model)) {}
Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

void Simulation::set_behaviour(std::string_view block_path,
                               std::unique_ptr<Behaviour> behaviour) {
  impl_->set_behaviour(block_path, std::move(behaviour));
}
void Simulation::set_stimulus(std::string_view port_name, Stimulus stimulus) {
  impl_->set_stimulus(port_name, std::move(stimulus));
}
void Simulation::add_injection(Injection injection) {
  impl_->add_injection(std::move(injection));
}
void Simulation::watch(std::string_view port_path) {
  impl_->watch(port_path);
}
void Simulation::run(double duration, double dt) {
  impl_->run(duration, dt);
}
void Simulation::reset() { impl_->reset(); }
const Trace& Simulation::trace(std::string_view port_path) const {
  return impl_->trace(port_path);
}
const Signal& Simulation::value(std::string_view port_path) const {
  return impl_->value(port_path);
}
double Simulation::time() const noexcept { return impl_->time(); }

}  // namespace ftsynth::dyn
