// Deviation detection: classifying numeric disturbances back into the
// HAZOP failure classes.
//
// Given a golden (fault-free) trace and a faulty trace of the same port,
// the detector decides which deviation classes the disturbance manifests
// as -- omission (signal lost), commission (spurious activity), late
// (shifted in time), value (wrong magnitude). This closes the loop between
// the numeric simulation and the discrete safety analysis: injecting the
// numeric realisation of a malfunction must produce, at the system
// outputs, deviations whose synthesized fault trees contain that
// malfunction (tested in tests/test_dyn.cpp).

#pragma once

#include <vector>

#include "dyn/simulator.h"
#include "failure/failure_class.h"

namespace ftsynth::dyn {

struct DetectionOptions {
  double value_tolerance = 1e-6;     ///< |faulty - golden| beyond this = Value
  double activity_threshold = 1e-9;  ///< |signal| beyond this = active
  int max_lag_steps = 50;            ///< search window for Late detection
  /// Fraction of samples that must show a symptom before it is reported.
  double persistence = 0.05;
};

/// Classifies the deviations visible in `faulty` relative to `golden`
/// (same port, same sampling). Returns the matching standard classes from
/// `registry` ("Omission", "Commission", "Late", "Value"), most severe
/// first; empty when the traces agree.
std::vector<FailureClass> classify_deviation(
    const Trace& golden, const Trace& faulty,
    const FailureClassRegistry& registry,
    const DetectionOptions& options = {});

/// Runs the classifier on every boundary output of the model underlying
/// the two simulations and returns the observed output deviations.
/// Both simulations must have been run over the same horizon.
std::vector<Deviation> observed_output_deviations(
    const Model& model, const Simulation& golden, const Simulation& faulty,
    const DetectionOptions& options = {});

}  // namespace ftsynth::dyn
