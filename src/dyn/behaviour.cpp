#include "dyn/behaviour.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "core/error.h"

namespace ftsynth::dyn {

namespace {

class Gain : public Behaviour {
 public:
  explicit Gain(double k) : k_(k) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    check_internal(inputs.size() == 1, "gain needs exactly one input");
    Signal out = inputs[0];
    for (double& v : out) v *= k_;
    return {std::move(out)};
  }

 private:
  double k_;
};

class Sum : public Behaviour {
 public:
  explicit Sum(std::vector<double> weights) : weights_(std::move(weights)) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    check_internal(inputs.size() == weights_.size(),
                   "sum weight count mismatch");
    std::size_t width = 1;
    for (const Signal& in : inputs) width = std::max(width, in.size());
    Signal out(width, 0.0);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (std::size_t c = 0; c < width; ++c) {
        const double v =
            inputs[i].size() == 1 ? inputs[i][0] : inputs[i][c];
        out[c] += weights_[i] * v;
      }
    }
    return {std::move(out)};
  }

 private:
  std::vector<double> weights_;
};

class Integrator : public Behaviour {
 public:
  Integrator(double k, double initial) : k_(k), initial_(initial) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext& context) override {
    check_internal(inputs.size() == 1, "integrator needs one input");
    if (state_.size() != inputs[0].size())
      state_.assign(inputs[0].size(), initial_);
    for (std::size_t c = 0; c < state_.size(); ++c)
      state_[c] += k_ * inputs[0][c] * context.dt;
    return {state_};
  }
  void reset() override { state_.clear(); }

 private:
  double k_;
  double initial_;
  Signal state_;
};

class Delay : public Behaviour {
 public:
  Delay(int steps, double initial) : steps_(steps), initial_(initial) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    check_internal(inputs.size() == 1, "delay needs one input");
    buffer_.push_back(inputs[0]);
    Signal out;
    if (static_cast<int>(buffer_.size()) > steps_) {
      out = buffer_.front();
      buffer_.pop_front();
    } else {
      out.assign(inputs[0].size(), initial_);
    }
    return {std::move(out)};
  }
  void reset() override { buffer_.clear(); }

 private:
  int steps_;
  double initial_;
  std::deque<Signal> buffer_;
};

class Saturate : public Behaviour {
 public:
  Saturate(double lo, double hi) : lo_(lo), hi_(hi) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    check_internal(inputs.size() == 1, "saturate needs one input");
    Signal out = inputs[0];
    for (double& v : out) v = std::clamp(v, lo_, hi_);
    return {std::move(out)};
  }

 private:
  double lo_;
  double hi_;
};

class Constant : public Behaviour {
 public:
  explicit Constant(double value) : value_(value) {}
  std::vector<Signal> step(const std::vector<Signal>&,
                           const StepContext&) override {
    return {Signal{value_}};
  }

 private:
  double value_;
};

class Passthrough : public Behaviour {
 public:
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    return inputs;
  }
};

class MedianVoter : public Behaviour {
 public:
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext&) override {
    std::vector<double> values;
    for (const Signal& in : inputs) {
      for (double v : in) {
        if (!std::isnan(v)) values.push_back(v);
      }
    }
    if (values.empty()) {
      return {Signal{std::nan("")}};
    }
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    return {Signal{values[values.size() / 2]}};
  }
};

class FirstOrder : public Behaviour {
 public:
  FirstOrder(double tau, double initial) : tau_(tau), initial_(initial) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext& context) override {
    check_internal(inputs.size() == 1, "first-order lag needs one input");
    if (state_.size() != inputs[0].size())
      state_.assign(inputs[0].size(), initial_);
    for (std::size_t c = 0; c < state_.size(); ++c)
      state_[c] += (inputs[0][c] - state_[c]) * context.dt / tau_;
    return {state_};
  }
  void reset() override { state_.clear(); }

 private:
  double tau_;
  double initial_;
  Signal state_;
};

class FunctionBehaviour : public Behaviour {
 public:
  explicit FunctionBehaviour(
      std::function<std::vector<Signal>(const std::vector<Signal>&,
                                        const StepContext&)> function)
      : function_(std::move(function)) {}
  std::vector<Signal> step(const std::vector<Signal>& inputs,
                           const StepContext& context) override {
    return function_(inputs, context);
  }

 private:
  std::function<std::vector<Signal>(const std::vector<Signal>&,
                                    const StepContext&)> function_;
};

}  // namespace

std::unique_ptr<Behaviour> make_gain(double k) {
  return std::make_unique<Gain>(k);
}
std::unique_ptr<Behaviour> make_sum(std::vector<double> weights) {
  return std::make_unique<Sum>(std::move(weights));
}
std::unique_ptr<Behaviour> make_integrator(double k, double initial) {
  return std::make_unique<Integrator>(k, initial);
}
std::unique_ptr<Behaviour> make_delay(int steps, double initial) {
  return std::make_unique<Delay>(steps, initial);
}
std::unique_ptr<Behaviour> make_saturate(double lo, double hi) {
  return std::make_unique<Saturate>(lo, hi);
}
std::unique_ptr<Behaviour> make_constant(double value) {
  return std::make_unique<Constant>(value);
}
std::unique_ptr<Behaviour> make_passthrough() {
  return std::make_unique<Passthrough>();
}
std::unique_ptr<Behaviour> make_median_voter() {
  return std::make_unique<MedianVoter>();
}
std::unique_ptr<Behaviour> make_first_order(double tau, double initial) {
  return std::make_unique<FirstOrder>(tau, initial);
}
std::unique_ptr<Behaviour> make_function(
    std::function<std::vector<Signal>(const std::vector<Signal>&,
                                      const StepContext&)> function) {
  return std::make_unique<FunctionBehaviour>(std::move(function));
}

}  // namespace ftsynth::dyn
