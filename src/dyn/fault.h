// Numeric fault models.
//
// The failure classes of the HAZOP taxonomy, realised as signal
// disturbances: an injected fault transforms the signal a block output
// produces during a time window. This gives physical meaning to the
// abstract malfunctions of the hazard analysis ("stuck", "bias", "drift")
// and lets the detector (dyn/detector.h) observe how the disturbance
// manifests downstream.

#pragma once

#include <memory>
#include <string>

#include "dyn/behaviour.h"

namespace ftsynth::dyn {

/// Transforms one port's signal, step by step, while active.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// `value` is the healthy signal this step; returns the disturbed one.
  virtual Signal apply(const Signal& value, const StepContext& context) = 0;

  virtual void reset() {}
};

/// Omission: the signal disappears (every channel becomes NaN).
std::unique_ptr<FaultModel> make_omission();

/// Stuck: the signal freezes at the last healthy value (or `value` if
/// given before any healthy sample was seen).
std::unique_ptr<FaultModel> make_stuck(double initial = 0.0);

/// Bias: a constant offset.
std::unique_ptr<FaultModel> make_bias(double offset);

/// Drift: an offset growing linearly at `rate` per second of activity.
std::unique_ptr<FaultModel> make_drift(double rate);

/// Erratic: deterministic pseudo-noise of the given amplitude.
std::unique_ptr<FaultModel> make_erratic(double amplitude,
                                         unsigned seed = 1);

/// Commission: the signal is replaced by a spurious constant.
std::unique_ptr<FaultModel> make_commission(double value);

/// An injection: `fault` applied to output port `port_path`
/// ("block/path.port") from t_start to t_end (seconds; end <= start means
/// "until the end of the run").
struct Injection {
  std::string port_path;
  std::shared_ptr<FaultModel> fault;
  double t_start = 0.0;
  double t_end = -1.0;

  bool active(double time) const noexcept {
    return time >= t_start && (t_end < t_start || time < t_end);
  }
};

}  // namespace ftsynth::dyn
