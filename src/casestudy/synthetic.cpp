#include "casestudy/synthetic.h"

#include <random>
#include <string>
#include <vector>

#include "core/error.h"
#include "model/builder.h"

namespace ftsynth::synthetic {

namespace {

/// Standard stage annotation: one malfunction, Omission/Value propagation
/// from every input.
void annotate_stage(ModelBuilder& b, Block& block, double rate) {
  b.malfunction(block, "fail", rate, "internal failure of " +
                                         std::string(block.name().view()));
  std::vector<Port*> inputs = block.inputs();
  for (const char* cls : {"Omission", "Value"}) {
    std::string cause = "fail";
    for (const Port* input : inputs)
      cause += " OR " + std::string(cls) + "-" + input->name().str();
    for (const Port* output : block.outputs())
      b.annotate(block, std::string(cls) + "-" + output->name().str(), cause);
  }
}

}  // namespace

Model build_chain(int length) {
  require(length >= 1, ErrorKind::kModel, "chain length must be >= 1");
  ModelBuilder b("chain");
  Block& root = b.root();
  b.inport(root, "source");
  std::string previous = "source";
  for (int i = 1; i <= length; ++i) {
    const std::string name = "stage_" + std::to_string(i);
    Block& stage = b.basic(root, name);
    b.in(stage, "in");
    b.out(stage, "out");
    annotate_stage(b, stage, 1e-6);
    b.connect(root, previous, name + ".in");
    previous = name + ".out";
  }
  b.outport(root, "sink");
  b.connect(root, previous, "sink");
  return b.take();
}

namespace {

/// Builds a `width`-stage chain inside `parent` from its inport "in" to
/// its outport "out", then recurses one level deeper in the middle.
void build_deep_level(ModelBuilder& b, Block& parent, int remaining_depth,
                      int width) {
  std::string previous = "in";
  for (int i = 1; i <= width; ++i) {
    const std::string name = "stage_" + std::to_string(i);
    Block& stage = b.basic(parent, name);
    b.in(stage, "in");
    b.out(stage, "out");
    annotate_stage(b, stage, 1e-6);
    b.connect(parent, previous, name + ".in");
    previous = name + ".out";
  }
  if (remaining_depth > 0) {
    Block& nested = b.subsystem(parent, "nested");
    b.inport(nested, "in");
    b.outport(nested, "out");
    // Figure 3 common cause at every level.
    b.malfunction(nested, "level_hw", 1e-7, "shared hardware of this level");
    b.annotate(nested, "Omission-out", "level_hw");
    build_deep_level(b, nested, remaining_depth - 1, width);
    b.connect(parent, previous, "nested.in");
    previous = "nested.out";
  }
  b.connect(parent, previous, "out");
}

}  // namespace

Model build_deep(int depth, int width) {
  require(depth >= 0 && width >= 1, ErrorKind::kModel,
          "build_deep needs depth >= 0, width >= 1");
  ModelBuilder b("deep");
  Block& root = b.root();
  b.inport(root, "in");
  b.outport(root, "out");
  build_deep_level(b, root, depth, width);
  return b.take();
}

Model build_diamond(int depth) {
  require(depth >= 1, ErrorKind::kModel, "diamond depth must be >= 1");
  ModelBuilder b("diamond");
  Block& root = b.root();
  b.inport(root, "source");
  std::string previous = "source";
  for (int i = 1; i <= depth; ++i) {
    const std::string name = "stage_" + std::to_string(i);
    Block& stage = b.basic(root, name);
    b.in(stage, "left");
    b.in(stage, "right");
    b.out(stage, "out");
    b.malfunction(stage, "fail", 1e-6, "stage failure");
    b.annotate(stage, "Omission-out",
               "fail OR Omission-left OR Omission-right");
    b.annotate(stage, "Value-out", "fail OR Value-left OR Value-right");
    b.connect(root, previous, name + ".left");
    b.connect(root, previous, name + ".right");
    previous = name + ".out";
  }
  b.outport(root, "sink");
  b.connect(root, previous, "sink");
  return b.take();
}

Model build_replicated(const ReplicatedConfig& config) {
  require(config.channels >= 1 && config.stages >= 1, ErrorKind::kModel,
          "replicated model needs channels >= 1, stages >= 1");
  ModelBuilder b("replicated");
  Block& root = b.root();
  b.inport(root, "source");

  // Shared source conditioning block: the common cause every lane shares.
  Block& shared = b.basic(root, "shared_input");
  b.in(shared, "in");
  b.out(shared, "out");
  annotate_stage(b, shared, 1e-6);
  b.connect(root, "source", "shared_input.in");

  if (config.shared_power) {
    Block& power = b.basic(root, "power");
    b.out(power, "rail", FlowKind::kEnergy);
    b.malfunction(power, "supply_dead", 5e-7, "shared power supply loss");
    b.annotate(power, "Omission-rail", "supply_dead");
  }

  // Voter: omission only if every lane is lost.
  Block& voter = b.basic(root, "voter");
  std::string omission_cause = "voter_fail";
  std::string value_cause = "voter_fail";
  b.malfunction(voter, "voter_fail", 1e-8, "voter failure");

  for (int c = 1; c <= config.channels; ++c) {
    const std::string lane = "lane" + std::to_string(c);
    std::string previous = "shared_input.out";
    for (int s = 1; s <= config.stages; ++s) {
      const std::string name = lane + "_stage" + std::to_string(s);
      Block& stage = b.basic(root, name);
      b.in(stage, "in");
      if (config.shared_power && s == 1) {
        b.in(stage, "pwr", FlowKind::kEnergy);
        b.connect(root, "power.rail", name + ".pwr");
        b.malfunction(stage, "fail", 1e-6, "stage failure");
        b.out(stage, "out");
        b.annotate(stage, "Omission-out",
                   "fail OR Omission-in OR Omission-pwr");
        b.annotate(stage, "Value-out", "fail OR Value-in");
      } else {
        b.out(stage, "out");
        annotate_stage(b, stage, 1e-6);
      }
      b.connect(root, previous, name + ".in");
      previous = name + ".out";
    }
    b.in(voter, lane);
    b.connect(root, previous, "voter." + lane);
    omission_cause += (c == 1 ? " OR (" : " AND ") + ("Omission-" + lane);
    value_cause += " OR Value-" + lane;
  }
  omission_cause += ")";
  b.out(voter, "out");
  b.annotate(voter, "Omission-out", omission_cause,
             "all lanes must fail for the voted output to be lost");
  b.annotate(voter, "Value-out", value_cause);

  b.outport(root, "sink");
  b.connect(root, "voter.out", "sink");
  return b.take();
}

Model build_random(const RandomModelConfig& config) {
  require(config.blocks >= 1 && config.inports >= 1 && config.max_fanin >= 1,
          ErrorKind::kModel, "invalid RandomModelConfig");
  std::mt19937 rng(config.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  auto pick = [&](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  };

  ModelBuilder b("random_model");
  Block& root = b.root();

  // Source endpoints usable by block i: root inports and earlier blocks.
  std::vector<std::string> sources;
  for (int i = 1; i <= config.inports; ++i) {
    const std::string name = "env" + std::to_string(i);
    b.inport(root, name);
    sources.push_back(name);
  }

  const std::vector<std::string> classes{"Omission", "Value"};
  std::vector<std::string> block_names;
  for (int i = 1; i <= config.blocks; ++i) {
    const std::string name = "b" + std::to_string(i);
    Block& block = b.basic(root, name);
    const int fanin = 1 + pick(config.max_fanin);
    std::vector<std::string> input_names;
    for (int k = 1; k <= fanin; ++k) {
      const std::string input = "in" + std::to_string(k);
      b.in(block, input);
      input_names.push_back(input);
    }
    b.out(block, "out");

    const double rate =
        config.rate_min +
        uniform(rng) * (config.rate_max - config.rate_min);
    b.malfunction(block, "fail", rate, "random malfunction");

    // A random monotone cause per class: OR of 1..3 terms, each a single
    // atom or (with and_probability) an AND of two atoms.
    auto atom = [&]() -> std::string {
      if (uniform(rng) < 0.35) return "fail";
      return classes[static_cast<std::size_t>(pick(2))] + "-" +
             input_names[static_cast<std::size_t>(
                 pick(static_cast<int>(input_names.size())))];
    };
    for (const std::string& cls : classes) {
      const int terms = 1 + pick(3);
      std::string cause;
      for (int t = 0; t < terms; ++t) {
        std::string term;
        if (uniform(rng) < config.vote_chance) {
          term = "VOTE(2: " + atom() + ", " + atom() + ", " + atom() + ")";
        } else if (uniform(rng) < config.and_probability) {
          term = "(" + atom() + " AND " + atom() + ")";
        } else {
          term = atom();
        }
        cause += (t == 0 ? "" : " OR ") + term;
      }
      // Guarantee the malfunction matters somewhere.
      if (cls == "Omission") cause += " OR fail";
      const bool conditional = uniform(rng) < config.condition_chance;
      b.annotate(block, cls + "-out", cause, /*description=*/"",
                 conditional ? 0.5 : 1.0);
    }

    // Wire the inputs from earlier sources (or, with loops enabled, from a
    // later block -- patched below once every block exists).
    for (const std::string& input : input_names) {
      const std::string& source =
          sources[static_cast<std::size_t>(pick(static_cast<int>(sources.size())))];
      const bool endpoint_is_inport =
          source.rfind("env", 0) == 0;
      b.connect(root, endpoint_is_inport ? source : source + ".out",
                name + "." + input);
    }
    sources.push_back(name);
    block_names.push_back(name);
  }

  // Optional feedback: an extra block whose input comes from the last
  // block and whose output feeds an extra input of an early block.
  if (config.with_loops && config.blocks >= 2) {
    Block& feedback = b.basic(root, "fb");
    b.in(feedback, "in");
    b.out(feedback, "out");
    annotate_stage(b, feedback, config.rate_min);
    b.connect(root, block_names.back() + ".out", "fb.in");
    Block& early = root.child(block_names.front());
    b.in(early, "loopback");
    b.connect(root, "fb.out", block_names.front() + ".loopback");
    // Make the loopback matter for the early block's omission.
    b.annotate(early, "Omission-out", "Omission-loopback AND fail");
  }

  b.outport(root, "sink");
  b.connect(root, block_names.back() + ".out", "sink");
  return b.take();
}

Model build_adversarial_product(int pairs) {
  require(pairs >= 1 && pairs <= 30, ErrorKind::kModel,
          "adversarial product needs 1..30 pairs");
  ModelBuilder b("adversarial_product");
  Block& root = b.root();
  Block& core = b.basic(root, "core");
  b.out(core, "out");
  // The spine (all a's) is a superset of the transversal {a1..an}, so
  // minimisation absorbs it -- it exists only to make depth-first
  // occurrence rank every a before every b.
  std::string spine;
  std::string product;
  for (int i = 1; i <= pairs; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string bn = "b" + std::to_string(i);
    b.malfunction(core, a, 1e-5, "primary failure " + std::to_string(i));
    b.malfunction(core, bn, 1e-5, "backup failure " + std::to_string(i));
    spine += (i == 1 ? "" : " AND ") + a;
    product += (i == 1 ? "(" : " AND (") + a + " OR " + bn + ")";
  }
  b.annotate(core, "Omission-out", "(" + spine + ") OR (" + product + ")");
  b.outport(root, "sink");
  b.connect(root, "core.out", "sink");
  return b.take();
}

Model build_adversarial_voters(int stages) {
  require(stages >= 1 && stages <= 12, ErrorKind::kModel,
          "adversarial voters need 1..12 stages");
  ModelBuilder b("adversarial_voters");
  Block& root = b.root();
  Block& core = b.basic(root, "core");
  b.out(core, "out");
  const char* roles[3] = {"x", "y", "z"};
  for (int i = 1; i <= stages; ++i)
    for (const char* role : roles)
      b.malfunction(core, role + std::to_string(i), 1e-5,
                    std::string("lane ") + role + " of stage " +
                        std::to_string(i));
  // Role-grouped spine (x1..xk y1..yk z1..zk): absorbed by any per-stage
  // pair set, but it pins the pathological occurrence order.
  std::string spine;
  for (const char* role : roles)
    for (int i = 1; i <= stages; ++i)
      spine += (spine.empty() ? "" : " AND ") + std::string(role) +
               std::to_string(i);
  std::string product;
  for (int i = 1; i <= stages; ++i) {
    const std::string x = "x" + std::to_string(i);
    const std::string y = "y" + std::to_string(i);
    const std::string z = "z" + std::to_string(i);
    product += (i == 1 ? "((" : " AND ((") + x + " AND " + y + ") OR (" + x +
               " AND " + z + ") OR (" + y + " AND " + z + "))";
  }
  b.annotate(core, "Omission-out", "(" + spine + ") OR (" + product + ")");
  b.outport(root, "sink");
  b.connect(root, "core.out", "sink");
  return b.take();
}

}  // namespace ftsynth::synthetic
