// Adaptive cruise control side of the SETTA demonstrator: radar sensor,
// ACC node (tracker + speed controller + bus tx) and the vehicle-speed
// sensing that closes the distributed cruise control loop.

#include "casestudy/internal.h"

namespace ftsynth::setta::detail {

void add_acc(ModelBuilder& b, const BbwConfig& config) {
  Block& root = b.root();

  // Radar environment and sensor.
  b.inport(root, "radar_scene");
  Block& radar = b.basic(root, "radar_sensor");
  radar.set_description("forward radar");
  b.in(radar, "scene");
  b.out(radar, "echo");
  b.malfunction(radar, "radar_blind", rates::kRadarBlind,
                "radar loses the target (blindness, weather)");
  b.malfunction(radar, "radar_ghost", rates::kRadarGhost,
                "radar reports a non-existent target");
  b.annotate(radar, "Omission-echo", "radar_blind OR Omission-scene");
  b.annotate(radar, "Value-echo", "Value-scene");
  b.annotate(radar, "Commission-echo", "radar_ghost OR Commission-scene",
             "a ghost target can trigger spurious braking");
  b.connect(root, "radar_scene", "radar_sensor.scene");

  // Vehicle speed sensor feeding the ACC (closes the outer loop).
  Block& vsensor = b.basic(root, "vspeed_sensor");
  vsensor.set_description("vehicle speed sensor for the ACC");
  b.in(vsensor, "v");
  b.out(vsensor, "speed");
  b.malfunction(vsensor, "vs_open", rates::kSensorOpen,
                "speed sensor open circuit");
  b.malfunction(vsensor, "vs_stuck", rates::kSensorStuck,
                "speed sensor stuck");
  b.annotate(vsensor, "Omission-speed", "vs_open OR Omission-v");
  b.annotate(vsensor, "Value-speed", "vs_stuck OR Value-v");
  b.connect(root, "vehicle.speed", "vspeed_sensor.v");

  // The ACC node (programmable, Renault part).
  Block& node = b.subsystem(root, "acc_node");
  node.set_description("adaptive cruise control node");
  const std::vector<std::string> outputs =
      config.buses >= 2 ? std::vector<std::string>{"request_a", "request_b"}
                        : std::vector<std::string>{"request_a"};
  b.inport(node, "radar");
  b.inport(node, "speed");

  Block& tracker = b.basic(node, "tracker");
  tracker.set_description("target tracking task");
  b.in(tracker, "radar");
  b.out(tracker, "target");
  b.malfunction(tracker, "tracker_defect", rates::kTaskDefect,
                "residual defect in the tracking filter");
  b.annotate(tracker, "Omission-target", "tracker_defect OR Omission-radar");
  b.annotate(tracker, "Value-target", "tracker_defect OR Value-radar");
  b.annotate(tracker, "Commission-target", "Commission-radar");
  b.connect(node, "radar", "tracker.radar");

  Block& ctrl = b.basic(node, "speed_ctrl");
  ctrl.set_description("distance / speed control law (distributed loop)");
  b.in(ctrl, "target");
  b.in(ctrl, "speed");
  b.out(ctrl, "request");
  b.malfunction(ctrl, "sc_defect", rates::kTaskDefect,
                "residual defect in the control law");
  b.annotate(ctrl, "Omission-request", "sc_defect OR Omission-target",
             "no target, no ACC braking request");
  b.annotate(ctrl, "Value-request",
             "sc_defect OR Value-target OR Value-speed");
  b.annotate(ctrl, "Commission-request",
             "sc_defect OR Commission-target OR Value-speed",
             "a wrong speed reading can raise a spurious request");
  b.connect(node, "tracker.target", "speed_ctrl.target");
  b.connect(node, "speed", "speed_ctrl.speed");

  // Scheduler + transmit task, as on the pedal node.
  Block& scheduler = b.basic(node, "acc_sched");
  scheduler.set_description("time-triggered dispatch of the ACC tx slot");
  b.out(scheduler, "tick");
  b.malfunction(scheduler, "sched_crash", rates::kTaskDefect,
                "scheduler task crash");
  b.malfunction(scheduler, "clock_drift", rates::kBusLate,
                "oscillator drift beyond the TT tolerance");
  b.annotate(scheduler, "Omission-tick", "sched_crash");
  b.annotate(scheduler, "Late-tick", "clock_drift");

  Block& tx = b.basic(node, "acc_tx");
  tx.set_description("broadcasts the ACC request on the buses");
  b.in(tx, "request");
  b.trigger(tx, "sched");
  b.malfunction(tx, "tx_defect", rates::kTaskDefect,
                "residual defect in the transmit task");
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const std::string frame = i == 0 ? "frame_a" : "frame_b";
    b.out(tx, frame);
    b.annotate(tx, "Omission-" + frame, "tx_defect OR Omission-request");
    b.annotate(tx, "Value-" + frame, "tx_defect OR Value-request");
    b.annotate(tx, "Late-" + frame, "Late-request OR Late-sched");
    b.annotate(tx, "Commission-" + frame, "Commission-request");
    b.outport(node, outputs[i]);
    b.connect(node, "acc_tx." + frame, outputs[i]);
  }
  b.connect(node, "speed_ctrl.request", "acc_tx.request");
  b.connect(node, "acc_sched.tick", "acc_tx.sched");

  // Hardware common cause of the ACC node (Figure 3).
  b.malfunction(node, "cpu_failure", rates::kCpu, "node processor failure");
  b.malfunction(node, "power_loss", rates::kPower, "node power supply loss");
  b.malfunction(node, "emi", rates::kEmi,
                "electromagnetic interference at the node");
  for (const std::string& output : outputs) {
    b.annotate(node, "Omission-" + output, "cpu_failure OR power_loss");
    b.annotate(node, "Value-" + output, "emi");
  }

  // Root wiring: sensors in, buses out, arbiter in.
  b.connect(root, "radar_sensor.echo", "acc_node.radar");
  b.connect(root, "vspeed_sensor.speed", "acc_node.speed");
  b.connect(root, "acc_node.request_a", "bus_a.acc_in");
  b.connect(root, "bus_a.acc_out", "pedal_node.acc_a");
  if (config.buses >= 2) {
    b.connect(root, "acc_node.request_b", "bus_b.acc_in");
    b.connect(root, "bus_b.acc_out", "pedal_node.acc_b");
  }
}

}  // namespace ftsynth::setta::detail
