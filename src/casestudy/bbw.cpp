// Brake-by-wire side of the SETTA demonstrator: pedal path, buses, wheel
// nodes, vehicle dynamics and the data-store diagnostics monitor.

#include <string>
#include <vector>

#include "casestudy/internal.h"

namespace ftsynth::setta {

std::vector<std::string> corners(int wheels) {
  static const std::vector<std::string> all{"fl", "fr", "rl", "rr"};
  return {all.begin(), all.begin() + wheels};
}

namespace detail {

namespace {

std::vector<std::string> bus_names(const BbwConfig& config) {
  std::vector<std::string> names{"bus_a"};
  if (config.buses >= 2) names.push_back("bus_b");
  return names;
}

/// The Figure 3 hardware common-cause analysis of a programmable node:
/// processor or power loss silences every output; EMI corrupts them.
void annotate_node_hardware(ModelBuilder& b, Block& node,
                            const std::vector<std::string>& outputs) {
  b.malfunction(node, "cpu_failure", rates::kCpu, "node processor failure");
  b.malfunction(node, "power_loss", rates::kPower, "node power supply loss");
  b.malfunction(node, "emi", rates::kEmi,
                "electromagnetic interference at the node");
  for (const std::string& output : outputs) {
    b.annotate(node, "Omission-" + output, "cpu_failure OR power_loss",
               "hardware failure silences the node");
    b.annotate(node, "Value-" + output, "emi",
               "EMI corrupts the node outputs");
  }
}

}  // namespace

void add_pedal_path(ModelBuilder& b, const BbwConfig& config) {
  Block& root = b.root();
  b.inport(root, "pedal_demand", FlowKind::kMaterial);

  // Redundant pedal sensors at root level (hardware, outside the node).
  for (int i = 1; i <= config.pedal_sensors; ++i) {
    Block& sensor = b.basic(root, "pedal_sensor_" + std::to_string(i));
    sensor.set_description("brake pedal position sensor " +
                           std::to_string(i));
    b.in(sensor, "demand", FlowKind::kMaterial);
    b.out(sensor, "signal");
    b.malfunction(sensor, "open_circuit", rates::kSensorOpen,
                  "sensor open circuit");
    b.malfunction(sensor, "stuck", rates::kSensorStuck,
                  "sensor stuck at last value");
    b.malfunction(sensor, "bias", rates::kSensorBias, "sensor bias drift");
    b.annotate(sensor, "Omission-signal", "open_circuit OR Omission-demand");
    b.annotate(sensor, "Value-signal", "stuck OR bias OR Value-demand");
    b.annotate(sensor, "Late-signal", "Late-demand");
    b.annotate(sensor, "Commission-signal", "Commission-demand");
    b.connect(root, "pedal_demand", "pedal_sensor_" + std::to_string(i) +
                                        ".demand");
  }

  // The pedal node (programmable, DaimlerChrysler part).
  Block& node = b.subsystem(root, "pedal_node");
  node.set_description("brake pedal node: voting, arbitration, bus tx");
  for (int i = 1; i <= config.pedal_sensors; ++i)
    b.inport(node, "s" + std::to_string(i));
  if (config.with_acc) {
    b.inport(node, "acc_a");
    if (config.buses >= 2) b.inport(node, "acc_b");
  }

  // Voter task (only with redundant sensors).
  std::string driver_source;  // endpoint feeding the arbiter's driver input
  if (config.pedal_sensors >= 3) {
    Block& voter = b.basic(node, "voter");
    voter.set_description("2-of-3 majority voter over the pedal sensors");
    b.in(voter, "s1");
    b.in(voter, "s2");
    b.in(voter, "s3");
    b.out(voter, "voted");
    b.malfunction(voter, "voter_defect", rates::kTaskDefect,
                  "residual defect in the voting logic");
    b.annotate(voter, "Omission-voted",
               "voter_defect OR (Omission-s1 AND Omission-s2) OR "
               "(Omission-s1 AND Omission-s3) OR "
               "(Omission-s2 AND Omission-s3)",
               "voting masks a single sensor loss");
    b.annotate(voter, "Value-voted",
               "voter_defect OR (Value-s1 AND Value-s2) OR "
               "(Value-s1 AND Value-s3) OR (Value-s2 AND Value-s3)",
               "voting masks a single wrong sensor");
    b.annotate(voter, "Late-voted", "Late-s1 AND Late-s2 AND Late-s3");
    b.annotate(voter, "Commission-voted",
               "(Commission-s1 AND Commission-s2) OR "
               "(Commission-s1 AND Commission-s3) OR "
               "(Commission-s2 AND Commission-s3)");
    for (int i = 1; i <= 3; ++i) {
      b.connect(node, "s" + std::to_string(i),
                "voter.s" + std::to_string(i));
    }
    driver_source = "voter.voted";
  } else {
    driver_source = "s1";
  }

  // Demand arbiter: driver demand has priority over ACC requests.
  Block& arbiter = b.basic(node, "arbiter");
  arbiter.set_description("arbitrates driver demand against ACC requests");
  b.in(arbiter, "driver");
  if (config.with_acc) {
    b.in(arbiter, "acc_a");
    if (config.buses >= 2) b.in(arbiter, "acc_b");
  }
  b.out(arbiter, "demand");
  b.malfunction(arbiter, "arbiter_defect", rates::kTaskDefect,
                "residual defect in the arbitration logic");
  b.annotate(arbiter, "Omission-demand", "arbiter_defect OR Omission-driver",
             "driver braking must never be lost");
  b.annotate(arbiter, "Value-demand", "arbiter_defect OR Value-driver");
  b.annotate(arbiter, "Late-demand", "Late-driver");
  {
    std::string commission = "arbiter_defect OR Commission-driver";
    if (config.with_acc) {
      commission += " OR Commission-acc_a";
      if (config.buses >= 2) commission += " OR Commission-acc_b";
    }
    b.annotate(arbiter, "Commission-demand", commission,
               "a spurious ACC request on either bus commands braking");
  }
  b.connect(node, driver_source, "arbiter.driver");
  if (config.with_acc) {
    b.connect(node, "acc_a", "arbiter.acc_a");
    if (config.buses >= 2) b.connect(node, "acc_b", "arbiter.acc_b");
  }

  // Time-triggered scheduler driving the transmit task.
  Block& scheduler = b.basic(node, "scheduler");
  scheduler.set_description("time-triggered dispatch of the tx slot");
  b.out(scheduler, "tick");
  b.malfunction(scheduler, "sched_crash", rates::kTaskDefect,
                "scheduler task crash");
  b.malfunction(scheduler, "clock_drift", rates::kBusLate,
                "oscillator drift beyond the TT tolerance");
  b.annotate(scheduler, "Omission-tick", "sched_crash");
  b.annotate(scheduler, "Late-tick", "clock_drift");

  // Bus transmit task (triggered).
  Block& tx = b.basic(node, "com_tx");
  tx.set_description("broadcasts the arbitrated demand on the buses");
  b.in(tx, "demand");
  b.trigger(tx, "sched");
  b.malfunction(tx, "tx_defect", rates::kTaskDefect,
                "residual defect in the transmit task");
  for (const std::string& suffix :
       config.buses >= 2 ? std::vector<std::string>{"a", "b"}
                         : std::vector<std::string>{"a"}) {
    const std::string frame = "frame_" + suffix;
    b.out(tx, frame);
    b.annotate(tx, "Omission-" + frame, "tx_defect OR Omission-demand");
    b.annotate(tx, "Value-" + frame, "tx_defect OR Value-demand");
    b.annotate(tx, "Late-" + frame, "Late-demand OR Late-sched",
               "a late dispatch slot delays the frame");
    b.annotate(tx, "Commission-" + frame, "Commission-demand");
    b.outport(node, "demand_" + suffix);
    b.connect(node, "com_tx." + frame, "demand_" + suffix);
  }
  b.connect(node, "arbiter.demand", "com_tx.demand");
  b.connect(node, "scheduler.tick", "com_tx.sched");

  // Hardware common cause of the pedal node (Figure 3): the node is a
  // single programmable unit, so its processor/power/EMI hit both frames.
  {
    std::vector<std::string> frames{"demand_a"};
    if (config.buses >= 2) frames.push_back("demand_b");
    annotate_node_hardware(b, node, frames);
  }

  // Sensors into the node.
  for (int i = 1; i <= config.pedal_sensors; ++i) {
    b.connect(root, "pedal_sensor_" + std::to_string(i) + ".signal",
              "pedal_node.s" + std::to_string(i));
  }
}

void add_buses(ModelBuilder& b, const BbwConfig& config) {
  Block& root = b.root();
  const std::vector<std::string> names = bus_names(config);
  for (std::size_t i = 0; i < names.size(); ++i) {
    Block& bus = b.basic(root, names[i]);
    bus.set_description("replicated time-triggered broadcast bus " +
                        names[i]);
    b.malfunction(bus, "bus_failure", rates::kBusFailure,
                  "bus medium or guardian failure");
    b.malfunction(bus, "corruption", rates::kBusCorrupt,
                  "undetected frame corruption");
    b.malfunction(bus, "overload", rates::kBusLate,
                  "slot overrun delays frames");
    std::vector<std::string> channels{"pedal"};
    if (config.with_acc) channels.push_back("acc");
    for (const std::string& channel : channels) {
      b.in(bus, channel + "_in");
      b.out(bus, channel + "_out");
      b.annotate(bus, "Omission-" + channel + "_out",
                 "bus_failure OR Omission-" + channel + "_in");
      b.annotate(bus, "Value-" + channel + "_out",
                 "corruption OR Value-" + channel + "_in");
      b.annotate(bus, "Late-" + channel + "_out",
                 "overload OR Late-" + channel + "_in");
      // The TT bus guardian prevents bus-generated commission: only an
      // upstream commission propagates.
      b.annotate(bus, "Commission-" + channel + "_out",
                 "Commission-" + channel + "_in");
    }
    const std::string suffix = i == 0 ? "a" : "b";
    b.connect(root, "pedal_node.demand_" + suffix, names[i] + ".pedal_in");
  }
}

void add_wheel(ModelBuilder& b, const BbwConfig& config,
               const std::string& corner) {
  Block& root = b.root();
  const std::vector<std::string> buses = bus_names(config);

  Block& node = b.subsystem(root, "wheel_" + corner);
  node.set_description("wheel brake node " + corner +
                       ": bus rx, control loop, PWM");
  annotate_node_hardware(b, node, {"force_cmd"});

  b.inport(node, "bus_a");
  if (config.buses >= 2) b.inport(node, "bus_b");
  b.inport(node, "speed");

  // Bus receive task: tolerates the loss of one bus, but a corrupted value
  // on either bus gets through (a deliberate weak area the analysis must
  // expose -- two buses can detect but not out-vote a value failure).
  Block& rx = b.basic(node, "com_rx");
  rx.set_description("receives the demand frames from the buses");
  b.in(rx, "a");
  if (config.buses >= 2) b.in(rx, "b");
  b.out(rx, "demand");
  b.malfunction(rx, "rx_defect", rates::kTaskDefect,
                "residual defect in the receive task");
  if (config.buses >= 2) {
    b.annotate(rx, "Omission-demand",
               "rx_defect OR (Omission-a AND Omission-b)",
               "replication masks a single bus loss");
    b.annotate(rx, "Value-demand", "rx_defect OR Value-a OR Value-b",
               "no voting across two buses: either corruption wins");
    b.annotate(rx, "Late-demand", "rx_defect OR (Late-a AND Late-b)");
    b.annotate(rx, "Commission-demand", "Commission-a OR Commission-b");
  } else {
    b.annotate(rx, "Omission-demand", "rx_defect OR Omission-a");
    b.annotate(rx, "Value-demand", "rx_defect OR Value-a");
    b.annotate(rx, "Late-demand", "rx_defect OR Late-a");
    b.annotate(rx, "Commission-demand", "Commission-a");
  }
  b.connect(node, "bus_a", "com_rx.a");
  if (config.buses >= 2) b.connect(node, "bus_b", "com_rx.b");

  // Brake controller: closed loop with the wheel speed.
  Block& ctrl = b.basic(node, "brake_ctrl");
  ctrl.set_description("wheel slip controller (local control loop)");
  b.in(ctrl, "demand");
  b.in(ctrl, "speed");
  b.out(ctrl, "cmd");
  b.malfunction(ctrl, "ctrl_defect", rates::kTaskDefect,
                "residual defect in the control law");
  b.annotate(ctrl, "Omission-cmd", "ctrl_defect OR Omission-demand");
  b.annotate(ctrl, "Value-cmd",
             "ctrl_defect OR Value-demand OR Value-speed",
             "corrupted feedback corrupts the actuation");
  b.annotate(ctrl, "Late-cmd", "Late-demand");
  b.annotate(ctrl, "Commission-cmd", "ctrl_defect OR Commission-demand");
  b.connect(node, "com_rx.demand", "brake_ctrl.demand");
  b.connect(node, "speed", "brake_ctrl.speed");

  // PWM driver.
  Block& pwm = b.basic(node, "pwm");
  pwm.set_description("PWM power stage driving the actuator");
  b.in(pwm, "cmd");
  b.out(pwm, "drive");
  b.malfunction(pwm, "pwm_defect", rates::kTaskDefect,
                "PWM stage fault");
  b.annotate(pwm, "Omission-drive", "pwm_defect OR Omission-cmd");
  b.annotate(pwm, "Value-drive", "pwm_defect OR Value-cmd");
  b.annotate(pwm, "Late-drive", "Late-cmd");
  b.annotate(pwm, "Commission-drive", "Commission-cmd");
  b.connect(node, "brake_ctrl.cmd", "pwm.cmd");

  // Diagnostics tap into the shared status store.
  if (config.with_monitor) {
    Block& status = b.basic(node, "status_tx");
    status.set_description("publishes the actuation status");
    b.in(status, "cmd");
    b.out(status, "status");
    b.malfunction(status, "stx_defect", rates::kTaskDefect,
                  "status task defect");
    b.annotate(status, "Omission-status", "stx_defect OR Omission-cmd");
    b.annotate(status, "Value-status", "stx_defect OR Value-cmd");
    b.store_write(node, "status_w", "wheel_status");
    b.connect(node, "brake_ctrl.cmd", "status_tx.cmd");
    b.connect(node, "status_tx.status", "status_w");
  }

  b.outport(node, "force_cmd");
  b.connect(node, "pwm.drive", "force_cmd");

  // Wire the buses in at root level.
  for (std::size_t i = 0; i < buses.size(); ++i) {
    const std::string port = i == 0 ? "bus_a" : "bus_b";
    b.connect(root, buses[i] + ".pedal_out", "wheel_" + corner + "." + port);
  }

  // The electromechanical actuator (Siemens part, root level).
  Block& actuator = b.basic(root, "actuator_" + corner);
  actuator.set_description("electromechanical brake actuator " + corner);
  b.in(actuator, "cmd");
  b.out(actuator, "force", FlowKind::kEnergy);
  b.malfunction(actuator, "jammed", rates::kActuatorJam,
                "actuator mechanically jammed");
  b.malfunction(actuator, "coil_open", rates::kActuatorCoil,
                "actuator coil open circuit");
  b.annotate(actuator, "Omission-force",
             "jammed OR coil_open OR Omission-cmd");
  b.annotate(actuator, "Value-force", "Value-cmd");
  b.annotate(actuator, "Late-force", "Late-cmd");
  b.annotate(actuator, "Commission-force", "Commission-cmd",
             "unintended braking at this wheel");
  b.connect(root, "wheel_" + corner + ".force_cmd",
            "actuator_" + corner + ".cmd");

  // Boundary output: braking at this wheel.
  b.outport(root, "brake_force_" + corner, FlowKind::kEnergy);
  b.connect(root, "actuator_" + corner + ".force",
            "brake_force_" + corner);
}

void add_vehicle(ModelBuilder& b, const BbwConfig& config) {
  Block& root = b.root();
  const std::vector<std::string> names = corners(config.wheels);

  // Brake forces mux into the vehicle dynamics.
  b.mux(root, "force_mux", config.wheels, FlowKind::kEnergy);
  for (std::size_t i = 0; i < names.size(); ++i) {
    b.connect(root, "actuator_" + names[i] + ".force",
              "force_mux.in" + std::to_string(i + 1));
  }

  b.inport(root, "road_load", FlowKind::kEnergy);

  Block& vehicle = b.basic(root, "vehicle");
  vehicle.set_description(
      "longitudinal vehicle dynamics (executable plant model)");
  b.in(vehicle, "forces", FlowKind::kEnergy, config.wheels);
  b.in(vehicle, "road", FlowKind::kEnergy);
  b.out(vehicle, "wheel_speeds", FlowKind::kData, config.wheels);
  b.out(vehicle, "speed");
  b.malfunction(vehicle, "wheel_lock", rates::kWheelLock,
                "mechanical wheel/bearing fault");
  // Physics: any braking misbehaviour shows up in the measured speeds.
  b.annotate(vehicle, "Value-wheel_speeds",
             "wheel_lock OR Value-forces OR Commission-forces OR "
             "Omission-forces OR Value-road");
  b.annotate(vehicle, "Value-speed",
             "wheel_lock OR Value-forces OR Commission-forces OR "
             "Omission-forces OR Value-road");
  b.connect(root, "force_mux.out", "vehicle.forces");
  b.connect(root, "road_load", "vehicle.road");

  // Wheel speed sensing back into the wheel nodes (closes the loops).
  b.demux(root, "speed_demux", config.wheels);
  b.connect(root, "vehicle.wheel_speeds", "speed_demux.in");
  for (std::size_t i = 0; i < names.size(); ++i) {
    Block& sensor = b.basic(root, "speed_sensor_" + names[i]);
    sensor.set_description("wheel speed sensor " + names[i]);
    b.in(sensor, "ws");
    b.out(sensor, "speed");
    b.malfunction(sensor, "sensor_open", rates::kSensorOpen,
                  "speed sensor open circuit");
    b.malfunction(sensor, "sensor_stuck", rates::kSensorStuck,
                  "speed sensor stuck");
    b.annotate(sensor, "Omission-speed", "sensor_open OR Omission-ws");
    b.annotate(sensor, "Value-speed", "sensor_stuck OR Value-ws");
    b.connect(root, "speed_demux.out" + std::to_string(i + 1),
              "speed_sensor_" + names[i] + ".ws");
    b.connect(root, "speed_sensor_" + names[i] + ".speed",
              "wheel_" + names[i] + ".speed");
  }

  // Vehicle speed is also a system observation point.
  b.outport(root, "vehicle_speed");
  b.connect(root, "vehicle.speed", "vehicle_speed");

  // Hazard observer for the catastrophic event: loss of the braking
  // *function* needs every wheel lost simultaneously, while unintended
  // braking at any single wheel is already hazardous. This is where the
  // baseline's shared pedal path / single bus shows up as a common cause
  // that defeats all four "independent" wheel channels.
  Block& integrity = b.basic(root, "brake_integrity");
  integrity.set_description("observer for the vehicle-level braking hazard");
  std::string all_lost;
  std::string any_spurious;
  std::string any_wrong;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string port = "f" + std::to_string(i + 1);
    b.in(integrity, port, FlowKind::kEnergy);
    b.connect(root, "actuator_" + names[i] + ".force",
              "brake_integrity." + port);
    all_lost += (i == 0 ? "" : " AND ") + ("Omission-" + port);
    any_spurious += (i == 0 ? "" : " OR ") + ("Commission-" + port);
    any_wrong += (i == 0 ? "" : " OR ") + ("Value-" + port);
  }
  b.out(integrity, "braking", FlowKind::kEnergy);
  b.annotate(integrity, "Omission-braking", all_lost,
             "total loss of braking: every wheel lost");
  b.annotate(integrity, "Commission-braking", any_spurious,
             "unintended braking at any wheel");
  b.annotate(integrity, "Value-braking", any_wrong);
  b.outport(root, "total_braking", FlowKind::kEnergy);
  b.connect(root, "brake_integrity.braking", "total_braking");
}

void add_monitor(ModelBuilder& b, const BbwConfig& config) {
  (void)config;
  Block& root = b.root();
  b.store_read(root, "status_read", "wheel_status");
  Block& monitor = b.basic(root, "monitor");
  monitor.set_description("diagnostics monitor driving the warning lamp");
  b.in(monitor, "status");
  b.out(monitor, "lamp");
  b.malfunction(monitor, "mon_defect", rates::kTaskDefect,
                "monitor task defect");
  b.annotate(monitor, "Omission-lamp", "mon_defect OR Omission-status");
  b.annotate(monitor, "Value-lamp", "mon_defect OR Value-status");
  b.connect(root, "status_read", "monitor.status");
  b.outport(root, "warning_lamp");
  b.connect(root, "monitor.lamp", "warning_lamp");
}

}  // namespace detail
}  // namespace ftsynth::setta
