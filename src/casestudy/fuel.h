// Second demonstrator: a dual-redundant aircraft fuel delivery system.
//
// The paper positions the method as general across industries (section 1);
// fuel systems are the classic HiP-HOPS material-flow example and exercise
// the parts of the method the automotive BBW study does not emphasise:
// material flows end to end, a shared electrical bus feeding both pump
// channels (common cause across redundancy), and a programmable controller
// whose command omissions close valves.
//
// Architecture:
//
//   refuel ──► main_tank ──► main_valve ──► main_pump ─┐
//          └─► reserve_tank► reserve_valve► standby_pump┴► selector ─► engine_feed
//                                              ▲  ▲ power_bus (shared!)
//   controller (programmable):
//     level sensors + flow meter in, valve commands + low-fuel warning out;
//     the flow meter taps the engine feed -- a control loop.

#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace ftsynth::fuel {

/// Representative failure rates, failures/hour.
namespace rates {
inline constexpr double kTankLeak = 2e-6;
inline constexpr double kContamination = 5e-6;
inline constexpr double kValveStuckClosed = 4e-6;
inline constexpr double kValveStuckOpen = 1e-6;
inline constexpr double kPumpSeized = 8e-6;
inline constexpr double kPumpCavitation = 3e-6;
inline constexpr double kPowerBus = 1e-6;
inline constexpr double kSelectorJam = 5e-7;
inline constexpr double kMeterFault = 2e-6;
inline constexpr double kLevelSensor = 4e-6;
inline constexpr double kCpu = 2e-6;
inline constexpr double kEmi = 1e-7;
inline constexpr double kTaskDefect = 1e-7;
}  // namespace rates

struct FuelConfig {
  /// With the reserve chain (tank + valve + standby pump); false gives the
  /// single-chain baseline for the design-iteration comparison.
  bool with_reserve = true;
};

/// Builds and validates the model ("fuel"). Stable paths for tests:
/// "fuel/main_pump", "fuel/power_bus", "fuel/controller/valve_logic", ...
Model build_fuel_system(const FuelConfig& config = {});

/// Hazardous top events: fuel starvation, contaminated feed, lost warning.
std::vector<std::string> fuel_top_events(const FuelConfig& config = {});

}  // namespace ftsynth::fuel
