// The SETTA demonstrator: a prototypical distributed brake-by-wire (BBW)
// and adaptive cruise control (ACC) system for cars -- the paper's
// demonstration platform (section 4).
//
// Architecture modelled (paper description in brackets):
//   * a brake pedal node [DaimlerChrysler pedal] with redundant pedal
//     sensors, a voter task, a demand arbiter (driver vs ACC) and a bus
//     transmit task driven by a time-triggered scheduler (trigger port);
//   * four wheel nodes [Siemens actuator] each with bus receivers on both
//     buses, a brake controller in a local control loop with the wheel,
//     a PWM driver, and an electromechanical actuator;
//   * an ACC node [Renault vehicle dynamics] with a radar tracker and a
//     speed controller closed around the vehicle dynamics -- the second
//     distributed control loop;
//   * two replicated time-triggered buses carrying both pedal and ACC
//     traffic [TTP over two replicated busses];
//   * vehicle dynamics closing both loops, and a diagnostics monitor fed
//     through a data store (exercises implicit communication).
//
// Every programmable node is a subsystem carrying its own hardware
// common-cause analysis (CPU, power supply, EMI) in the Figure 3 style,
// with the software tasks analysed individually inside.
//
// Failure rates: the real SETTA data is proprietary; the values in
// `rates` are representative automotive figures (1e-8..1e-5 f/h band)
// and are the single source used everywhere (see DESIGN.md substitutions).

#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace ftsynth::setta {

/// Representative failure rates, failures/hour.
namespace rates {
inline constexpr double kCpu = 2e-6;           ///< node processor failure
inline constexpr double kPower = 5e-7;         ///< node power supply loss
inline constexpr double kEmi = 1e-7;           ///< EMI corrupting node outputs
inline constexpr double kBusFailure = 1e-6;    ///< bus medium / guardian dead
inline constexpr double kBusCorrupt = 2e-7;    ///< undetected frame corruption
inline constexpr double kBusLate = 5e-7;       ///< schedule overrun
inline constexpr double kSensorStuck = 1e-5;   ///< pedal sensor stuck
inline constexpr double kSensorBias = 2e-6;    ///< pedal sensor bias
inline constexpr double kSensorOpen = 3e-6;    ///< sensor open circuit
inline constexpr double kRadarBlind = 8e-6;    ///< radar loses the target
inline constexpr double kRadarGhost = 1e-6;    ///< radar invents a target
inline constexpr double kActuatorJam = 3e-6;   ///< brake actuator jammed
inline constexpr double kActuatorCoil = 1e-6;  ///< actuator coil open
inline constexpr double kTaskDefect = 1e-7;    ///< residual software defect
inline constexpr double kWheelLock = 1e-6;     ///< mechanical wheel fault
}  // namespace rates

/// Architecture configuration; the defaults build the full replicated
/// SETTA design. The design-iteration experiment (E7) compares this
/// against the single-channel baseline.
struct BbwConfig {
  int pedal_sensors = 3;    ///< 1 (baseline) or 3 (voted)
  int buses = 2;            ///< 1 (baseline) or 2 (replicated)
  int wheels = 4;
  bool with_acc = true;     ///< include the ACC node and vehicle loop
  bool with_monitor = true; ///< data-store diagnostics and warning lamp
};

/// Builds and validates the model. Block paths are stable API for tests
/// (e.g. "bbw/pedal_node/voter", "bbw/wheel_fl/actuator").
Model build_bbw(const BbwConfig& config = {});

/// The baseline before the design iteration: one pedal sensor, one bus.
Model build_bbw_single_channel();

/// Hazardous top events for the analysis, in "Class-port" notation, e.g.
/// "Omission-brake_force_fl" (loss of braking at the front-left wheel).
std::vector<std::string> bbw_top_events(const BbwConfig& config = {});

/// The wheel corners used for a given wheel count ("fl", "fr", "rl", "rr").
std::vector<std::string> corners(int wheels);

}  // namespace ftsynth::setta
