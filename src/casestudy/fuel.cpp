#include "casestudy/fuel.h"

#include "model/builder.h"

namespace ftsynth::fuel {

namespace {

/// A tank: refuel line in, fuel out. A leak empties it; contamination
/// corrupts the fuel quality.
void add_tank(ModelBuilder& b, const std::string& name) {
  Block& tank = b.basic(b.root(), name);
  tank.set_description("fuel tank " + name);
  b.in(tank, "refill", FlowKind::kMaterial);
  b.out(tank, "fuel", FlowKind::kMaterial);
  b.malfunction(tank, "leak", rates::kTankLeak, "tank leak empties it");
  b.malfunction(tank, "contaminated", rates::kContamination,
                "water / debris in the tank");
  b.annotate(tank, "Omission-fuel", "leak OR Omission-refill");
  b.annotate(tank, "Value-fuel", "contaminated OR Value-refill");
}

/// A motorised valve: fuel in, command in, fuel out. No command = closed.
void add_valve(ModelBuilder& b, const std::string& name) {
  Block& valve = b.basic(b.root(), name);
  valve.set_description("motorised shutoff valve " + name);
  b.in(valve, "fuel", FlowKind::kMaterial);
  b.in(valve, "cmd");
  b.out(valve, "out", FlowKind::kMaterial);
  b.malfunction(valve, "stuck_closed", rates::kValveStuckClosed,
                "valve seized closed");
  b.malfunction(valve, "stuck_open", rates::kValveStuckOpen,
                "valve seized open");
  b.annotate(valve, "Omission-out",
             "stuck_closed OR Omission-fuel OR Omission-cmd",
             "a lost command closes the valve");
  b.annotate(valve, "Value-out", "Value-fuel");
  b.annotate(valve, "Commission-out", "stuck_open AND Commission-cmd",
             "flow when it should be shut off");
}

/// A pump: fuel in, electrical power in, pressurised flow out.
void add_pump(ModelBuilder& b, const std::string& name) {
  Block& pump = b.basic(b.root(), name);
  pump.set_description("fuel pump " + name);
  b.in(pump, "fuel", FlowKind::kMaterial);
  b.in(pump, "power", FlowKind::kEnergy);
  b.out(pump, "flow", FlowKind::kMaterial);
  b.malfunction(pump, "seized", rates::kPumpSeized, "pump seized");
  b.malfunction(pump, "cavitation", rates::kPumpCavitation,
                "cavitation degrades delivery");
  b.annotate(pump, "Omission-flow",
             "seized OR Omission-fuel OR Omission-power");
  b.annotate(pump, "Value-flow", "cavitation OR Value-fuel");
}

}  // namespace

Model build_fuel_system(const FuelConfig& config) {
  ModelBuilder b("fuel");
  Block& root = b.root();

  b.inport(root, "refuel", FlowKind::kMaterial);

  // Supply chains.
  add_tank(b, "main_tank");
  add_valve(b, "main_valve");
  add_pump(b, "main_pump");
  b.connect(root, "refuel", "main_tank.refill");
  b.connect(root, "main_tank.fuel", "main_valve.fuel");
  b.connect(root, "main_valve.out", "main_pump.fuel");
  if (config.with_reserve) {
    add_tank(b, "reserve_tank");
    add_valve(b, "reserve_valve");
    add_pump(b, "standby_pump");
    b.connect(root, "refuel", "reserve_tank.refill");
    b.connect(root, "reserve_tank.fuel", "reserve_valve.fuel");
    b.connect(root, "reserve_valve.out", "standby_pump.fuel");
  }

  // The shared electrical bus -- the common cause across the redundancy.
  Block& power = b.basic(root, "power_bus");
  power.set_description("28 V DC bus feeding both pumps");
  b.out(power, "rail", FlowKind::kEnergy);
  b.malfunction(power, "bus_fault", rates::kPowerBus,
                "electrical bus failure");
  b.annotate(power, "Omission-rail", "bus_fault");
  b.connect(root, "power_bus.rail", "main_pump.power");
  if (config.with_reserve)
    b.connect(root, "power_bus.rail", "standby_pump.power");

  // Selector: feeds the engine from whichever pump delivers.
  Block& selector = b.basic(root, "selector");
  selector.set_description("shuttle valve selecting the live pump");
  b.in(selector, "main", FlowKind::kMaterial);
  if (config.with_reserve) b.in(selector, "standby", FlowKind::kMaterial);
  b.out(selector, "feed", FlowKind::kMaterial);
  b.malfunction(selector, "jammed", rates::kSelectorJam,
                "shuttle valve jammed");
  if (config.with_reserve) {
    b.annotate(selector, "Omission-feed",
               "jammed OR (Omission-main AND Omission-standby)",
               "either chain keeps the engine fed");
    b.annotate(selector, "Value-feed", "Value-main OR Value-standby");
  } else {
    b.annotate(selector, "Omission-feed", "jammed OR Omission-main");
    b.annotate(selector, "Value-feed", "Value-main");
  }
  b.connect(root, "main_pump.flow", "selector.main");
  if (config.with_reserve)
    b.connect(root, "standby_pump.flow", "selector.standby");

  // Instrumentation.
  Block& meter = b.basic(root, "flow_meter");
  meter.set_description("engine feed flow meter");
  b.in(meter, "feed", FlowKind::kMaterial);
  b.out(meter, "reading");
  b.malfunction(meter, "meter_fault", rates::kMeterFault,
                "flow meter fault");
  b.annotate(meter, "Omission-reading", "meter_fault OR Omission-feed");
  b.annotate(meter, "Value-reading",
             "meter_fault OR Value-feed OR Omission-feed",
             "starvation reads as an (incorrect) zero-flow value");
  b.connect(root, "selector.feed", "flow_meter.feed");

  auto add_level_sensor = [&](const std::string& name,
                              const std::string& tank) {
    Block& sensor = b.basic(root, name);
    sensor.set_description("level sensor on " + tank);
    b.in(sensor, "fuel", FlowKind::kMaterial);
    b.out(sensor, "level");
    b.malfunction(sensor, "sensor_fault", rates::kLevelSensor,
                  "level sensor fault");
    b.annotate(sensor, "Omission-level", "sensor_fault");
    b.annotate(sensor, "Value-level", "sensor_fault OR Omission-fuel",
               "an empty tank reads like a sensor deviation");
    b.connect(root, tank + ".fuel", name + ".fuel");
  };
  add_level_sensor("level_main", "main_tank");
  if (config.with_reserve) add_level_sensor("level_reserve", "reserve_tank");

  // The programmable fuel controller (Figure 3 node).
  Block& controller = b.subsystem(root, "controller");
  controller.set_description("fuel management controller");
  b.inport(controller, "flow");
  b.inport(controller, "lvl_main");
  if (config.with_reserve) b.inport(controller, "lvl_reserve");

  Block& monitor = b.basic(controller, "level_monitor");
  monitor.set_description("tank level monitoring task");
  b.in(monitor, "m");
  if (config.with_reserve) b.in(monitor, "r");
  b.out(monitor, "status");
  b.malfunction(monitor, "mon_defect", rates::kTaskDefect);
  {
    std::string omission = "mon_defect OR Omission-m";
    std::string value = "mon_defect OR Value-m";
    if (config.with_reserve) {
      omission += " OR Omission-r";
      value += " OR Value-r";
    }
    b.annotate(monitor, "Omission-status", omission);
    b.annotate(monitor, "Value-status", value);
  }
  b.connect(controller, "lvl_main", "level_monitor.m");
  if (config.with_reserve)
    b.connect(controller, "lvl_reserve", "level_monitor.r");

  Block& logic = b.basic(controller, "valve_logic");
  logic.set_description("valve scheduling against flow demand");
  b.in(logic, "flow");
  b.in(logic, "status");
  b.out(logic, "cmd_main");
  if (config.with_reserve) b.out(logic, "cmd_reserve");
  b.out(logic, "warning");
  b.malfunction(logic, "logic_defect", rates::kTaskDefect);
  for (const char* cmd : {"cmd_main", "cmd_reserve"}) {
    if (!config.with_reserve && std::string(cmd) == "cmd_reserve") continue;
    b.annotate(logic, std::string("Omission-") + cmd,
               "logic_defect OR (Value-status AND Value-flow)",
               "the logic shuts a valve only when level AND flow agree on "
               "an anomaly -- the flow reading closes a control loop");
    b.annotate(logic, std::string("Commission-") + cmd, "logic_defect");
  }
  b.annotate(logic, "Omission-warning",
             "logic_defect OR Omission-status");
  b.annotate(logic, "Value-warning", "Value-status OR Value-flow");
  b.connect(controller, "flow", "valve_logic.flow");
  b.connect(controller, "level_monitor.status", "valve_logic.status");

  b.outport(controller, "main_cmd");
  b.connect(controller, "valve_logic.cmd_main", "main_cmd");
  if (config.with_reserve) {
    b.outport(controller, "reserve_cmd");
    b.connect(controller, "valve_logic.cmd_reserve", "reserve_cmd");
  }
  b.outport(controller, "warn");
  b.connect(controller, "valve_logic.warning", "warn");

  // Controller hardware common cause (Figure 3).
  b.malfunction(controller, "cpu_failure", rates::kCpu,
                "controller processor failure");
  b.malfunction(controller, "emi", rates::kEmi,
                "interference at the controller");
  b.annotate(controller, "Omission-main_cmd", "cpu_failure");
  if (config.with_reserve)
    b.annotate(controller, "Omission-reserve_cmd", "cpu_failure");
  b.annotate(controller, "Omission-warn", "cpu_failure");
  b.annotate(controller, "Value-warn", "emi");

  // Root wiring: sensors in, commands out (closing the loop).
  b.connect(root, "flow_meter.reading", "controller.flow");
  b.connect(root, "level_main.level", "controller.lvl_main");
  if (config.with_reserve)
    b.connect(root, "level_reserve.level", "controller.lvl_reserve");
  b.connect(root, "controller.main_cmd", "main_valve.cmd");
  if (config.with_reserve)
    b.connect(root, "controller.reserve_cmd", "reserve_valve.cmd");

  // System outputs.
  b.outport(root, "engine_feed", FlowKind::kMaterial);
  b.connect(root, "selector.feed", "engine_feed");
  b.outport(root, "low_fuel_warning");
  b.connect(root, "controller.warn", "low_fuel_warning");

  return b.take();
}

std::vector<std::string> fuel_top_events(const FuelConfig&) {
  return {"Omission-engine_feed", "Value-engine_feed",
          "Omission-low_fuel_warning"};
}

}  // namespace ftsynth::fuel
