// Internal composition helpers shared between the SETTA case-study
// translation units (bbw.cpp, acc.cpp, setta.cpp). Not installed API.

#pragma once

#include "casestudy/setta.h"
#include "model/builder.h"

namespace ftsynth::setta::detail {

/// Pedal sensors (root level) + the pedal node subsystem (voter, arbiter,
/// scheduler-triggered bus transmit). Adds the root inport "pedal_demand".
void add_pedal_path(ModelBuilder& b, const BbwConfig& config);

/// The replicated time-triggered buses "bus_a" / "bus_b" (root level).
/// Wires pedal_node outputs in; wheel/acc wiring is done by the callers.
void add_buses(ModelBuilder& b, const BbwConfig& config);

/// One wheel node subsystem + its actuator (root level) for `corner`.
void add_wheel(ModelBuilder& b, const BbwConfig& config,
               const std::string& corner);

/// Vehicle dynamics, the force mux and the wheel-speed demux + per-corner
/// speed sensors; closes the local brake control loops.
void add_vehicle(ModelBuilder& b, const BbwConfig& config);

/// The ACC node, radar sensor and vehicle-speed sensor; closes the
/// distributed cruise control loop. Requires add_buses and add_vehicle.
void add_acc(ModelBuilder& b, const BbwConfig& config);

/// Data-store diagnostics: store reader + monitor + warning lamp outport.
void add_monitor(ModelBuilder& b, const BbwConfig& config);

}  // namespace ftsynth::setta::detail
