// Assembly of the SETTA brake-by-wire / ACC demonstrator.

#include "casestudy/setta.h"

#include "casestudy/internal.h"
#include "core/error.h"

namespace ftsynth::setta {

Model build_bbw(const BbwConfig& config) {
  require(config.pedal_sensors == 1 || config.pedal_sensors == 3,
          ErrorKind::kModel, "BbwConfig::pedal_sensors must be 1 or 3");
  require(config.buses == 1 || config.buses == 2, ErrorKind::kModel,
          "BbwConfig::buses must be 1 or 2");
  require(config.wheels >= 1 && config.wheels <= 4, ErrorKind::kModel,
          "BbwConfig::wheels must be 1..4");

  ModelBuilder b("bbw");
  detail::add_pedal_path(b, config);
  detail::add_buses(b, config);
  for (const std::string& corner : corners(config.wheels))
    detail::add_wheel(b, config, corner);
  detail::add_vehicle(b, config);
  if (config.with_acc) detail::add_acc(b, config);
  if (config.with_monitor) detail::add_monitor(b, config);
  return b.take();
}

Model build_bbw_single_channel() {
  BbwConfig config;
  config.pedal_sensors = 1;
  config.buses = 1;
  return build_bbw(config);
}

std::vector<std::string> bbw_top_events(const BbwConfig& config) {
  std::vector<std::string> tops;
  for (const std::string& corner : corners(config.wheels)) {
    tops.push_back("Omission-brake_force_" + corner);
    tops.push_back("Commission-brake_force_" + corner);
    tops.push_back("Value-brake_force_" + corner);
  }
  tops.push_back("Omission-total_braking");
  tops.push_back("Commission-total_braking");
  tops.push_back("Value-vehicle_speed");
  if (config.with_monitor) tops.push_back("Omission-warning_lamp");
  return tops;
}

}  // namespace ftsynth::setta
