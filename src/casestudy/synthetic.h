// Synthetic model generators.
//
// The paper claims "there are no restrictions imposed on the size of the
// model" (section 3) and aims to show the tool "can operate on a complex
// Simulink model and synthesise a large fault tree" (section 4, aim 2).
// These parametric generators produce models of controlled size and shape
// for the scalability benchmarks, the memoisation ablation and the
// property-based validation tests. All generators are deterministic for a
// given configuration.

#pragma once

#include "model/model.h"

namespace ftsynth::synthetic {

/// A linear pipeline: inport -> b1 -> ... -> bN -> outport. Each stage has
/// one malfunction and propagates Omission/Value from its input. Synthesis
/// cost must grow linearly in `length`.
Model build_chain(int length);

/// Nested subsystems `depth` deep, each wrapping a `width`-stage chain.
/// Exercises boundary crossing; synthesis cost linear in depth * width.
Model build_deep(int depth, int width = 2);

/// A diamond ladder: stage i reads the previous stage through BOTH of its
/// two inputs. With memoisation the tree is a linear DAG; without it the
/// expansion doubles per stage (2^depth) -- the ablation of DESIGN.md
/// decision 1.
Model build_diamond(int depth);

/// `channels` replicated lanes processing one shared source, voted at the
/// end (omission needs every lane lost: an AND). The shared source and the
/// shared power block are the common causes the analysis must expose.
struct ReplicatedConfig {
  int channels = 3;
  int stages = 4;          ///< blocks per lane
  bool shared_power = true;
};
Model build_replicated(const ReplicatedConfig& config);

/// A random layered DAG of annotated basic blocks, for property testing
/// against forward simulation. Monotone annotations only (no NOT), fully
/// quantified malfunctions.
struct RandomModelConfig {
  unsigned seed = 1;
  int blocks = 10;
  int inports = 2;
  int max_fanin = 2;        ///< inputs per block (>= 1)
  bool with_loops = false;  ///< allow feedback edges
  double and_probability = 0.3;  ///< chance a cause term is a 2-atom AND
  double rate_min = 1e-4;   ///< malfunction rate band (f/h); high on
  double rate_max = 1e-2;   ///< purpose so Monte Carlo sees events
  /// Chance that a block's cause row is data-dependent (condition
  /// probability 0.5) -- exercises the conditional-row extension.
  double condition_chance = 0.0;
  /// Chance that a cause term is a 2-of-3 VOTE over random atoms.
  double vote_chance = 0.0;
};
Model build_random(const RandomModelConfig& config);

/// Adversarial-ORDER models: one block whose cause expression forces the
/// static DFS-occurrence variable order (analysis/ordering.h) into its
/// worst case for the decision-diagram engines, while a good order (which
/// sifting finds) keeps the diagram linear. The minimal cut sets of
/// Omission-sink are the transversals of (a1+b1)(a2+b2)...(an+bn): 2^n sets
/// of size n. The cause leads with the absorbed spine a1 AND ... AND an so
/// depth-first occurrence GROUPS the order (all a's, then all b's --
/// exponential diagram) where the interleaved order a1 b1 a2 b2 ... is
/// linear.
Model build_adversarial_product(int pairs);

/// Same idea over `stages` 2-out-of-3 voter triples (x_i, y_i, z_i): the
/// minimal family is the product of per-stage pair families {x y, x z, y z}
/// -- 3^stages sets -- and the absorbed spine forces the role-grouped order
/// (all x's, all y's, all z's), which must remember every stage's choice at
/// once; the per-stage interleaving sifting recovers is linear.
Model build_adversarial_voters(int stages);

}  // namespace ftsynth::synthetic
