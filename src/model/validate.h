// Structural validation of models.
//
// Catches malformed models before synthesis: dangling inputs, flow or
// width mismatches on connections, inconsistent inport/outport proxies,
// mux/demux arithmetic errors, and annotations that reference ports or
// malfunctions the block does not have.

#pragma once

#include <string>
#include <vector>

#include "core/diagnostics.h"
#include "model/model.h"

namespace ftsynth {

// Severity lives in core/diagnostics.h; validation issues share the scale
// with pipeline diagnostics.

struct Issue {
  Severity severity;
  std::string block_path;  ///< block the issue is anchored at
  std::string message;

  std::string to_string() const;
};

/// Runs every structural check; returns all findings (empty == clean).
std::vector<Issue> validate(const Model& model);

/// Throws ErrorKind::kModel listing every kError finding; warnings are
/// ignored. No-op on a clean model.
void validate_or_throw(const Model& model);

}  // namespace ftsynth
