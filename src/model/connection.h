// A connection (Simulink "line") from an output port to an input port of
// sibling blocks. Stored in the enclosing subsystem; holds non-owning
// pointers into the port storage of the connected blocks.

#pragma once

namespace ftsynth {

class Port;

struct Connection {
  Port* from = nullptr;  ///< source: an output port
  Port* to = nullptr;    ///< destination: an input port
};

}  // namespace ftsynth
