// ModelBuilder -- the ergonomic construction API for models.
//
// Mirrors what the paper's Simulink-extension editor produces: blocks,
// hierarchy, lines, plus hazard-analysis annotations parsed from the
// Figure 2 notation. Example:
//
//   ModelBuilder b("plant");
//   Block& sys = b.root();
//   b.inport(sys, "setpoint");
//   Block& ctrl = b.basic(sys, "controller");
//   b.in(ctrl, "sp");
//   b.out(ctrl, "cmd");
//   b.malfunction(ctrl, "cpu_dead", 1e-6, "processor failure");
//   b.annotate(ctrl, "Omission-cmd", "Omission-sp OR cpu_dead");
//   b.outport(sys, "command");
//   b.connect(sys, "setpoint", "controller.sp");
//   b.connect(sys, "controller.cmd", "command");
//   Model model = b.take();

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/model.h"

namespace ftsynth {

class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name) : model_(std::move(name)) {}

  Model& model() noexcept { return model_; }
  Block& root() noexcept { return model_.root(); }
  FailureClassRegistry& registry() noexcept { return model_.registry(); }

  // -- Blocks ------------------------------------------------------------------

  Block& basic(Block& parent, std::string_view name);
  Block& subsystem(Block& parent, std::string_view name);

  /// Adds an Inport proxy child (output port "out") and the matching
  /// boundary input port `name` on `parent` itself.
  Block& inport(Block& parent, std::string_view name,
                FlowKind flow = FlowKind::kData, int width = 1);

  /// Adds an Outport proxy child (input port "in") and the matching
  /// boundary output port `name` on `parent` itself.
  Block& outport(Block& parent, std::string_view name,
                 FlowKind flow = FlowKind::kData, int width = 1);

  /// Mux with inputs in1..inN of the given widths (all 1 when `widths` is
  /// just a count) and output "out" of the summed width.
  Block& mux(Block& parent, std::string_view name, int n_inputs,
             FlowKind flow = FlowKind::kData);
  Block& mux(Block& parent, std::string_view name,
             const std::vector<int>& widths, FlowKind flow = FlowKind::kData);

  /// Demux with input "in" of the summed width and outputs out1..outN.
  Block& demux(Block& parent, std::string_view name, int n_outputs,
               FlowKind flow = FlowKind::kData);
  Block& demux(Block& parent, std::string_view name,
               const std::vector<int>& widths,
               FlowKind flow = FlowKind::kData);

  /// DataStoreWrite block (input "in") writing `store`.
  Block& store_write(Block& parent, std::string_view name,
                     std::string_view store);
  /// DataStoreRead block (output "out") reading `store`.
  Block& store_read(Block& parent, std::string_view name,
                    std::string_view store);

  /// Ground source (output "out"): a flow that never deviates; used to
  /// terminate inputs deliberately left unconnected.
  Block& ground(Block& parent, std::string_view name);

  // -- Ports -------------------------------------------------------------------

  Port& in(Block& block, std::string_view name,
           FlowKind flow = FlowKind::kData, int width = 1);
  Port& out(Block& block, std::string_view name,
            FlowKind flow = FlowKind::kData, int width = 1);
  /// Trigger (control) input: by default its omission is synthesised as a
  /// cause of omission of every output of `block`.
  Port& trigger(Block& block, std::string_view name = "trigger");

  // -- Connections -------------------------------------------------------------

  /// Connects "child.port" to "child.port" within `parent`. A bare child
  /// name may be used when the block has exactly one port in the required
  /// direction (e.g. inport/outport proxies, ground, store blocks).
  const Connection& connect(Block& parent, std::string_view from,
                            std::string_view to);

  // -- Failure data ------------------------------------------------------------

  void malfunction(Block& block, std::string_view name, double rate,
                   std::string description = {});

  /// Adds a hazard-analysis row: `output` in "Class-port" notation, `cause`
  /// in the Figure 2 expression notation, both parsed against the model's
  /// failure-class registry. `condition_probability` < 1 marks the row as
  /// data-dependent (see failure/annotation.h). Parse errors carry the
  /// block's hierarchical path, plus `line` (the row's 1-based line in the
  /// source model file) when the caller knows it.
  void annotate(Block& block, std::string_view output, std::string_view cause,
                std::string description = {},
                double condition_probability = 1.0, int line = 0);

  // -- Finalisation ------------------------------------------------------------

  /// Validates (see model/validate.h) and moves the model out. Throws
  /// ErrorKind::kModel listing every validation error when invalid.
  Model take();

  /// Moves the model out without validating (for tests that need invalid
  /// models).
  Model take_unchecked() { return std::move(model_); }

 private:
  /// Resolves a "child.port" endpoint inside `parent`.
  Port& resolve_endpoint(Block& parent, std::string_view spec,
                         PortDirection direction) const;

  Model model_;
};

}  // namespace ftsynth
