// Ports -- the I/O interface of model blocks.
//
// Components in the paper's models exchange material, energy or data flows
// through ports. A port may carry a vector of channels (width > 1) so that
// mux/demux blocks can combine and split flows, and an input port may be a
// trigger -- an indirectly relayed control signal (paper, section 3).

#pragma once

#include <string>

#include "core/symbol.h"

namespace ftsynth {

class Block;

enum class PortDirection { kInput, kOutput };

/// The paper's three flow types (section 2: "material, energy or data").
enum class FlowKind { kData, kMaterial, kEnergy };

std::string_view to_string(PortDirection direction) noexcept;
std::string_view to_string(FlowKind flow) noexcept;

/// One port of a block. Owned by its Block; address-stable for the lifetime
/// of the block, so connections hold Port* directly.
class Port {
 public:
  Port(Block& owner, Symbol name, PortDirection direction, FlowKind flow,
       int width, bool is_trigger, int index) noexcept
      : owner_(&owner),
        name_(name),
        direction_(direction),
        flow_(flow),
        width_(width),
        is_trigger_(is_trigger),
        index_(index) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  Block& owner() const noexcept { return *owner_; }
  Symbol name() const noexcept { return name_; }
  PortDirection direction() const noexcept { return direction_; }
  FlowKind flow() const noexcept { return flow_; }

  /// Number of channels carried (>= 1). Mux outputs aggregate the widths of
  /// the mux inputs.
  int width() const noexcept { return width_; }
  void set_width(int width) noexcept { width_ = width; }

  /// True for trigger (control) inputs: loss of the trigger signal is, by
  /// default, synthesised as a cause of omission of every block output.
  bool is_trigger() const noexcept { return is_trigger_; }

  /// Position among the block's ports of the same direction (0-based);
  /// determines mux/demux channel layout.
  int index() const noexcept { return index_; }

  bool is_input() const noexcept {
    return direction_ == PortDirection::kInput;
  }
  bool is_output() const noexcept {
    return direction_ == PortDirection::kOutput;
  }

  /// "<block path>.<port name>" -- used in diagnostics and event names.
  std::string qualified_name() const;

 private:
  Block* owner_;
  Symbol name_;
  PortDirection direction_;
  FlowKind flow_;
  int width_;
  bool is_trigger_;
  int index_;
};

/// A contiguous slice of a port's channels, used to trace deviations through
/// mux/demux chains. `whole()` addresses every channel of the port.
struct ChannelRange {
  int lo = -1;  ///< first channel (0-based); -1 means the whole port
  int hi = -1;  ///< one past the last channel

  static ChannelRange whole() noexcept { return {-1, -1}; }
  static ChannelRange slice(int lo, int hi) noexcept { return {lo, hi}; }

  bool is_whole() const noexcept { return lo < 0; }
  int width() const noexcept { return is_whole() ? -1 : hi - lo; }

  /// Resolves `whole` against a port of width `port_width`.
  ChannelRange concrete(int port_width) const noexcept {
    return is_whole() ? ChannelRange{0, port_width} : *this;
  }

  friend bool operator==(ChannelRange a, ChannelRange b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string to_string() const;
};

}  // namespace ftsynth
