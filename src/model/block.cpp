#include "model/block.h"

#include <algorithm>

#include "core/error.h"

namespace ftsynth {

std::string_view to_string(BlockKind kind) noexcept {
  switch (kind) {
    case BlockKind::kBasic:
      return "Basic";
    case BlockKind::kSubsystem:
      return "SubSystem";
    case BlockKind::kInport:
      return "Inport";
    case BlockKind::kOutport:
      return "Outport";
    case BlockKind::kMux:
      return "Mux";
    case BlockKind::kDemux:
      return "Demux";
    case BlockKind::kDataStoreWrite:
      return "DataStoreWrite";
    case BlockKind::kDataStoreRead:
      return "DataStoreRead";
    case BlockKind::kGround:
      return "Ground";
  }
  return "Unknown";
}

std::string Block::path() const {
  if (parent_ == nullptr) return std::string(name_.view());
  return parent_->path() + "/" + std::string(name_.view());
}

Port& Block::add_port(Symbol name, PortDirection direction, FlowKind flow,
                      int width, bool is_trigger) {
  require(!name.empty(), ErrorKind::kModel, "port needs a name");
  require(width >= 1, ErrorKind::kModel,
          "port '" + name.str() + "' needs width >= 1");
  require(find_port(name) == nullptr, ErrorKind::kModel,
          "duplicate port '" + name.str() + "' on block '" + path() + "'");
  require(!is_trigger || direction == PortDirection::kInput, ErrorKind::kModel,
          "trigger port '" + name.str() + "' must be an input");
  int index = 0;
  for (const auto& p : ports_) {
    if (p->direction() == direction) ++index;
  }
  ports_.push_back(std::make_unique<Port>(*this, name, direction, flow, width,
                                          is_trigger, index));
  port_index_.emplace(name, ports_.back().get());
  return *ports_.back();
}

std::vector<Port*> Block::inputs() const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->is_input()) out.push_back(p.get());
  }
  return out;
}

std::vector<Port*> Block::outputs() const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->is_output()) out.push_back(p.get());
  }
  return out;
}

Port* Block::trigger() const noexcept {
  for (const auto& p : ports_) {
    if (p->is_trigger()) return p.get();
  }
  return nullptr;
}

Port* Block::find_port(Symbol name) const noexcept {
  auto it = port_index_.find(name);
  return it == port_index_.end() ? nullptr : it->second;
}

Port& Block::port(Symbol name) const {
  Port* p = find_port(name);
  require(p != nullptr, ErrorKind::kLookup,
          "block '" + path() + "' has no port '" + name.str() + "'");
  return *p;
}

Block& Block::add_child(Symbol name, BlockKind kind) {
  require(is_subsystem(), ErrorKind::kModel,
          "cannot add child '" + name.str() + "' to non-subsystem '" + path() +
              "'");
  require(!name.empty(), ErrorKind::kModel, "block needs a name");
  require(find_child(name) == nullptr, ErrorKind::kModel,
          "duplicate block '" + name.str() + "' in subsystem '" + path() +
              "'");
  children_.push_back(std::make_unique<Block>(name, kind, this));
  child_index_.emplace(name, children_.back().get());
  return *children_.back();
}

Block* Block::find_child(Symbol name) const noexcept {
  auto it = child_index_.find(name);
  return it == child_index_.end() ? nullptr : it->second;
}

Block& Block::child(std::string_view name) const {
  Block* c = find_child(Symbol(name));
  require(c != nullptr, ErrorKind::kLookup,
          "subsystem '" + path() + "' has no child '" + std::string(name) +
              "'");
  return *c;
}

const Connection& Block::connect(Port& from, Port& to) {
  require(is_subsystem(), ErrorKind::kModel,
          "connections can only be added to subsystems");
  require(from.is_output(), ErrorKind::kModel,
          "connection source " + from.qualified_name() + " is not an output");
  require(to.is_input(), ErrorKind::kModel,
          "connection destination " + to.qualified_name() +
              " is not an input");
  require(from.owner().parent() == this && to.owner().parent() == this,
          ErrorKind::kModel,
          "connection " + from.qualified_name() + " -> " +
              to.qualified_name() + " must join children of '" + path() + "'");
  require(connection_into(to) == nullptr, ErrorKind::kModel,
          "input " + to.qualified_name() + " is already connected");
  connections_.push_back({&from, &to});
  feed_index_.emplace(&to, connections_.size() - 1);
  return connections_.back();
}

const Connection* Block::connection_into(const Port& input) const noexcept {
  auto it = feed_index_.find(&input);
  return it == feed_index_.end() ? nullptr : &connections_[it->second];
}

std::vector<const Connection*> Block::connections_from(
    const Port& output) const noexcept {
  std::vector<const Connection*> out;
  for (const Connection& c : connections_) {
    if (c.from == &output) out.push_back(&c);
  }
  return out;
}

void Block::for_each_block(const std::function<void(Block&)>& visit) {
  visit(*this);
  for (const auto& c : children_) c->for_each_block(visit);
}

void Block::for_each_block(
    const std::function<void(const Block&)>& visit) const {
  visit(*this);
  for (const auto& c : children_) {
    const Block& child = *c;
    child.for_each_block(visit);
  }
}

}  // namespace ftsynth
