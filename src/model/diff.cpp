#include "model/diff.h"

#include <algorithm>
#include <map>

#include "core/strings.h"

namespace ftsynth {

namespace {

std::string connection_string(const Connection& connection) {
  return connection.from->qualified_name() + " -> " +
         connection.to->qualified_name();
}

/// One block's comparable surface: kind, ports, annotation content.
struct BlockSurface {
  std::string kind;
  std::vector<std::string> ports;        // "in x [data w1]" style
  std::vector<std::string> malfunctions; // "name @ rate"
  std::vector<std::string> rows;         // "Omission-out <= cause [p]"
  std::string store;
};

BlockSurface surface_of(const Block& block) {
  BlockSurface surface;
  surface.kind = std::string(to_string(block.kind()));
  for (const auto& port : block.ports()) {
    surface.ports.push_back(
        std::string(port->name().view()) + " " +
        std::string(to_string(port->direction())) + " " +
        std::string(to_string(port->flow())) + " w" +
        std::to_string(port->width()) + (port->is_trigger() ? " trigger" : ""));
  }
  for (const Malfunction& m : block.annotation().malfunctions()) {
    surface.malfunctions.push_back(m.name.str() + " @ " +
                                   format_double(m.rate));
  }
  for (const AnnotationRow& row : block.annotation().rows()) {
    std::string entry = row.output.to_string() + " <= " +
                        row.cause->to_string();
    if (row.condition_probability < 1.0)
      entry += " [p=" + format_double(row.condition_probability) + "]";
    surface.rows.push_back(std::move(entry));
  }
  surface.store = block.store_name().str();
  std::sort(surface.ports.begin(), surface.ports.end());
  std::sort(surface.malfunctions.begin(), surface.malfunctions.end());
  std::sort(surface.rows.begin(), surface.rows.end());
  return surface;
}

/// Appends "path: <label> +added -removed" lines for list differences.
void describe_list_delta(const std::string& path, const std::string& label,
                         const std::vector<std::string>& before,
                         const std::vector<std::string>& after,
                         std::vector<std::string>& out) {
  std::vector<std::string> added;
  std::vector<std::string> removed;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(added));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(removed));
  for (const std::string& item : added)
    out.push_back(path + ": " + label + " added: " + item);
  for (const std::string& item : removed)
    out.push_back(path + ": " + label + " removed: " + item);
}

}  // namespace

std::string ModelDiff::to_string() const {
  if (empty()) return "(no differences)\n";
  std::string out;
  for (const std::string& path : removed_blocks) out += "- block " + path + "\n";
  for (const std::string& path : added_blocks) out += "+ block " + path + "\n";
  for (const std::string& change : changed_blocks) out += "~ " + change + "\n";
  for (const std::string& connection : removed_connections)
    out += "- line  " + connection + "\n";
  for (const std::string& connection : added_connections)
    out += "+ line  " + connection + "\n";
  return out;
}

ModelDiff diff_models(const Model& before, const Model& after) {
  ModelDiff diff;

  std::map<std::string, const Block*> before_blocks;
  std::map<std::string, const Block*> after_blocks;
  before.for_each_block(
      [&](const Block& block) { before_blocks[block.path()] = &block; });
  after.for_each_block(
      [&](const Block& block) { after_blocks[block.path()] = &block; });
  // Compare under the other model's root name so a renamed root does not
  // mark everything changed: strip the first path component.
  auto strip_root = [](std::map<std::string, const Block*> blocks) {
    std::map<std::string, const Block*> out;
    for (auto& [path, block] : blocks) {
      std::size_t slash = path.find('/');
      out[slash == std::string::npos ? "" : path.substr(slash + 1)] = block;
    }
    return out;
  };
  before_blocks = strip_root(std::move(before_blocks));
  after_blocks = strip_root(std::move(after_blocks));

  for (const auto& [path, block] : before_blocks) {
    if (after_blocks.count(path) == 0)
      diff.removed_blocks.push_back(path.empty() ? "<root>" : path);
  }
  for (const auto& [path, block] : after_blocks) {
    if (before_blocks.count(path) == 0)
      diff.added_blocks.push_back(path.empty() ? "<root>" : path);
  }

  for (const auto& [path, old_block] : before_blocks) {
    auto it = after_blocks.find(path);
    if (it == after_blocks.end()) continue;
    const Block* new_block = it->second;
    const std::string label = path.empty() ? "<root>" : path;
    BlockSurface old_surface = surface_of(*old_block);
    BlockSurface new_surface = surface_of(*new_block);
    if (old_surface.kind != new_surface.kind) {
      diff.changed_blocks.push_back(label + ": kind " + old_surface.kind +
                                    " -> " + new_surface.kind);
    }
    if (old_surface.store != new_surface.store) {
      diff.changed_blocks.push_back(label + ": store '" + old_surface.store +
                                    "' -> '" + new_surface.store + "'");
    }
    describe_list_delta(label, "port", old_surface.ports, new_surface.ports,
                        diff.changed_blocks);
    describe_list_delta(label, "malfunction", old_surface.malfunctions,
                        new_surface.malfunctions, diff.changed_blocks);
    describe_list_delta(label, "failure row", old_surface.rows,
                        new_surface.rows, diff.changed_blocks);
  }

  // Connections (root-stripped endpoint paths for comparability).
  auto connection_set = [](const Model& model) {
    std::vector<std::string> out;
    model.for_each_block([&](const Block& block) {
      for (const Connection& connection : block.connections())
        out.push_back(connection_string(connection));
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<std::string> before_connections = connection_set(before);
  std::vector<std::string> after_connections = connection_set(after);
  // Endpoint strings embed the root name; normalise it away.
  auto normalise_root = [](std::vector<std::string>& connections,
                           const std::string& root) {
    for (std::string& text : connections) {
      std::string needle = root + "/";
      for (std::size_t pos = text.find(needle); pos != std::string::npos;
           pos = text.find(needle, pos + 1)) {
        // Only replace at path starts (begin or after "-> ").
        if (pos == 0 || text.compare(pos - 3, 3, "-> ") == 0)
          text.replace(pos, needle.size(), "");
      }
      // A root-level port like "bbw.out" also embeds the root name.
      if (text.rfind(root + ".", 0) == 0) text.replace(0, root.size(), "<root>");
      std::size_t arrow = text.find("-> " + root + ".");
      if (arrow != std::string::npos)
        text.replace(arrow + 3, root.size(), "<root>");
    }
    std::sort(connections.begin(), connections.end());
  };
  normalise_root(before_connections, before.name());
  normalise_root(after_connections, after.name());

  std::set_difference(after_connections.begin(), after_connections.end(),
                      before_connections.begin(), before_connections.end(),
                      std::back_inserter(diff.added_connections));
  std::set_difference(before_connections.begin(), before_connections.end(),
                      after_connections.begin(), after_connections.end(),
                      std::back_inserter(diff.removed_connections));
  return diff;
}

}  // namespace ftsynth
