#include "model/validate.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

std::string Issue::to_string() const {
  return std::string(severity == Severity::kError ? "error" : "warning") +
         " [" + block_path + "]: " + message;
}

namespace {

class Validator {
 public:
  explicit Validator(const Model& model) : model_(model) {}

  std::vector<Issue> run() {
    model_.for_each_block([&](const Block& block) { check_block(block); });
    return std::move(issues_);
  }

 private:
  void error(const Block& block, std::string message) {
    issues_.push_back({Severity::kError, block.path(), std::move(message)});
  }
  void warning(const Block& block, std::string message) {
    issues_.push_back({Severity::kWarning, block.path(), std::move(message)});
  }

  void check_block(const Block& block) {
    check_ports_for_kind(block);
    check_annotation(block);
    if (block.is_subsystem()) {
      check_connections(block);
      check_proxies(block);
    }
    if (block.kind() == BlockKind::kMux || block.kind() == BlockKind::kDemux)
      check_mux_widths(block);
    if (block.kind() == BlockKind::kDataStoreRead &&
        model_.store_writers(block.store_name()).empty()) {
      warning(block, "data store '" + block.store_name().str() +
                         "' is read but never written");
    }
  }

  void check_ports_for_kind(const Block& block) {
    const auto n_in = block.inputs().size();
    const auto n_out = block.outputs().size();
    switch (block.kind()) {
      case BlockKind::kInport:
        if (n_in != 0 || n_out != 1)
          error(block, "Inport proxy must have exactly one output port");
        break;
      case BlockKind::kOutport:
        if (n_in != 1 || n_out != 0)
          error(block, "Outport proxy must have exactly one input port");
        break;
      case BlockKind::kGround:
        if (n_in != 0 || n_out != 1)
          error(block, "Ground must have exactly one output port");
        break;
      case BlockKind::kDataStoreWrite:
        if (n_in != 1 || n_out != 0)
          error(block, "DataStoreWrite must have exactly one input port");
        if (block.store_name().empty())
          error(block, "DataStoreWrite needs a store name");
        break;
      case BlockKind::kDataStoreRead:
        if (n_in != 0 || n_out != 1)
          error(block, "DataStoreRead must have exactly one output port");
        if (block.store_name().empty())
          error(block, "DataStoreRead needs a store name");
        break;
      case BlockKind::kMux:
        if (n_in < 1 || n_out != 1)
          error(block, "Mux needs >= 1 inputs and exactly one output");
        break;
      case BlockKind::kDemux:
        if (n_in != 1 || n_out < 1)
          error(block, "Demux needs exactly one input and >= 1 outputs");
        break;
      case BlockKind::kBasic:
      case BlockKind::kSubsystem:
        break;
    }
  }

  void check_mux_widths(const Block& block) {
    auto sum_widths = [](const std::vector<Port*>& ports) {
      return std::accumulate(
          ports.begin(), ports.end(), 0,
          [](int acc, const Port* p) { return acc + p->width(); });
    };
    if (block.kind() == BlockKind::kMux && !block.outputs().empty()) {
      int in_total = sum_widths(block.inputs());
      int out_width = block.outputs().front()->width();
      if (in_total != out_width) {
        error(block, "mux output width " + std::to_string(out_width) +
                         " != sum of input widths " +
                         std::to_string(in_total));
      }
    }
    if (block.kind() == BlockKind::kDemux && !block.inputs().empty()) {
      int out_total = sum_widths(block.outputs());
      int in_width = block.inputs().front()->width();
      if (out_total != in_width) {
        error(block, "demux input width " + std::to_string(in_width) +
                         " != sum of output widths " +
                         std::to_string(out_total));
      }
    }
  }

  void check_connections(const Block& subsystem) {
    // One pass over the connections; per-port queries must not rescan the
    // connection list (validation would go quadratic on flat models).
    std::unordered_set<const Port*> driving;
    for (const Connection& c : subsystem.connections())
      driving.insert(c.from);
    for (const Connection& c : subsystem.connections()) {
      if (c.from->flow() != c.to->flow()) {
        error(subsystem,
              "flow mismatch on connection " + c.from->qualified_name() +
                  " (" + std::string(to_string(c.from->flow())) + ") -> " +
                  c.to->qualified_name() + " (" +
                  std::string(to_string(c.to->flow())) + ")");
      }
      if (c.from->width() != c.to->width()) {
        error(subsystem,
              "width mismatch on connection " + c.from->qualified_name() +
                  " (" + std::to_string(c.from->width()) + ") -> " +
                  c.to->qualified_name() + " (" +
                  std::to_string(c.to->width()) + ")");
      }
    }
    // Every input of every child must be fed.
    for (const auto& child : subsystem.children()) {
      for (const auto& port : child->ports()) {
        if (!port->is_input()) continue;
        if (subsystem.connection_into(*port) == nullptr) {
          error(subsystem, "input " + port->qualified_name() +
                               " is unconnected (use a Ground block to "
                               "terminate it deliberately)");
        }
      }
      // Outputs that drive nothing are suspicious but legal.
      if (child->kind() != BlockKind::kDataStoreRead &&
          child->kind() != BlockKind::kGround) {
        for (const auto& port : child->ports()) {
          if (!port->is_output()) continue;
          if (driving.count(port.get()) == 0) {
            warning(subsystem,
                    "output " + port->qualified_name() + " drives nothing");
          }
        }
      }
    }
  }

  void check_proxies(const Block& subsystem) {
    // Boundary ports and proxy children must agree 1:1 by name.
    for (const auto& port : subsystem.ports()) {
      const Block* proxy = subsystem.find_child(port->name());
      BlockKind expected =
          port->is_input() ? BlockKind::kInport : BlockKind::kOutport;
      if (proxy == nullptr || proxy->kind() != expected) {
        error(subsystem, "boundary port '" + port->name().str() +
                             "' has no matching " +
                             std::string(to_string(expected)) +
                             " proxy child");
        continue;
      }
      const std::vector<Port*> proxy_ports =
          port->is_input() ? proxy->outputs() : proxy->inputs();
      if (proxy_ports.size() == 1 &&
          proxy_ports.front()->width() != port->width()) {
        error(subsystem, "boundary port '" + port->name().str() +
                             "' width differs from its proxy");
      }
    }
    for (const auto& child : subsystem.children()) {
      if (child->kind() != BlockKind::kInport &&
          child->kind() != BlockKind::kOutport)
        continue;
      if (subsystem.find_port(child->name()) == nullptr) {
        error(subsystem, "proxy '" + child->name().str() +
                             "' has no matching boundary port on '" +
                             subsystem.path() + "'");
      }
    }
  }

  void check_annotation(const Block& block) {
    const Annotation& annotation = block.annotation();
    if (annotation.empty()) return;
    if (block.kind() != BlockKind::kBasic && !block.is_subsystem()) {
      error(block, "only basic blocks and subsystems may carry hazard "
                   "annotations");
      return;
    }
    for (const AnnotationRow& row : annotation.rows()) {
      const Port* out = block.find_port(row.output.port);
      if (out == nullptr || !out->is_output()) {
        error(block, "annotation row for " + row.output.to_string() +
                         " names a non-existent output port");
      }
      for (const Deviation& d : row.cause->input_deviations()) {
        const Port* in = block.find_port(d.port);
        if (in == nullptr || !in->is_input()) {
          error(block, "cause of " + row.output.to_string() +
                           " references unknown input deviation " +
                           d.to_string());
        }
      }
      for (Symbol m : row.cause->malfunctions()) {
        if (!annotation.find_malfunction(m)) {
          error(block, "cause of " + row.output.to_string() +
                           " references undeclared malfunction '" + m.str() +
                           "'");
        }
      }
    }
  }

  const Model& model_;
  std::vector<Issue> issues_;
};

}  // namespace

std::vector<Issue> validate(const Model& model) {
  return Validator(model).run();
}

void validate_or_throw(const Model& model) {
  std::string messages;
  int errors = 0;
  for (const Issue& issue : validate(model)) {
    if (issue.severity != Severity::kError) continue;
    ++errors;
    messages += "\n  " + issue.to_string();
  }
  require(errors == 0, ErrorKind::kModel,
          "model '" + model.name() + "' failed validation with " +
              std::to_string(errors) + " error(s):" + messages);
}

}  // namespace ftsynth
