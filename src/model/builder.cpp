#include "model/builder.h"

#include <numeric>

#include "core/error.h"
#include "core/strings.h"
#include "failure/expr_parser.h"
#include "model/validate.h"

namespace ftsynth {

Block& ModelBuilder::basic(Block& parent, std::string_view name) {
  return parent.add_child(Symbol(name), BlockKind::kBasic);
}

Block& ModelBuilder::subsystem(Block& parent, std::string_view name) {
  return parent.add_child(Symbol(name), BlockKind::kSubsystem);
}

Block& ModelBuilder::inport(Block& parent, std::string_view name,
                            FlowKind flow, int width) {
  Block& proxy = parent.add_child(Symbol(name), BlockKind::kInport);
  proxy.add_port(Symbol("out"), PortDirection::kOutput, flow, width);
  parent.add_port(Symbol(name), PortDirection::kInput, flow, width);
  return proxy;
}

Block& ModelBuilder::outport(Block& parent, std::string_view name,
                             FlowKind flow, int width) {
  Block& proxy = parent.add_child(Symbol(name), BlockKind::kOutport);
  proxy.add_port(Symbol("in"), PortDirection::kInput, flow, width);
  parent.add_port(Symbol(name), PortDirection::kOutput, flow, width);
  return proxy;
}

Block& ModelBuilder::mux(Block& parent, std::string_view name, int n_inputs,
                         FlowKind flow) {
  return mux(parent, name, std::vector<int>(n_inputs, 1), flow);
}

Block& ModelBuilder::mux(Block& parent, std::string_view name,
                         const std::vector<int>& widths, FlowKind flow) {
  require(!widths.empty(), ErrorKind::kModel, "mux needs at least one input");
  Block& block = parent.add_child(Symbol(name), BlockKind::kMux);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    block.add_port(Symbol("in" + std::to_string(i + 1)),
                   PortDirection::kInput, flow, widths[i]);
  }
  int total = std::accumulate(widths.begin(), widths.end(), 0);
  block.add_port(Symbol("out"), PortDirection::kOutput, flow, total);
  return block;
}

Block& ModelBuilder::demux(Block& parent, std::string_view name,
                           int n_outputs, FlowKind flow) {
  return demux(parent, name, std::vector<int>(n_outputs, 1), flow);
}

Block& ModelBuilder::demux(Block& parent, std::string_view name,
                           const std::vector<int>& widths, FlowKind flow) {
  require(!widths.empty(), ErrorKind::kModel,
          "demux needs at least one output");
  Block& block = parent.add_child(Symbol(name), BlockKind::kDemux);
  int total = std::accumulate(widths.begin(), widths.end(), 0);
  block.add_port(Symbol("in"), PortDirection::kInput, flow, total);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    block.add_port(Symbol("out" + std::to_string(i + 1)),
                   PortDirection::kOutput, flow, widths[i]);
  }
  return block;
}

Block& ModelBuilder::store_write(Block& parent, std::string_view name,
                                 std::string_view store) {
  require(is_identifier(store), ErrorKind::kModel,
          "store name must be an identifier: '" + std::string(store) + "'");
  Block& block = parent.add_child(Symbol(name), BlockKind::kDataStoreWrite);
  block.add_port(Symbol("in"), PortDirection::kInput);
  block.set_store_name(Symbol(store));
  return block;
}

Block& ModelBuilder::store_read(Block& parent, std::string_view name,
                                std::string_view store) {
  require(is_identifier(store), ErrorKind::kModel,
          "store name must be an identifier: '" + std::string(store) + "'");
  Block& block = parent.add_child(Symbol(name), BlockKind::kDataStoreRead);
  block.add_port(Symbol("out"), PortDirection::kOutput);
  block.set_store_name(Symbol(store));
  return block;
}

Block& ModelBuilder::ground(Block& parent, std::string_view name) {
  Block& block = parent.add_child(Symbol(name), BlockKind::kGround);
  block.add_port(Symbol("out"), PortDirection::kOutput);
  return block;
}

Port& ModelBuilder::in(Block& block, std::string_view name, FlowKind flow,
                       int width) {
  return block.add_port(Symbol(name), PortDirection::kInput, flow, width);
}

Port& ModelBuilder::out(Block& block, std::string_view name, FlowKind flow,
                        int width) {
  return block.add_port(Symbol(name), PortDirection::kOutput, flow, width);
}

Port& ModelBuilder::trigger(Block& block, std::string_view name) {
  require(block.trigger() == nullptr, ErrorKind::kModel,
          "block '" + block.path() + "' already has a trigger input");
  return block.add_port(Symbol(name), PortDirection::kInput, FlowKind::kData,
                        1, /*is_trigger=*/true);
}

Port& ModelBuilder::resolve_endpoint(Block& parent, std::string_view spec,
                                     PortDirection direction) const {
  std::string_view block_name = trim(spec);
  std::string_view port_name;
  if (std::size_t dot = block_name.rfind('.');
      dot != std::string_view::npos) {
    port_name = trim(block_name.substr(dot + 1));
    block_name = trim(block_name.substr(0, dot));
  }
  Block* child = parent.find_child(Symbol(block_name));
  require(child != nullptr, ErrorKind::kLookup,
          "subsystem '" + parent.path() + "' has no child '" +
              std::string(block_name) + "' (endpoint '" + std::string(spec) +
              "')");
  if (!port_name.empty()) return child->port(port_name);
  // Bare block name: unambiguous only with exactly one port of the needed
  // direction.
  Port* match = nullptr;
  for (const auto& p : child->ports()) {
    if (p->direction() != direction) continue;
    require(match == nullptr, ErrorKind::kLookup,
            "endpoint '" + std::string(spec) + "' is ambiguous: block '" +
                child->path() + "' has several " +
                std::string(to_string(direction)) + " ports");
    match = p.get();
  }
  require(match != nullptr, ErrorKind::kLookup,
          "block '" + child->path() + "' has no " +
              std::string(to_string(direction)) + " port (endpoint '" +
              std::string(spec) + "')");
  return *match;
}

const Connection& ModelBuilder::connect(Block& parent, std::string_view from,
                                        std::string_view to) {
  Port& source = resolve_endpoint(parent, from, PortDirection::kOutput);
  Port& dest = resolve_endpoint(parent, to, PortDirection::kInput);
  return parent.connect(source, dest);
}

void ModelBuilder::malfunction(Block& block, std::string_view name,
                               double rate, std::string description) {
  block.annotation().add_malfunction(Symbol(name), rate,
                                     std::move(description));
}

void ModelBuilder::annotate(Block& block, std::string_view output,
                            std::string_view cause, std::string description,
                            double condition_probability, int line) {
  const ExprSource source{line, block.path()};
  Deviation deviation = parse_deviation(output, model_.registry(), source);
  ExprPtr expr = parse_expression(cause, model_.registry(), source);
  block.annotation().add_row(deviation, std::move(expr),
                             std::move(description), condition_probability);
}

Model ModelBuilder::take() {
  validate_or_throw(model_);
  return std::move(model_);
}

}  // namespace ftsynth
