#include "model/model.h"

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

Model::Model(std::string name)
    : name_(std::move(name)),
      root_(std::make_unique<Block>(Symbol(name_), BlockKind::kSubsystem,
                                    nullptr)) {
  require(is_identifier(name_), ErrorKind::kModel,
          "model name must be an identifier: '" + name_ + "'");
}

Block* Model::find_block(std::string_view path) const noexcept {
  std::string_view remaining = trim(path);
  if (remaining.empty()) return root_.get();
  Block* current = root_.get();
  bool first = true;
  while (!remaining.empty()) {
    std::size_t slash = remaining.find('/');
    std::string_view piece = remaining.substr(0, slash);
    remaining = slash == std::string_view::npos
                    ? std::string_view{}
                    : remaining.substr(slash + 1);
    if (first && piece == current->name().view()) {
      first = false;
      continue;  // leading root name is optional
    }
    first = false;
    current = current->find_child(Symbol(piece));
    if (current == nullptr) return nullptr;
  }
  return current;
}

Block& Model::block(std::string_view path) const {
  Block* b = find_block(path);
  require(b != nullptr, ErrorKind::kLookup,
          "model '" + name_ + "' has no block at path '" + std::string(path) +
              "'");
  return *b;
}

std::vector<const Block*> Model::store_writers(Symbol store) const {
  std::vector<const Block*> out;
  for_each_block([&](const Block& b) {
    if (b.kind() == BlockKind::kDataStoreWrite && b.store_name() == store)
      out.push_back(&b);
  });
  return out;
}

std::size_t Model::block_count() const {
  std::size_t n = 0;
  for_each_block([&](const Block&) { ++n; });
  return n;
}

}  // namespace ftsynth
