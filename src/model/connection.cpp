#include "model/connection.h"

// Connection is a plain aggregate; see connection.h. This translation unit
// exists so the module has a stable home if helpers grow later.
