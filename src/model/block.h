// Blocks -- the components of a hierarchical Simulink-style model.
//
// A model is a tree of blocks. Subsystems contain child blocks and the
// connections between them; every other kind is a leaf. Inport/Outport
// children act as proxies for a subsystem's own boundary ports (exactly as
// in Simulink), so connections always join ports of sibling blocks.
//
// Both basic blocks and subsystems carry an Annotation. On a basic block it
// is the component's local hazard analysis (paper, Figure 2). On a
// subsystem it is the enclosing-level analysis of Figure 3 -- hardware or
// environmental common-cause failures that affect the subsystem outputs
// directly, OR-ed into every fault tree path that crosses the boundary.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "failure/annotation.h"
#include "model/connection.h"
#include "model/port.h"

namespace ftsynth {

enum class BlockKind {
  kBasic,           ///< leaf component described by its hazard analysis
  kSubsystem,       ///< composite: children + internal connections
  kInport,          ///< proxy for the parent subsystem's input port
  kOutport,         ///< proxy for the parent subsystem's output port
  kMux,             ///< combines N input flows into one vector flow
  kDemux,           ///< splits one vector flow into N flows
  kDataStoreWrite,  ///< writes a named store (implicit communication)
  kDataStoreRead,   ///< reads a named store written elsewhere in the model
  kGround,          ///< inert source terminating otherwise-unconnected inputs
};

std::string_view to_string(BlockKind kind) noexcept;

/// One block of the model. Blocks are owned by their parent subsystem (the
/// root is owned by the Model) and are address-stable.
class Block {
 public:
  Block(Symbol name, BlockKind kind, Block* parent) noexcept
      : name_(name), kind_(kind), parent_(parent) {}

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  Symbol name() const noexcept { return name_; }
  BlockKind kind() const noexcept { return kind_; }
  Block* parent() const noexcept { return parent_; }
  bool is_root() const noexcept { return parent_ == nullptr; }
  bool is_subsystem() const noexcept {
    return kind_ == BlockKind::kSubsystem;
  }

  /// Slash-separated path from the root, e.g. "bbw/pedal_node/filter".
  std::string path() const;

  // -- Ports -----------------------------------------------------------------

  /// Adds a port; `width` >= 1. Throws ErrorKind::kModel on duplicate names.
  Port& add_port(Symbol name, PortDirection direction,
                 FlowKind flow = FlowKind::kData, int width = 1,
                 bool is_trigger = false);

  const std::vector<std::unique_ptr<Port>>& ports() const noexcept {
    return ports_;
  }
  /// Input ports in declaration order (mux channel order).
  std::vector<Port*> inputs() const;
  /// Output ports in declaration order (demux channel order).
  std::vector<Port*> outputs() const;
  /// The trigger input, or nullptr.
  Port* trigger() const noexcept;

  Port* find_port(Symbol name) const noexcept;
  /// Throws ErrorKind::kLookup when absent.
  Port& port(Symbol name) const;
  Port& port(std::string_view name) const { return port(Symbol(name)); }

  // -- Hierarchy (subsystems) --------------------------------------------------

  /// Adds a child block; caller must be a subsystem. Child names must be
  /// unique among siblings.
  Block& add_child(Symbol name, BlockKind kind);

  const std::vector<std::unique_ptr<Block>>& children() const noexcept {
    return children_;
  }
  Block* find_child(Symbol name) const noexcept;
  /// Throws ErrorKind::kLookup when absent.
  Block& child(std::string_view name) const;

  /// Connects an output port to an input port of (possibly the same) child
  /// blocks of this subsystem. Fan-out is modelled as several connections
  /// from the same source.
  const Connection& connect(Port& from, Port& to);

  const std::vector<Connection>& connections() const noexcept {
    return connections_;
  }

  /// The unique connection feeding `input` (which must belong to a child of
  /// this subsystem), or nullptr when the input is unconnected.
  const Connection* connection_into(const Port& input) const noexcept;

  /// All connections leaving `output`.
  std::vector<const Connection*> connections_from(
      const Port& output) const noexcept;

  /// Applies `visit` to this block and every descendant, preorder.
  void for_each_block(const std::function<void(Block&)>& visit);
  void for_each_block(const std::function<void(const Block&)>& visit) const;

  // -- Failure data ------------------------------------------------------------

  Annotation& annotation() noexcept { return annotation_; }
  const Annotation& annotation() const noexcept { return annotation_; }

  // -- Kind-specific attributes -------------------------------------------------

  /// Store name for kDataStoreWrite / kDataStoreRead blocks.
  Symbol store_name() const noexcept { return store_name_; }
  void set_store_name(Symbol name) noexcept { store_name_ = name; }

  /// Free-form description shown in reports.
  const std::string& description() const noexcept { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

 private:
  Symbol name_;
  BlockKind kind_;
  Block* parent_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<Block>> children_;
  std::vector<Connection> connections_;
  Annotation annotation_;
  Symbol store_name_;
  std::string description_;
  // O(1) lookups; models are build-once, so the indexes only grow.
  std::unordered_map<Symbol, Port*> port_index_;
  std::unordered_map<Symbol, Block*> child_index_;
  std::unordered_map<const Port*, std::size_t> feed_index_;  // input -> conn
};

}  // namespace ftsynth
