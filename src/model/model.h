// Model -- the root object tying together the block hierarchy and the
// failure-class registry used by its annotations.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "failure/failure_class.h"
#include "model/block.h"

namespace ftsynth {

/// A hierarchical system model. Owns the root subsystem (whose name is the
/// model name) and the failure-class registry shared by every annotation.
class Model {
 public:
  explicit Model(std::string name);

  Model(Model&&) noexcept = default;
  Model& operator=(Model&&) noexcept = default;

  const std::string& name() const noexcept { return name_; }

  FailureClassRegistry& registry() noexcept { return registry_; }
  const FailureClassRegistry& registry() const noexcept { return registry_; }

  Block& root() noexcept { return *root_; }
  const Block& root() const noexcept { return *root_; }

  /// Finds a block by slash-separated path. The leading component may be
  /// the root's name ("bbw/pedal/filter") or omitted ("pedal/filter");
  /// an empty path names the root. Returns nullptr when absent.
  Block* find_block(std::string_view path) const noexcept;

  /// Like find_block but throws ErrorKind::kLookup on a miss.
  Block& block(std::string_view path) const;

  /// Preorder visit of every block including the root.
  void for_each_block(const std::function<void(const Block&)>& visit) const {
    const Block& root = *root_;
    root.for_each_block(visit);
  }
  void for_each_block(const std::function<void(Block&)>& visit) {
    root_->for_each_block(visit);
  }

  /// All DataStoreWrite blocks writing `store`, anywhere in the hierarchy.
  /// Data stores give components an implicit communication path that the
  /// synthesis must follow (paper, section 3).
  std::vector<const Block*> store_writers(Symbol store) const;

  /// Number of blocks in the model (root included).
  std::size_t block_count() const;

 private:
  std::string name_;
  FailureClassRegistry registry_;
  std::unique_ptr<Block> root_;
};

}  // namespace ftsynth
