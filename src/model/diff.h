// Model diffing.
//
// The paper's design-iteration story (section 4, aim 3) implies a workflow
// of revising the model and mechanically re-analysing. diff_models tells
// the analyst *what* changed between two model revisions -- blocks,
// connections, ports, hazard annotations, failure rates -- so re-analysis
// reports can be read against the actual design delta.

#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace ftsynth {

struct ModelDiff {
  std::vector<std::string> added_blocks;    ///< paths present only in `after`
  std::vector<std::string> removed_blocks;  ///< paths present only in `before`
  /// "path: <what changed>" for blocks present in both.
  std::vector<std::string> changed_blocks;
  /// "a.p -> b.q" connection strings (within their subsystem).
  std::vector<std::string> added_connections;
  std::vector<std::string> removed_connections;

  bool empty() const noexcept {
    return added_blocks.empty() && removed_blocks.empty() &&
           changed_blocks.empty() && added_connections.empty() &&
           removed_connections.empty();
  }

  std::string to_string() const;
};

/// Structural + annotation diff from `before` to `after`. Blocks are
/// matched by path.
ModelDiff diff_models(const Model& before, const Model& after);

}  // namespace ftsynth
