#include "model/port.h"

#include "model/block.h"

namespace ftsynth {

std::string_view to_string(PortDirection direction) noexcept {
  return direction == PortDirection::kInput ? "input" : "output";
}

std::string_view to_string(FlowKind flow) noexcept {
  switch (flow) {
    case FlowKind::kData:
      return "data";
    case FlowKind::kMaterial:
      return "material";
    case FlowKind::kEnergy:
      return "energy";
  }
  return "unknown";
}

std::string Port::qualified_name() const {
  return owner_->path() + "." + std::string(name_.view());
}

std::string ChannelRange::to_string() const {
  if (is_whole()) return "*";
  if (hi == lo + 1) return std::to_string(lo);
  return std::to_string(lo) + ".." + std::to_string(hi - 1);
}

}  // namespace ftsynth
