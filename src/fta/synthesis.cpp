#include "fta/synthesis.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/error.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "failure/expr_parser.h"
#include "fta/simplify.h"

namespace ftsynth {

namespace {

/// Memoisation / cycle-detection key: one traversal target.
struct Key {
  const Port* port;
  ChannelRange range;  // always concrete
  FailureClass cls;

  friend bool operator==(const Key& a, const Key& b) noexcept {
    return a.port == b.port && a.range == b.range && a.cls == b.cls;
  }
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    std::size_t h = std::hash<const void*>{}(k.port);
    h = h * 1000003u ^ static_cast<std::size_t>(k.range.lo + 1);
    h = h * 1000003u ^ static_cast<std::size_t>(k.range.hi + 1);
    h = h * 1000003u ^ k.cls.hash();
    return h;
  }
};

/// One synthesise() invocation. Builds a single FaultTree.
///
/// FtNode* result semantics throughout: nullptr == the deviation cannot
/// occur (constant false); a kHouse node == constant true; anything else is
/// a proper event.
class Run {
 public:
  Run(const Model& model, const SynthesisOptions& options,
      SynthesisStats& stats, FaultTree& tree)
      : model_(model),
        options_(options),
        stats_(stats),
        tree_(tree),
        budget_(options.budget),
        omission_(model.registry().omission()) {
    // One model walk up front turns every per-port lookup into O(1); the
    // naive connection scan made synthesis quadratic on flat models.
    model_.for_each_block([&](const Block& block) {
      if (block.is_subsystem()) {
        for (const Connection& connection : block.connections())
          feed_.emplace(connection.to, &connection);
      }
      if (block.kind() == BlockKind::kDataStoreWrite)
        writers_[block.store_name()].push_back(&block);
    });
  }

  /// Entry point: resolve a deviation at a boundary output of `subsystem`
  /// (used for the model root, and internally when crossing nested
  /// subsystem boundaries).
  FtNode* resolve_subsystem_output(const Block& subsystem, const Port& port,
                                   ChannelRange range, FailureClass cls) {
    // Inner propagation: through the Outport proxy of the same name.
    const Block* proxy = subsystem.find_child(port.name());
    if (options_.sink != nullptr &&
        (proxy == nullptr || proxy->kind() != BlockKind::kOutport ||
         proxy->inputs().size() != 1)) {
      // Partial model (recovered parse): the proxy is missing or mangled.
      return degraded(Deviation{cls, port.name()}, subsystem.path(),
                      "missing Outport proxy for " + port.qualified_name());
    }
    check_internal(proxy != nullptr && proxy->kind() == BlockKind::kOutport,
                   "missing Outport proxy for " + port.qualified_name());
    std::vector<Port*> proxy_inputs = proxy->inputs();
    check_internal(proxy_inputs.size() == 1, "malformed Outport proxy");
    FtNode* inner = resolve_input(*proxy_inputs.front(), range, cls);

    // Enclosing-level (hardware / environment) common cause: Figure 3.
    FtNode* common = nullptr;
    if (options_.subsystem_common_cause) {
      bool any_row = false;
      common = convert_rows(subsystem, Deviation{cls, port.name()}, any_row);
    }
    return make_or({inner, common},
                   describe(cls, port.name(), subsystem.path()));
  }

 private:
  // -- Gate construction (nullptr = false, kHouse = true) ---------------------

  static bool is_house(const FtNode* node) noexcept {
    return node != nullptr && node->kind() == NodeKind::kHouse;
  }

  FtNode* house() {
    return tree_.add_house(Symbol("always"), "condition fixed true");
  }

  FtNode* make_or(std::vector<FtNode*> children, std::string description) {
    std::vector<FtNode*> kept;
    for (FtNode* child : children) {
      if (child == nullptr) continue;
      if (is_house(child)) return child;
      if (std::find(kept.begin(), kept.end(), child) == kept.end())
        kept.push_back(child);
    }
    if (kept.empty()) return nullptr;
    if (kept.size() == 1) return kept.front();
    return tree_.add_gate(GateKind::kOr, std::move(description),
                          std::move(kept));
  }

  FtNode* make_and(std::vector<FtNode*> children, std::string description) {
    std::vector<FtNode*> kept;
    for (FtNode* child : children) {
      if (child == nullptr) return nullptr;
      if (is_house(child)) continue;
      if (std::find(kept.begin(), kept.end(), child) == kept.end())
        kept.push_back(child);
    }
    if (kept.empty()) return house();
    if (kept.size() == 1) return kept.front();
    return tree_.add_gate(GateKind::kAnd, std::move(description),
                          std::move(kept));
  }

  FtNode* make_not(FtNode* child, std::string description) {
    if (child == nullptr) return house();
    if (is_house(child)) return nullptr;
    return tree_.add_gate(GateKind::kNot, std::move(description), {child});
  }

  static std::string describe(FailureClass cls, Symbol port,
                              const std::string& where) {
    return Deviation{cls, port}.to_string() + " at " + where;
  }

  // -- Degraded mode and resource budget ---------------------------------------

  /// Degraded-mode cut: records a warning diagnostic and stands in an
  /// explicitly-marked undeveloped event for the unresolvable deviation.
  /// Only called when options_.sink is set.
  FtNode* degraded(const Deviation& deviation, const std::string& where,
                   const std::string& why) {
    ++stats_.degraded;
    options_.sink->warning(ErrorKind::kAnalysis,
                           deviation.to_string() + " left undeveloped: " + why,
                           {}, where);
    return tree_.add_undeveloped(
        Symbol("und:" + deviation.to_string() + "@" + where),
        deviation.to_string() + " at " + where + " left undeveloped (" + why +
            ")",
        where);
  }

  /// Budget cut: the traversal hit a resource limit. The cut point becomes
  /// a distinct "und:budget:" undeveloped leaf so truncated regions are
  /// visible in the tree; the (first) violation is reported once.
  FtNode* budget_cut(const Port& port, FailureClass cls, const char* why,
                     bool& flag) {
    if (!flag) {
      flag = true;
      if (options_.sink != nullptr) {
        options_.sink->warning(
            ErrorKind::kAnalysis,
            std::string("synthesis ") + why +
                "; the fault tree is truncated at marked undeveloped events",
            {}, port.owner().path());
      }
    }
    const Deviation d{cls, port.name()};
    return tree_.add_undeveloped(
        Symbol("und:budget:" + d.to_string() + "@" + port.owner().path()),
        d.to_string() + " truncated at " + port.owner().path() + " (" + why +
            ")",
        port.owner().path());
  }

  // -- Expression conversion ---------------------------------------------------

  /// Converts a local failure expression of `block` into fault tree nodes:
  /// malfunctions become basic events, input deviations recurse upstream.
  FtNode* convert(const Expr& expr, const Block& block) {
    switch (expr.op()) {
      case ExprOp::kFalse:
        return nullptr;
      case ExprOp::kTrue:
        return house();
      case ExprOp::kMalfunction: {
        Symbol name = expr.malfunction();
        double rate = 0.0;
        std::string description;
        if (auto malfunction = block.annotation().find_malfunction(name)) {
          rate = malfunction->rate;
          description = malfunction->description;
        }
        if (description.empty())
          description = "malfunction of " + block.path();
        return tree_.add_basic(Symbol(block.path() + "." + name.str()), rate,
                               std::move(description), block.path());
      }
      case ExprOp::kDeviation: {
        const Deviation& d = expr.deviation();
        const Port* port = block.find_port(d.port);
        if (port == nullptr || !port->is_input()) {
          const std::string why =
              port == nullptr
                  ? "cause expression references unknown port '" +
                        d.port.str() + "'"
                  : "cause expression references non-input deviation " +
                        d.to_string();
          if (options_.sink != nullptr) return degraded(d, block.path(), why);
          require(port != nullptr, ErrorKind::kLookup,
                  "block '" + block.path() + "' has no port '" +
                      d.port.str() + "'");
          throw Error(ErrorKind::kAnalysis, "cause expression of '" +
                                                block.path() +
                                                "' references non-input "
                                                "deviation " +
                                                d.to_string());
        }
        return resolve_input(*port, ChannelRange::whole(), d.failure_class);
      }
      case ExprOp::kNot:
        return make_not(convert(*expr.children().front(), block),
                        "NOT at " + block.path());
      case ExprOp::kAtLeast: {
        // Expand the k-of-N vote into the OR of all k-subsets; every
        // downstream engine then works unchanged. N is the handful of
        // redundant channels a voter sees, so C(N, k) stays small.
        std::vector<FtNode*> resolved;
        resolved.reserve(expr.children().size());
        for (const ExprPtr& child : expr.children())
          resolved.push_back(convert(*child, block));
        const int n = static_cast<int>(resolved.size());
        const int k = expr.threshold();
        std::vector<FtNode*> alternatives;
        std::vector<int> pick;
        auto choose = [&](auto&& self, int start) -> void {
          if (static_cast<int>(pick.size()) == k) {
            std::vector<FtNode*> conjuncts;
            for (int index : pick) {
              conjuncts.push_back(resolved[static_cast<std::size_t>(index)]);
            }
            alternatives.push_back(
                make_and(std::move(conjuncts),
                         std::to_string(k) + "-of-" + std::to_string(n) +
                             " at " + block.path()));
            return;
          }
          for (int i = start; i <= n - (k - static_cast<int>(pick.size()));
               ++i) {
            pick.push_back(i);
            self(self, i + 1);
            pick.pop_back();
          }
        };
        choose(choose, 0);
        return make_or(std::move(alternatives),
                       "vote causes at " + block.path());
      }
      case ExprOp::kAnd:
      case ExprOp::kOr: {
        std::vector<FtNode*> children;
        children.reserve(expr.children().size());
        for (const ExprPtr& child : expr.children())
          children.push_back(convert(*child, block));
        std::string description = "causes at " + block.path();
        return expr.op() == ExprOp::kAnd
                   ? make_and(std::move(children), std::move(description))
                   : make_or(std::move(children), std::move(description));
      }
    }
    throw Error(ErrorKind::kInternal, "corrupt ExprOp in synthesis");
  }

  /// Converts every annotation row of `block` explaining `deviation`,
  /// OR-ing the rows together. Data-dependent rows (condition probability
  /// below 1, the paper's stuck-register discussion) are AND-ed with a
  /// fixed-probability condition event. Returns nullptr with any_row=false
  /// when no row matches.
  FtNode* convert_rows(const Block& block, const Deviation& deviation,
                       bool& any_row) {
    any_row = false;
    std::vector<FtNode*> alternatives;
    const std::vector<AnnotationRow>& rows = block.annotation().rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const AnnotationRow& row = rows[i];
      if (!(row.output == deviation)) continue;
      any_row = true;
      FtNode* node = convert(*row.cause, block);
      if (row.condition_probability < 1.0) {
        FtNode* condition = tree_.add_basic(
            Symbol(condition_event_name(block, deviation, i)), 0.0,
            row.description.empty()
                ? "data condition enabling " + deviation.to_string()
                : row.description,
            block.path());
        condition->set_fixed_probability(row.condition_probability);
        node = make_and({node, condition},
                        describe(deviation.failure_class, deviation.port,
                                 block.path()) +
                            " [data-dependent]");
      }
      alternatives.push_back(node);
    }
    if (!any_row) return nullptr;
    return make_or(std::move(alternatives),
                   describe(deviation.failure_class, deviation.port,
                            block.path()));
  }

  // -- Backward traversal ------------------------------------------------------

  /// Resolves a deviation to be observed at input port `port`: follows the
  /// connection feeding it (or reports an environment event at the model
  /// boundary).
  FtNode* resolve_input(const Port& port, ChannelRange range,
                        FailureClass cls) {
    const Block& owner = port.owner();
    const Block* parent = owner.parent();
    if (parent == nullptr) {
      // Boundary input of the model root: the deviation originates in the
      // environment (sensor stimulus, pedal demand, ...).
      if (options_.environment ==
          SynthesisOptions::EnvironmentPolicy::kPrune)
        return nullptr;
      Deviation d{cls, port.name()};
      return tree_.add_basic(Symbol("env:" + d.to_string()), 0.0,
                             d.to_string() + " at the system boundary",
                             owner.path());
    }
    auto it = feed_.find(&port);
    const Connection* connection = it == feed_.end() ? nullptr : it->second;
    if (connection == nullptr) {
      // Validation normally rejects this; keep the synthesis total anyway.
      Deviation d{cls, port.name()};
      return tree_.add_undeveloped(
          Symbol("und:" + d.to_string() + "@" + owner.path()),
          d.to_string() + " on unconnected input", owner.path());
    }
    return resolve_output(*connection->from, range, cls);
  }

  /// Resolves a deviation at output port `port` against the block producing
  /// it. Memoised; cycles are cut here.
  FtNode* resolve_output(const Port& port, ChannelRange range,
                         FailureClass cls) {
    // Resource guards: a deadline or depth violation cuts the traversal
    // with a marked undeveloped leaf instead of running away (or blowing
    // the stack). Cut results are never memoised -- they bypass the memo
    // entirely.
    if (budget_.poll()) {
      return budget_cut(port, cls, "exceeded its deadline",
                        stats_.budget.deadline_exceeded);
    }
    if (stack_.size() >= budget_.max_depth) {
      return budget_cut(port, cls, "hit the traversal depth limit",
                        stats_.budget.depth_limited);
    }
    if (budget_.max_nodes != 0 && tree_.nodes().size() >= budget_.max_nodes) {
      return budget_cut(port, cls, "hit the fault-tree node ceiling",
                        stats_.budget.truncated);
    }

    Key key{&port, range.concrete(port.width()), cls};
    ++stats_.resolutions;

    if (options_.memoise) {
      if (auto it = memo_.find(key); it != memo_.end()) {
        ++stats_.cache_hits;
        return it->second;
      }
    }
    if (auto it = on_stack_.find(key); it != on_stack_.end()) {
      // Feedback loop: cut at the repeated target.
      ++stats_.loops_cut;
      taint_floor_ = std::min(taint_floor_, it->second);
      if (options_.loops == SynthesisOptions::LoopPolicy::kPrune)
        return nullptr;
      Deviation d{cls, port.name()};
      return tree_.add_loop(
          Symbol("loop:" + d.to_string() + "@" + port.owner().path()),
          d.to_string() + " feeds back to itself through a control loop",
          port.owner().path());
    }

    const std::size_t index = stack_.size();
    stack_.push_back(key);
    on_stack_.emplace(key, index);

    FtNode* result = resolve_output_uncached(port, key.range, cls);

    stack_.pop_back();
    on_stack_.erase(key);
    const bool tainted = index >= taint_floor_;
    if (stack_.size() <= taint_floor_) taint_floor_ = SIZE_MAX;
    if (options_.memoise && !tainted) memo_.emplace(key, result);
    return result;
  }

  FtNode* resolve_output_uncached(const Port& port, ChannelRange range,
                                  FailureClass cls) {
    const Block& block = port.owner();
    switch (block.kind()) {
      case BlockKind::kBasic:
        return resolve_basic(block, port, cls);
      case BlockKind::kSubsystem:
        return resolve_subsystem_output(block, port, range, cls);
      case BlockKind::kInport: {
        // Proxy inside a subsystem: continue from the subsystem's own
        // boundary input port of the same name (connected in the
        // grandparent, or the environment at the root).
        const Block* subsystem = block.parent();
        check_internal(subsystem != nullptr, "Inport proxy without parent");
        return resolve_input(subsystem->port(block.name()), range, cls);
      }
      case BlockKind::kMux:
        return resolve_mux(block, port, range, cls);
      case BlockKind::kDemux:
        return resolve_demux(block, port, range, cls);
      case BlockKind::kDataStoreRead:
        return resolve_store_read(block, cls);
      case BlockKind::kGround:
        return nullptr;  // a grounded flow never deviates
      case BlockKind::kOutport:
      case BlockKind::kDataStoreWrite:
        break;  // have no output ports; unreachable on valid models
    }
    throw Error(ErrorKind::kInternal,
                "resolve_output on block kind without outputs: " +
                    block.path());
  }

  FtNode* resolve_basic(const Block& block, const Port& port,
                        FailureClass cls) {
    const Deviation deviation{cls, port.name()};
    bool explained = false;
    FtNode* node = convert_rows(block, deviation, explained);

    // Gates built by convert()/convert_rows() for this call are fresh
    // (never memoised), so they are ours to relabel and extend in place.
    const bool owned_or_gate =
        node != nullptr && node->kind() == NodeKind::kGate &&
        node->gate() == GateKind::kOr &&
        (node->description().rfind("causes at", 0) == 0 ||
         node->description() == describe(cls, port.name(), block.path()));

    // Triggered blocks: loss of the control signal silences every output.
    if (options_.trigger_omission && cls == omission_) {
      if (const Port* trigger = block.trigger()) {
        FtNode* trigger_loss =
            resolve_input(*trigger, ChannelRange::whole(), omission_);
        if (owned_or_gate && trigger_loss != nullptr &&
            !is_house(trigger_loss)) {
          node->add_child(trigger_loss);
        } else {
          node = make_or({node, trigger_loss},
                         describe(cls, port.name(), block.path()));
        }
        explained = true;
      }
    }
    if (explained) {
      if (node != nullptr && node->kind() == NodeKind::kGate &&
          node->description().rfind("causes at", 0) == 0) {
        node->set_description(describe(cls, port.name(), block.path()));
      }
      return node;
    }

    // No annotation row explains this deviation.
    switch (options_.unannotated) {
      case SynthesisOptions::UnannotatedPolicy::kPrune:
        return nullptr;
      case SynthesisOptions::UnannotatedPolicy::kError:
        if (options_.sink != nullptr) {
          return degraded(deviation, block.path(),
                          "no hazard-analysis row covers it");
        }
        throw Error(ErrorKind::kAnalysis,
                    "component '" + block.path() +
                        "' has no hazard-analysis row for " +
                        deviation.to_string());
      case SynthesisOptions::UnannotatedPolicy::kPropagate: {
        std::vector<FtNode*> children;
        for (const Port* input : block.inputs()) {
          if (input->is_trigger()) continue;
          children.push_back(
              resolve_input(*input, ChannelRange::whole(), cls));
        }
        if (children.empty()) break;  // a source block: fall through
        return make_or(std::move(children),
                       describe(cls, port.name(), block.path()));
      }
      case SynthesisOptions::UnannotatedPolicy::kUndeveloped:
        break;
    }
    return tree_.add_undeveloped(
        Symbol("und:" + deviation.to_string() + "@" + block.path()),
        deviation.to_string() + " not covered by the hazard analysis of " +
            block.path(),
        block.path());
  }

  FtNode* resolve_mux(const Block& block, const Port& port, ChannelRange range,
                      FailureClass cls) {
    // A deviation on a slice of the muxed flow is a deviation on any
    // overlapped constituent flow.
    const ChannelRange r = range.concrete(port.width());
    std::vector<FtNode*> children;
    int offset = 0;
    for (const Port* input : block.inputs()) {
      const int lo = std::max(r.lo, offset);
      const int hi = std::min(r.hi, offset + input->width());
      if (lo < hi) {
        children.push_back(resolve_input(
            *input, ChannelRange::slice(lo - offset, hi - offset), cls));
      }
      offset += input->width();
    }
    return make_or(std::move(children),
                   describe(cls, port.name(), block.path()) + " [channels " +
                       r.to_string() + "]");
  }

  FtNode* resolve_demux(const Block& block, const Port& port,
                        ChannelRange range, FailureClass cls) {
    const ChannelRange r = range.concrete(port.width());
    int offset = 0;
    for (const Port* output : block.outputs()) {
      if (output == &port) break;
      offset += output->width();
    }
    std::vector<Port*> inputs = block.inputs();
    if (options_.sink != nullptr && inputs.size() != 1) {
      // Partial model: the demux lost its input port during recovery.
      return degraded(Deviation{cls, port.name()}, block.path(),
                      "malformed Demux (expected exactly one input)");
    }
    check_internal(inputs.size() == 1, "malformed demux");
    return resolve_input(*inputs.front(),
                         ChannelRange::slice(offset + r.lo, offset + r.hi),
                         cls);
  }

  FtNode* resolve_store_read(const Block& block, FailureClass cls) {
    // Data-Store read/write pairs communicate remotely without explicit
    // links (paper, section 3): trace every writer of the store.
    static const std::vector<const Block*> kNone;
    auto it = writers_.find(block.store_name());
    const std::vector<const Block*>& writers =
        it == writers_.end() ? kNone : it->second;
    if (writers.empty()) {
      Deviation d{cls, Symbol("out")};
      return tree_.add_undeveloped(
          Symbol("und:store:" + block.store_name().str() + ":" +
                 d.to_string()),
          "store '" + block.store_name().str() + "' read by " + block.path() +
              " is never written",
          block.path());
    }
    std::vector<FtNode*> children;
    for (const Block* writer : writers) {
      std::vector<Port*> inputs = writer->inputs();
      if (options_.sink != nullptr && inputs.size() != 1) {
        children.push_back(degraded(Deviation{cls, Symbol("in")},
                                    writer->path(),
                                    "malformed DataStoreWrite"));
        continue;
      }
      check_internal(inputs.size() == 1, "malformed DataStoreWrite");
      children.push_back(
          resolve_input(*inputs.front(), ChannelRange::whole(), cls));
    }
    return make_or(std::move(children),
                   std::string(cls.view()) + " of data store '" +
                       block.store_name().str() + "'");
  }

  const Model& model_;
  const SynthesisOptions& options_;
  SynthesisStats& stats_;
  FaultTree& tree_;
  Budget budget_;  ///< run-local copy: the deadline tick is per-traversal
  FailureClass omission_;

  std::unordered_map<Key, FtNode*, KeyHash> memo_;
  std::vector<Key> stack_;
  std::unordered_map<Key, std::size_t, KeyHash> on_stack_;
  std::size_t taint_floor_ = SIZE_MAX;
  std::unordered_map<const Port*, const Connection*> feed_;
  std::unordered_map<Symbol, std::vector<const Block*>> writers_;
};

}  // namespace

std::string condition_event_name(const Block& block,
                                 const Deviation& deviation,
                                 std::size_t row_index) {
  return "cond:" + deviation.to_string() + "@" + block.path() + "#" +
         std::to_string(row_index);
}

Synthesiser::Synthesiser(const Model& model, SynthesisOptions options)
    : model_(model), options_(options) {}

FaultTree Synthesiser::synthesise(const Deviation& top) {
  const Block& root = model_.root();
  const Port* port = root.find_port(top.port);
  require(port != nullptr && port->is_output(), ErrorKind::kLookup,
          "model '" + model_.name() + "' has no boundary output port '" +
              top.port.str() + "' for top event " + top.to_string());

  stats_ = SynthesisStats{};
  FaultTree tree(model_.name() + "__" + top.to_string());
  tree.set_top_description(top.to_string() + " at " + model_.name());

  Run run(model_, options_, stats_, tree);
  FtNode* node = run.resolve_subsystem_output(root, *port,
                                              ChannelRange::whole(),
                                              top.failure_class);
  tree.set_top(node);
  if (options_.deduplicate) return deduplicate(tree);
  return tree;
}

FaultTree Synthesiser::synthesise(std::string_view top) {
  return synthesise(parse_deviation(top, model_.registry()));
}

std::vector<FaultTree> synthesise_parallel(const Model& model,
                                           const std::vector<Deviation>& tops,
                                           const SynthesisOptions& options,
                                           ThreadPool* pool) {
  // Per-iteration synthesiser: traversal state and stats are not shared;
  // the model is read-only and the budget copies share one deadline latch.
  return parallel_map(pool, tops.size(), [&](std::size_t index) {
    Synthesiser synthesiser(model, options);
    return synthesiser.synthesise(tops[index]);
  });
}

std::vector<FaultTree> synthesise_parallel(const Model& model,
                                           const std::vector<Deviation>& tops,
                                           SynthesisOptions options,
                                           int threads) {
  if (threads <= 0) threads = static_cast<int>(ThreadPool::hardware_threads());
  threads = std::min<int>(threads, static_cast<int>(tops.size()));
  if (threads <= 1) return synthesise_parallel(model, tops, options, nullptr);
  ThreadPool pool(threads);
  return synthesise_parallel(model, tops, options, &pool);
}

std::vector<FaultTree> Synthesiser::synthesise_all() {
  std::vector<FaultTree> trees;
  for (const Port* port : model_.root().outputs()) {
    for (FailureClass cls : model_.registry().all()) {
      FaultTree tree = synthesise(Deviation{cls, port->name()});
      if (tree.top() != nullptr) trees.push_back(std::move(tree));
    }
  }
  return trees;
}

}  // namespace ftsynth
