#include "fta/fault_tree.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

std::string_view to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kBasic:
      return "basic";
    case NodeKind::kHouse:
      return "house";
    case NodeKind::kUndeveloped:
      return "undeveloped";
    case NodeKind::kLoop:
      return "loop";
    case NodeKind::kGate:
      return "gate";
  }
  return "unknown";
}

std::string_view to_string(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kAnd:
      return "AND";
    case GateKind::kOr:
      return "OR";
    case GateKind::kNot:
      return "NOT";
    case GateKind::kPand:
      return "PAND";
  }
  return "unknown";
}

void FtNode::add_child(FtNode* child) {
  check_internal(kind_ == NodeKind::kGate, "only gates have children");
  check_internal(child != nullptr, "null fault tree child");
  children_.push_back(child);
}

FaultTree::FaultTree(std::string name) : name_(std::move(name)) {}

FtNode* FaultTree::add_node(NodeKind kind, GateKind gate, Symbol name) {
  nodes_.push_back(std::make_unique<FtNode>(
      static_cast<int>(nodes_.size()), kind, gate, name));
  FtNode* node = nodes_.back().get();
  if (kind != NodeKind::kGate) leaf_index_.emplace(name, node);
  return node;
}

FtNode* FaultTree::add_basic(Symbol name, double rate,
                             std::string description, std::string origin) {
  if (FtNode* existing = find_event(name)) {
    check_internal(existing->kind() == NodeKind::kBasic,
                   "event '" + name.str() + "' reused with a different kind");
    return existing;
  }
  FtNode* node = add_node(NodeKind::kBasic, GateKind::kOr, name);
  node->set_rate(rate);
  node->set_description(std::move(description));
  node->set_origin(std::move(origin));
  return node;
}

FtNode* FaultTree::add_house(Symbol name, std::string description) {
  if (FtNode* existing = find_event(name)) return existing;
  FtNode* node = add_node(NodeKind::kHouse, GateKind::kOr, name);
  node->set_description(std::move(description));
  return node;
}

FtNode* FaultTree::add_undeveloped(Symbol name, std::string description,
                                   std::string origin) {
  if (FtNode* existing = find_event(name)) return existing;
  FtNode* node = add_node(NodeKind::kUndeveloped, GateKind::kOr, name);
  node->set_description(std::move(description));
  node->set_origin(std::move(origin));
  return node;
}

FtNode* FaultTree::add_loop(Symbol name, std::string description,
                            std::string origin) {
  if (FtNode* existing = find_event(name)) return existing;
  FtNode* node = add_node(NodeKind::kLoop, GateKind::kOr, name);
  node->set_description(std::move(description));
  node->set_origin(std::move(origin));
  return node;
}

FtNode* FaultTree::add_gate(GateKind kind, std::string description,
                            std::vector<FtNode*> children) {
  check_internal(!children.empty(), "gate needs at least one child");
  check_internal(kind != GateKind::kNot || children.size() == 1,
                 "NOT gate needs exactly one child");
  FtNode* node = add_node(NodeKind::kGate, kind,
                          Symbol("G" + std::to_string(next_gate_number_++)));
  node->set_description(std::move(description));
  for (FtNode* child : children) node->add_child(child);
  return node;
}

FtNode* FaultTree::find_event(Symbol name) const noexcept {
  auto it = leaf_index_.find(name);
  return it == leaf_index_.end() ? nullptr : it->second;
}

void FaultTree::for_each_reachable(
    const std::function<void(const FtNode&)>& visit) const {
  if (top_ == nullptr) return;
  std::unordered_set<const FtNode*> seen;
  // Iterative postorder over the DAG.
  std::vector<std::pair<const FtNode*, bool>> stack{{top_, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      visit(*node);
      continue;
    }
    if (!seen.insert(node).second) continue;
    stack.push_back({node, true});
    for (const FtNode* child : node->children())
      stack.push_back({child, false});
  }
}

std::vector<const FtNode*> FaultTree::basic_events() const {
  std::vector<const FtNode*> out;
  for_each_reachable([&](const FtNode& node) {
    if (node.kind() == NodeKind::kBasic) out.push_back(&node);
  });
  std::sort(out.begin(), out.end(),
            [](const FtNode* a, const FtNode* b) { return a->id() < b->id(); });
  return out;
}

std::vector<const FtNode*> FaultTree::leaves() const {
  std::vector<const FtNode*> out;
  for_each_reachable([&](const FtNode& node) {
    if (node.is_leaf()) out.push_back(&node);
  });
  std::sort(out.begin(), out.end(),
            [](const FtNode* a, const FtNode* b) { return a->id() < b->id(); });
  return out;
}

FaultTreeStats FaultTree::stats() const {
  FaultTreeStats stats;
  if (top_ == nullptr) return stats;
  // Depth and expanded size need per-node values computed children-first.
  std::unordered_map<const FtNode*, int> depth;
  std::unordered_map<const FtNode*, std::size_t> expanded;
  for_each_reachable([&](const FtNode& node) {
    ++stats.node_count;
    switch (node.kind()) {
      case NodeKind::kGate:
        ++stats.gate_count;
        break;
      case NodeKind::kBasic:
        ++stats.basic_event_count;
        break;
      case NodeKind::kUndeveloped:
        ++stats.undeveloped_count;
        break;
      case NodeKind::kLoop:
        ++stats.loop_count;
        break;
      case NodeKind::kHouse:
        break;
    }
    int d = 0;
    std::size_t size = 1;
    for (const FtNode* child : node.children()) {
      d = std::max(d, depth[child] + 1);
      size += expanded[child];
    }
    depth[&node] = d;
    expanded[&node] = size;
  });
  stats.depth = depth[top_];
  stats.expanded_size = expanded[top_];
  return stats;
}

namespace {

void render(const FtNode& node, int indent, std::unordered_set<int>& printed,
            std::string& out) {
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
  const bool shared_reference =
      node.kind() == NodeKind::kGate && !printed.insert(node.id()).second;
  switch (node.kind()) {
    case NodeKind::kGate:
      out += std::string(node.name().view()) + " [" +
             std::string(to_string(node.gate())) + "] " + node.description();
      if (shared_reference) {
        out += "  ^(shared, expanded above)\n";
        return;
      }
      out += "\n";
      for (const FtNode* child : node.children())
        render(*child, indent + 1, printed, out);
      return;
    case NodeKind::kBasic:
      out += "* " + std::string(node.name().view());
      if (node.rate() > 0.0) out += "  lambda=" + format_double(node.rate());
      break;
    case NodeKind::kHouse:
      out += "[house] " + std::string(node.name().view());
      break;
    case NodeKind::kUndeveloped:
      out += "<undeveloped> " + std::string(node.name().view());
      break;
    case NodeKind::kLoop:
      out += "<loop> " + std::string(node.name().view());
      break;
  }
  if (!node.description().empty()) out += "  -- " + node.description();
  out += "\n";
}

}  // namespace

std::string FaultTree::to_text() const {
  std::string out = "Fault tree: " + name_ + "\nTop event: " + top_desc_ + "\n";
  if (top_ == nullptr) {
    out += "  (no causes -- top event cannot occur in this model)\n";
    return out;
  }
  std::unordered_set<int> printed;
  render(*top_, 1, printed, out);
  return out;
}

}  // namespace ftsynth
