#include "fta/simplify.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>

#include "core/error.h"

namespace ftsynth {

namespace {

class Normaliser {
 public:
  Normaliser(const FaultTree& source, FaultTree& target)
      : source_(source), target_(target) {}

  FtNode* run() { return rebuild(source_.top(), /*negated=*/false); }

 private:
  // nullptr encodes constant false; a kHouse node encodes constant true.
  static bool is_house(const FtNode* node) noexcept {
    return node != nullptr && node->kind() == NodeKind::kHouse;
  }

  FtNode* house() {
    return target_.add_house(Symbol("always"), "condition fixed true");
  }

  FtNode* rebuild(const FtNode* node, bool negated) {
    if (node == nullptr) return negated ? house() : nullptr;
    auto key = std::make_pair(node, negated);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    FtNode* result = rebuild_uncached(node, negated);
    memo_.emplace(key, result);
    return result;
  }

  FtNode* rebuild_uncached(const FtNode* node, bool negated) {
    switch (node->kind()) {
      case NodeKind::kHouse:
        return negated ? nullptr : house();
      case NodeKind::kBasic:
      case NodeKind::kUndeveloped:
      case NodeKind::kLoop: {
        FtNode* leaf = copy_leaf(node);
        if (!negated) return leaf;
        return target_.add_gate(GateKind::kNot,
                                "NOT " + std::string(node->name().view()),
                                {leaf});
      }
      case NodeKind::kGate:
        break;
    }
    if (node->gate() == GateKind::kNot)
      return rebuild(node->children().front(), !negated);
    if (node->gate() == GateKind::kPand) {
      // Order-significant: no flattening, no deduplication, no De Morgan.
      require(!negated, ErrorKind::kAnalysis,
              "NOT over a PAND gate is not supported");
      std::vector<FtNode*> children;
      children.reserve(node->children().size());
      for (const FtNode* child : node->children()) {
        FtNode* rebuilt = rebuild(child, false);
        if (rebuilt == nullptr) return nullptr;  // a child cannot occur
        if (is_house(rebuilt)) continue;          // always-true child
        children.push_back(rebuilt);
      }
      if (children.empty()) return house();
      if (children.size() == 1) return children.front();
      return target_.add_gate(GateKind::kPand, node->description(),
                              std::move(children));
    }

    // De Morgan: a negated AND becomes an OR of negated children.
    const bool is_and = (node->gate() == GateKind::kAnd) != negated;
    std::vector<FtNode*> children;
    for (const FtNode* child : node->children()) {
      FtNode* rebuilt = rebuild(child, negated);
      if (is_and) {
        if (rebuilt == nullptr) return nullptr;  // AND with false
        if (is_house(rebuilt)) continue;          // AND with true
      } else {
        if (rebuilt == nullptr) continue;         // OR with false
        if (is_house(rebuilt)) return rebuilt;    // OR with true
      }
      // Flatten a same-kind gate child.
      const bool same_kind =
          rebuilt->kind() == NodeKind::kGate &&
          rebuilt->gate() == (is_and ? GateKind::kAnd : GateKind::kOr);
      if (same_kind) {
        for (FtNode* grandchild : rebuilt->children()) {
          if (std::find(children.begin(), children.end(), grandchild) ==
              children.end())
            children.push_back(grandchild);
        }
      } else if (std::find(children.begin(), children.end(), rebuilt) ==
                 children.end()) {
        children.push_back(rebuilt);
      }
    }
    if (children.empty()) return is_and ? house() : nullptr;
    if (children.size() == 1) return children.front();
    return target_.add_gate(is_and ? GateKind::kAnd : GateKind::kOr,
                            node->description(), std::move(children));
  }

  FtNode* copy_leaf(const FtNode* node) {
    switch (node->kind()) {
      case NodeKind::kBasic: {
        FtNode* copy = target_.add_basic(node->name(), node->rate(),
                                         node->description(), node->origin());
        if (node->has_fixed_probability())
          copy->set_fixed_probability(node->fixed_probability());
        return copy;
      }
      case NodeKind::kUndeveloped:
        return target_.add_undeveloped(node->name(), node->description(),
                                       node->origin());
      case NodeKind::kLoop:
        return target_.add_loop(node->name(), node->description(),
                                node->origin());
      default:
        throw Error(ErrorKind::kInternal, "copy_leaf on a non-leaf");
    }
  }

  struct PairHash {
    std::size_t operator()(
        const std::pair<const FtNode*, bool>& key) const noexcept {
      return std::hash<const void*>{}(key.first) * 2 +
             (key.second ? 1 : 0);
    }
  };

  const FaultTree& source_;
  FaultTree& target_;
  std::unordered_map<std::pair<const FtNode*, bool>, FtNode*, PairHash> memo_;
};

}  // namespace

FaultTree normalise(const FaultTree& tree) {
  FaultTree out(tree.name());
  out.set_top_description(tree.top_description());
  out.set_top(Normaliser(tree, out).run());
  return out;
}

FaultTree deduplicate(const FaultTree& tree) {
  FaultTree out(tree.name());
  out.set_top_description(tree.top_description());
  if (tree.top() == nullptr) return out;

  // Children-first rebuild; gates are interned on (kind, sorted child ids).
  struct GateKey {
    GateKind kind;
    std::vector<int> children;  // new-tree node ids, sorted
    bool operator==(const GateKey& other) const noexcept {
      return kind == other.kind && children == other.children;
    }
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& key) const noexcept {
      std::size_t h = static_cast<std::size_t>(key.kind);
      for (int id : key.children)
        h = h * 1000003u ^ static_cast<std::size_t>(id);
      return h;
    }
  };
  std::unordered_map<GateKey, FtNode*, GateKeyHash> interned;
  std::unordered_map<const FtNode*, FtNode*> rebuilt;

  tree.for_each_reachable([&](const FtNode& node) {
    FtNode* copy = nullptr;
    switch (node.kind()) {
      case NodeKind::kBasic:
        copy = out.add_basic(node.name(), node.rate(), node.description(),
                             node.origin());
        if (node.has_fixed_probability())
          copy->set_fixed_probability(node.fixed_probability());
        break;
      case NodeKind::kHouse:
        copy = out.add_house(node.name(), node.description());
        break;
      case NodeKind::kUndeveloped:
        copy = out.add_undeveloped(node.name(), node.description(),
                                   node.origin());
        break;
      case NodeKind::kLoop:
        copy = out.add_loop(node.name(), node.description(), node.origin());
        break;
      case NodeKind::kGate: {
        // PAND is order-significant: keep duplicates and child order.
        const bool ordered = node.gate() == GateKind::kPand;
        GateKey key{node.gate(), {}};
        std::vector<FtNode*> children;
        children.reserve(node.children().size());
        for (const FtNode* child : node.children()) {
          FtNode* mapped = rebuilt.at(child);
          // Drop duplicate children inside one gate (X OR X == X).
          if (ordered || std::find(children.begin(), children.end(),
                                   mapped) == children.end())
            children.push_back(mapped);
        }
        if (children.size() == 1 && node.gate() != GateKind::kNot) {
          copy = children.front();
          break;
        }
        for (const FtNode* child : children) key.children.push_back(child->id());
        if (!ordered) std::sort(key.children.begin(), key.children.end());
        if (auto it = interned.find(key); it != interned.end()) {
          copy = it->second;
          break;
        }
        copy = out.add_gate(node.gate(), node.description(),
                            std::move(children));
        interned.emplace(std::move(key), copy);
        break;
      }
    }
    rebuilt.emplace(&node, copy);
  });
  out.set_top(rebuilt.at(tree.top()));
  return out;
}

namespace {

/// Incremental 128-bit mixer. Deterministic by construction: only the fed
/// bytes and fixed constants enter the state, never pointers or
/// std::hash. Each 64-bit word is folded into both lanes with different
/// odd multipliers and a cross-feed, then the final value gets a
/// splitmix-style avalanche per lane so single-bit input differences
/// spread over the whole 128-bit output.
class HashMixer {
 public:
  void feed(std::uint64_t word) noexcept {
    lo_ = (std::rotl(lo_ ^ word, 27)) * 0x9E3779B97F4A7C15ULL;
    hi_ = (std::rotl(hi_ + word, 31)) * 0xC2B2AE3D27D4EB4FULL + lo_;
  }

  void feed_bytes(std::string_view bytes) noexcept {
    std::uint64_t word = 0;
    int filled = 0;
    for (unsigned char byte : bytes) {
      word |= static_cast<std::uint64_t>(byte) << (8 * filled);
      if (++filled == 8) {
        feed(word);
        word = 0;
        filled = 0;
      }
    }
    // Length-extension guard: the tail word carries the byte count.
    feed(word ^ (static_cast<std::uint64_t>(bytes.size()) << 56));
  }

  void feed_double(double value) noexcept {
    feed(std::bit_cast<std::uint64_t>(value));
  }

  StructuralHash finish() const noexcept {
    return {avalanche(hi_ ^ 0x165667B19E3779F9ULL),
            avalanche(lo_ + 0x27D4EB2F165667C5ULL)};
  }

 private:
  static std::uint64_t avalanche(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t lo_ = 0x6C62272E07BB0142ULL;
  std::uint64_t hi_ = 0x62B821756295C58DULL;
};

}  // namespace

std::string StructuralHash::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

std::optional<StructuralHash> StructuralHash::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  StructuralHash hash;
  for (int i = 0; i < 32; ++i) {
    const char c = text[static_cast<std::size_t>(i)];
    std::uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    std::uint64_t& lane = i < 16 ? hash.hi : hash.lo;
    lane = (lane << 4) | nibble;
  }
  return hash;
}

std::unordered_map<const FtNode*, StructuralHash, std::hash<const FtNode*>>
structural_hashes(const FaultTree& tree) {
  std::unordered_map<const FtNode*, StructuralHash, std::hash<const FtNode*>>
      hashes;
  // for_each_reachable is postorder over the DAG: children are hashed
  // before any parent asks for them.
  tree.for_each_reachable([&](const FtNode& node) {
    HashMixer mixer;
    mixer.feed(static_cast<std::uint64_t>(node.kind()));
    if (node.is_leaf()) {
      // Event identity and quantification; descriptions and origins are
      // presentation-only and deliberately excluded.
      mixer.feed_bytes(node.name().view());
      mixer.feed_double(node.rate());
      mixer.feed_double(node.has_fixed_probability() ? node.fixed_probability()
                                                     : -1.0);
    } else {
      mixer.feed(static_cast<std::uint64_t>(node.gate()));
      mixer.feed(node.children().size());
      std::vector<StructuralHash> children;
      children.reserve(node.children().size());
      for (const FtNode* child : node.children())
        children.push_back(hashes.at(child));
      // AND/OR/NOT are child-order-insensitive (X AND Y == Y AND X);
      // PAND is order-significant, exactly as in deduplicate().
      if (node.gate() != GateKind::kPand)
        std::sort(children.begin(), children.end());
      for (const StructuralHash& child : children) {
        mixer.feed(child.hi);
        mixer.feed(child.lo);
      }
    }
    hashes.emplace(&node, mixer.finish());
  });
  return hashes;
}

StructuralHash structural_hash(const FaultTree& tree) {
  if (tree.top() == nullptr) return {};
  return structural_hashes(tree).at(tree.top());
}

bool is_normalised(const FaultTree& tree) {
  bool ok = true;
  tree.for_each_reachable([&](const FtNode& node) {
    if (node.kind() != NodeKind::kGate) return;
    if (node.gate() == GateKind::kNot) {
      if (!node.children().front()->is_leaf()) ok = false;
      return;
    }
    if (node.gate() == GateKind::kPand) return;  // never flattened
    for (const FtNode* child : node.children()) {
      if (child->kind() == NodeKind::kGate && child->gate() == node.gate())
        ok = false;
    }
  });
  return ok;
}

}  // namespace ftsynth
