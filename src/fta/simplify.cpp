#include "fta/simplify.h"

#include <algorithm>
#include <unordered_map>

#include "core/error.h"

namespace ftsynth {

namespace {

class Normaliser {
 public:
  Normaliser(const FaultTree& source, FaultTree& target)
      : source_(source), target_(target) {}

  FtNode* run() { return rebuild(source_.top(), /*negated=*/false); }

 private:
  // nullptr encodes constant false; a kHouse node encodes constant true.
  static bool is_house(const FtNode* node) noexcept {
    return node != nullptr && node->kind() == NodeKind::kHouse;
  }

  FtNode* house() {
    return target_.add_house(Symbol("always"), "condition fixed true");
  }

  FtNode* rebuild(const FtNode* node, bool negated) {
    if (node == nullptr) return negated ? house() : nullptr;
    auto key = std::make_pair(node, negated);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    FtNode* result = rebuild_uncached(node, negated);
    memo_.emplace(key, result);
    return result;
  }

  FtNode* rebuild_uncached(const FtNode* node, bool negated) {
    switch (node->kind()) {
      case NodeKind::kHouse:
        return negated ? nullptr : house();
      case NodeKind::kBasic:
      case NodeKind::kUndeveloped:
      case NodeKind::kLoop: {
        FtNode* leaf = copy_leaf(node);
        if (!negated) return leaf;
        return target_.add_gate(GateKind::kNot,
                                "NOT " + std::string(node->name().view()),
                                {leaf});
      }
      case NodeKind::kGate:
        break;
    }
    if (node->gate() == GateKind::kNot)
      return rebuild(node->children().front(), !negated);
    if (node->gate() == GateKind::kPand) {
      // Order-significant: no flattening, no deduplication, no De Morgan.
      require(!negated, ErrorKind::kAnalysis,
              "NOT over a PAND gate is not supported");
      std::vector<FtNode*> children;
      children.reserve(node->children().size());
      for (const FtNode* child : node->children()) {
        FtNode* rebuilt = rebuild(child, false);
        if (rebuilt == nullptr) return nullptr;  // a child cannot occur
        if (is_house(rebuilt)) continue;          // always-true child
        children.push_back(rebuilt);
      }
      if (children.empty()) return house();
      if (children.size() == 1) return children.front();
      return target_.add_gate(GateKind::kPand, node->description(),
                              std::move(children));
    }

    // De Morgan: a negated AND becomes an OR of negated children.
    const bool is_and = (node->gate() == GateKind::kAnd) != negated;
    std::vector<FtNode*> children;
    for (const FtNode* child : node->children()) {
      FtNode* rebuilt = rebuild(child, negated);
      if (is_and) {
        if (rebuilt == nullptr) return nullptr;  // AND with false
        if (is_house(rebuilt)) continue;          // AND with true
      } else {
        if (rebuilt == nullptr) continue;         // OR with false
        if (is_house(rebuilt)) return rebuilt;    // OR with true
      }
      // Flatten a same-kind gate child.
      const bool same_kind =
          rebuilt->kind() == NodeKind::kGate &&
          rebuilt->gate() == (is_and ? GateKind::kAnd : GateKind::kOr);
      if (same_kind) {
        for (FtNode* grandchild : rebuilt->children()) {
          if (std::find(children.begin(), children.end(), grandchild) ==
              children.end())
            children.push_back(grandchild);
        }
      } else if (std::find(children.begin(), children.end(), rebuilt) ==
                 children.end()) {
        children.push_back(rebuilt);
      }
    }
    if (children.empty()) return is_and ? house() : nullptr;
    if (children.size() == 1) return children.front();
    return target_.add_gate(is_and ? GateKind::kAnd : GateKind::kOr,
                            node->description(), std::move(children));
  }

  FtNode* copy_leaf(const FtNode* node) {
    switch (node->kind()) {
      case NodeKind::kBasic: {
        FtNode* copy = target_.add_basic(node->name(), node->rate(),
                                         node->description(), node->origin());
        if (node->has_fixed_probability())
          copy->set_fixed_probability(node->fixed_probability());
        return copy;
      }
      case NodeKind::kUndeveloped:
        return target_.add_undeveloped(node->name(), node->description(),
                                       node->origin());
      case NodeKind::kLoop:
        return target_.add_loop(node->name(), node->description(),
                                node->origin());
      default:
        throw Error(ErrorKind::kInternal, "copy_leaf on a non-leaf");
    }
  }

  struct PairHash {
    std::size_t operator()(
        const std::pair<const FtNode*, bool>& key) const noexcept {
      return std::hash<const void*>{}(key.first) * 2 +
             (key.second ? 1 : 0);
    }
  };

  const FaultTree& source_;
  FaultTree& target_;
  std::unordered_map<std::pair<const FtNode*, bool>, FtNode*, PairHash> memo_;
};

}  // namespace

FaultTree normalise(const FaultTree& tree) {
  FaultTree out(tree.name());
  out.set_top_description(tree.top_description());
  out.set_top(Normaliser(tree, out).run());
  return out;
}

FaultTree deduplicate(const FaultTree& tree) {
  FaultTree out(tree.name());
  out.set_top_description(tree.top_description());
  if (tree.top() == nullptr) return out;

  // Children-first rebuild; gates are interned on (kind, sorted child ids).
  struct GateKey {
    GateKind kind;
    std::vector<int> children;  // new-tree node ids, sorted
    bool operator==(const GateKey& other) const noexcept {
      return kind == other.kind && children == other.children;
    }
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& key) const noexcept {
      std::size_t h = static_cast<std::size_t>(key.kind);
      for (int id : key.children)
        h = h * 1000003u ^ static_cast<std::size_t>(id);
      return h;
    }
  };
  std::unordered_map<GateKey, FtNode*, GateKeyHash> interned;
  std::unordered_map<const FtNode*, FtNode*> rebuilt;

  tree.for_each_reachable([&](const FtNode& node) {
    FtNode* copy = nullptr;
    switch (node.kind()) {
      case NodeKind::kBasic:
        copy = out.add_basic(node.name(), node.rate(), node.description(),
                             node.origin());
        if (node.has_fixed_probability())
          copy->set_fixed_probability(node.fixed_probability());
        break;
      case NodeKind::kHouse:
        copy = out.add_house(node.name(), node.description());
        break;
      case NodeKind::kUndeveloped:
        copy = out.add_undeveloped(node.name(), node.description(),
                                   node.origin());
        break;
      case NodeKind::kLoop:
        copy = out.add_loop(node.name(), node.description(), node.origin());
        break;
      case NodeKind::kGate: {
        // PAND is order-significant: keep duplicates and child order.
        const bool ordered = node.gate() == GateKind::kPand;
        GateKey key{node.gate(), {}};
        std::vector<FtNode*> children;
        children.reserve(node.children().size());
        for (const FtNode* child : node.children()) {
          FtNode* mapped = rebuilt.at(child);
          // Drop duplicate children inside one gate (X OR X == X).
          if (ordered || std::find(children.begin(), children.end(),
                                   mapped) == children.end())
            children.push_back(mapped);
        }
        if (children.size() == 1 && node.gate() != GateKind::kNot) {
          copy = children.front();
          break;
        }
        for (const FtNode* child : children) key.children.push_back(child->id());
        if (!ordered) std::sort(key.children.begin(), key.children.end());
        if (auto it = interned.find(key); it != interned.end()) {
          copy = it->second;
          break;
        }
        copy = out.add_gate(node.gate(), node.description(),
                            std::move(children));
        interned.emplace(std::move(key), copy);
        break;
      }
    }
    rebuilt.emplace(&node, copy);
  });
  out.set_top(rebuilt.at(tree.top()));
  return out;
}

bool is_normalised(const FaultTree& tree) {
  bool ok = true;
  tree.for_each_reachable([&](const FtNode& node) {
    if (node.kind() != NodeKind::kGate) return;
    if (node.gate() == GateKind::kNot) {
      if (!node.children().front()->is_leaf()) ok = false;
      return;
    }
    if (node.gate() == GateKind::kPand) return;  // never flattened
    for (const FtNode* child : node.children()) {
      if (child->kind() == NodeKind::kGate && child->gate() == node.gate())
        ok = false;
    }
  });
  return ok;
}

}  // namespace ftsynth
