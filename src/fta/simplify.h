// Fault tree normalisation.
//
// Synthesised trees are already compact (constant-folded, deduplicated,
// single-child-free), but cut-set analysis wants a stricter shape. normalise
// rebuilds a tree so that:
//
//   * NOT gates are pushed down to the leaves (negation normal form) via
//     De Morgan's laws, so every remaining gate is AND/OR and negation only
//     ever wraps a single leaf event;
//   * nested gates of the same kind are flattened (OR of OR -> one OR);
//   * duplicate children are removed;
//   * house events are folded away (true absorbs OR, disappears from AND).
//
// Sharing (the DAG property) is preserved: each (node, polarity) pair is
// rebuilt once.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "fta/fault_tree.h"

namespace ftsynth {

/// Returns a normalised copy of `tree` (see above). The input is not
/// modified. Leaf names, rates and descriptions are preserved.
FaultTree normalise(const FaultTree& tree);

/// True if no NOT gate in `tree` has a non-leaf child and no gate nests a
/// gate of the same kind (the shape normalise() guarantees).
bool is_normalised(const FaultTree& tree);

/// Structural hash-consing: rebuilds `tree` so that structurally identical
/// subtrees (same gate kind, same children, order-insensitive) become one
/// shared node. Unlike normalise() the gate structure is preserved --
/// nothing is flattened or re-polarised -- so the rendered tree keeps its
/// shape while duplicate expansions (e.g. from loop-cut re-resolution)
/// collapse. Gate descriptions of merged nodes keep the first copy's text.
FaultTree deduplicate(const FaultTree& tree);

/// A stable 128-bit structural hash of a fault-tree cone. Two nodes -- in
/// the same tree, in different trees, or in different *processes* -- get
/// the same hash exactly when their cones are structurally identical:
/// same node kind, same event name, same quantification (rate / fixed
/// probability), same gate kind and, recursively, the same child cones
/// (order-insensitive for AND/OR/NOT, order-significant for PAND, mirroring
/// deduplicate()). No pointer or std::hash input is used, so the value is
/// a valid cross-run cache key (analysis/cache.h).
struct StructuralHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const StructuralHash& a,
                         const StructuralHash& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const StructuralHash& a,
                         const StructuralHash& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const StructuralHash& a,
                        const StructuralHash& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits (hi first); from_hex() round-trips it.
  std::string to_hex() const;
  static std::optional<StructuralHash> from_hex(std::string_view text);
};

/// Hasher for unordered containers keyed by StructuralHash. The value is
/// already uniformly mixed, so folding the lanes is enough.
struct StructuralHashHasher {
  std::size_t operator()(const StructuralHash& h) const noexcept {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Per-node structural hashes for every node reachable from the top of
/// `tree` (empty map when there is no top). One postorder pass; O(nodes +
/// edges).
std::unordered_map<const FtNode*, StructuralHash, std::hash<const FtNode*>>
structural_hashes(const FaultTree& tree);

/// Structural hash of the whole tree (its top cone); the zero hash when
/// the tree has no top.
StructuralHash structural_hash(const FaultTree& tree);

}  // namespace ftsynth
