// Fault tree normalisation.
//
// Synthesised trees are already compact (constant-folded, deduplicated,
// single-child-free), but cut-set analysis wants a stricter shape. normalise
// rebuilds a tree so that:
//
//   * NOT gates are pushed down to the leaves (negation normal form) via
//     De Morgan's laws, so every remaining gate is AND/OR and negation only
//     ever wraps a single leaf event;
//   * nested gates of the same kind are flattened (OR of OR -> one OR);
//   * duplicate children are removed;
//   * house events are folded away (true absorbs OR, disappears from AND).
//
// Sharing (the DAG property) is preserved: each (node, polarity) pair is
// rebuilt once.

#pragma once

#include "fta/fault_tree.h"

namespace ftsynth {

/// Returns a normalised copy of `tree` (see above). The input is not
/// modified. Leaf names, rates and descriptions are preserved.
FaultTree normalise(const FaultTree& tree);

/// True if no NOT gate in `tree` has a non-leaf child and no gate nests a
/// gate of the same kind (the shape normalise() guarantees).
bool is_normalised(const FaultTree& tree);

/// Structural hash-consing: rebuilds `tree` so that structurally identical
/// subtrees (same gate kind, same children, order-insensitive) become one
/// shared node. Unlike normalise() the gate structure is preserved --
/// nothing is flattened or re-polarised -- so the rendered tree keeps its
/// shape while duplicate expansions (e.g. from loop-cut re-resolution)
/// collapse. Gate descriptions of merged nodes keep the first copy's text.
FaultTree deduplicate(const FaultTree& tree);

}  // namespace ftsynth
