// Fault trees.
//
// The synthesis algorithm produces, for each hazardous deviation at a
// system output, a fault tree whose leaves are component malfunctions,
// environment deviations at the system boundary, and (optionally)
// undeveloped events. Structurally the tree is a rooted DAG: traversal
// results are memoised on (port, channels, failure class), so a shared
// cause -- a hardware common-cause failure, a shared bus -- appears as one
// node referenced from several gates. That sharing is exactly what lets
// cut-set analysis expose common-cause dependencies between nominally
// independent channels (paper, section 2).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/symbol.h"
#include "failure/failure_class.h"

namespace ftsynth {

enum class NodeKind {
  kBasic,        ///< leaf: component malfunction or environment deviation
  kHouse,        ///< leaf: condition fixed true (from a `true` cause)
  kUndeveloped,  ///< leaf: cause not developed (unannotated component, ...)
  kLoop,         ///< leaf: cut point of a feedback loop (LoopPolicy::kEvent)
  kGate,         ///< intermediate event with a gate
};

enum class GateKind {
  kAnd,
  kOr,
  kNot,
  /// Priority-AND (Pandora lineage): every child occurs AND in
  /// left-to-right order. Children are ORDER-SIGNIFICANT; see
  /// analysis/temporal.h for quantification. The untimed engines
  /// (cut sets, BDD) treat kPand conservatively as kAnd.
  kPand,
};

std::string_view to_string(NodeKind kind) noexcept;
std::string_view to_string(GateKind kind) noexcept;

/// One node of a fault tree. Owned by the FaultTree arena; children are
/// non-owning pointers into the same arena (DAG: a node may have several
/// parents).
class FtNode {
 public:
  FtNode(int id, NodeKind kind, GateKind gate, Symbol name) noexcept
      : id_(id), kind_(kind), gate_(gate), name_(name) {}

  FtNode(const FtNode&) = delete;
  FtNode& operator=(const FtNode&) = delete;

  int id() const noexcept { return id_; }
  NodeKind kind() const noexcept { return kind_; }
  bool is_leaf() const noexcept { return kind_ != NodeKind::kGate; }

  /// Gate operator; only meaningful for kGate nodes.
  GateKind gate() const noexcept { return gate_; }

  const std::vector<FtNode*>& children() const noexcept { return children_; }
  void add_child(FtNode* child);

  /// Unique event name ("pedal/sensor1.stuck", "G17", "env:Omission-pedal").
  Symbol name() const noexcept { return name_; }

  /// Human-readable description ("Omission-out at bbw/pedal_node").
  const std::string& description() const noexcept { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

  /// Failure rate lambda in failures/hour; > 0 only on quantified kBasic
  /// leaves.
  double rate() const noexcept { return rate_; }
  void set_rate(double rate) noexcept { rate_ = rate; }

  /// Mission-time-independent probability (condition events from
  /// data-dependent annotation rows). Takes precedence over rate().
  bool has_fixed_probability() const noexcept {
    return fixed_probability_ >= 0.0;
  }
  double fixed_probability() const noexcept { return fixed_probability_; }
  void set_fixed_probability(double probability) noexcept {
    fixed_probability_ = probability;
  }

  /// Path of the model block this event originates from (leaves and gates).
  const std::string& origin() const noexcept { return origin_; }
  void set_origin(std::string origin) { origin_ = std::move(origin); }

 private:
  int id_;
  NodeKind kind_;
  GateKind gate_;
  Symbol name_;
  std::vector<FtNode*> children_;
  std::string description_;
  double rate_ = 0.0;
  double fixed_probability_ = -1.0;
  std::string origin_;
};

/// Statistics of a tree, reported by benches and the paper-style reports.
struct FaultTreeStats {
  std::size_t node_count = 0;         ///< distinct nodes in the DAG
  std::size_t gate_count = 0;
  std::size_t basic_event_count = 0;  ///< distinct basic events
  std::size_t undeveloped_count = 0;
  std::size_t loop_count = 0;
  std::size_t expanded_size = 0;      ///< node count if sharing were copied out
  int depth = 0;                      ///< longest root-to-leaf path
};

/// A synthesized fault tree (DAG) for one top event.
class FaultTree {
 public:
  /// `name` labels the tree; `top_description` describes the top event.
  explicit FaultTree(std::string name);

  FaultTree(FaultTree&&) noexcept = default;
  FaultTree& operator=(FaultTree&&) noexcept = default;

  const std::string& name() const noexcept { return name_; }

  /// Top node. Null when synthesis proved the top event impossible (all
  /// causes pruned); analyses treat that as probability 0.
  FtNode* top() const noexcept { return top_; }
  void set_top(FtNode* node) noexcept { top_ = node; }

  /// Description of the top event ("Omission-brake_force at bbw").
  const std::string& top_description() const noexcept { return top_desc_; }
  void set_top_description(std::string text) { top_desc_ = std::move(text); }

  // -- Node creation (arena-owned) ---------------------------------------------

  /// Adds or returns the existing basic event with this name. Rate and
  /// description are set on first creation.
  FtNode* add_basic(Symbol name, double rate, std::string description,
                    std::string origin);
  FtNode* add_house(Symbol name, std::string description);
  FtNode* add_undeveloped(Symbol name, std::string description,
                          std::string origin);
  FtNode* add_loop(Symbol name, std::string description, std::string origin);
  FtNode* add_gate(GateKind kind, std::string description,
                   std::vector<FtNode*> children);

  /// Existing leaf with this name, or nullptr.
  FtNode* find_event(Symbol name) const noexcept;

  // -- Introspection -----------------------------------------------------------

  const std::vector<std::unique_ptr<FtNode>>& nodes() const noexcept {
    return nodes_;
  }

  /// All distinct basic events reachable from the top, in id order.
  std::vector<const FtNode*> basic_events() const;

  /// All distinct leaves (basic + house + undeveloped + loop) under the top.
  std::vector<const FtNode*> leaves() const;

  FaultTreeStats stats() const;

  /// Visits every node reachable from the top exactly once, children before
  /// parents (postorder over the DAG).
  void for_each_reachable(
      const std::function<void(const FtNode&)>& visit) const;

  /// Indented text rendering; shared subtrees are printed once and
  /// subsequently referenced as "^G7 (shared)".
  std::string to_text() const;

 private:
  FtNode* add_node(NodeKind kind, GateKind gate, Symbol name);

  std::string name_;
  std::string top_desc_;
  FtNode* top_ = nullptr;
  std::vector<std::unique_ptr<FtNode>> nodes_;
  std::unordered_map<Symbol, FtNode*> leaf_index_;
  int next_gate_number_ = 1;
};

}  // namespace ftsynth
