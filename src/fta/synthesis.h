// Automatic fault tree synthesis (the paper's core contribution).
//
// For a hazardous deviation observed at a system output, the synthesiser
// traverses the hierarchical model backwards -- from actuators towards
// sensors (paper, section 2) -- evaluating the local failure expressions of
// every component it encounters:
//
//   * a malfunction leaf becomes a basic event (named block.malfunction,
//     carrying the annotated failure rate);
//   * an input-deviation leaf is traced across the connection feeding that
//     input and resolved against the component upstream;
//   * subsystem boundaries are crossed through the Inport/Outport proxies,
//     OR-ing in the enclosing component's own (hardware / common-cause)
//     analysis on the way out (the Figure 3 concept);
//   * mux/demux blocks are traced channel-accurately, Data-Store read/write
//     pairs are followed as implicit remote connections, and trigger inputs
//     contribute omission causes automatically (section 3's "complications");
//   * deviations reaching an unconnected system boundary input become
//     environment basic events;
//   * feedback loops (the platform's distributed control loops) are cut at
//     the first repeated (port, channels, class) on the traversal stack.
//
// Results are memoised on (port, channels, class), so the output is a DAG in
// which shared causes appear once -- this both keeps synthesis near-linear
// in model size and makes common-cause dependencies explicit.

#pragma once

#include <cstddef>
#include <vector>

#include "core/budget.h"
#include "core/diagnostics.h"
#include "fta/fault_tree.h"
#include "model/model.h"

namespace ftsynth {

struct SynthesisOptions {
  /// What to do when a deviation reaches a basic block whose annotation has
  /// no row for it.
  enum class UnannotatedPolicy {
    kUndeveloped,  ///< emit an undeveloped event (default; flags analysis gaps)
    kPrune,        ///< assume the component stops the failure (no event)
    kError,        ///< throw ErrorKind::kAnalysis
    kPropagate,    ///< assume same-class propagation from every input
  };

  /// What to do at the cut point of a feedback loop.
  enum class LoopPolicy {
    kPrune,  ///< cut to `false`: exact least-fixpoint semantics (default)
    kEvent,  ///< emit a visible <loop> leaf marking the cut
  };

  /// What a deviation arriving at an unconnected system boundary input
  /// becomes.
  enum class EnvironmentPolicy {
    kBasicEvent,  ///< "env:<Class>-<port>" basic event (default)
    kPrune,       ///< assume a perfect environment
  };

  UnannotatedPolicy unannotated = UnannotatedPolicy::kUndeveloped;
  LoopPolicy loops = LoopPolicy::kPrune;
  EnvironmentPolicy environment = EnvironmentPolicy::kBasicEvent;

  /// Automatically OR "Omission-<trigger>" into every output omission of a
  /// triggered block (section 3: indirectly relayed control signals).
  bool trigger_omission = true;

  /// Apply enclosing-subsystem annotations as common-cause contributions
  /// when crossing subsystem outputs (Figure 3). Disabling reduces the
  /// analysis to a flat, software-only view.
  bool subsystem_common_cause = true;

  /// Memoise (port, channels, class) resolutions, producing a shared DAG.
  /// Disabling re-expands shared subtrees into a plain tree -- exponentially
  /// larger on replicated architectures (ablation: bench_synthesis).
  bool memoise = true;

  /// Run a structural hash-consing pass (fta/simplify.h deduplicate) over
  /// the result, collapsing identical subtrees that escaped memoisation
  /// (loop-cut regions are deliberately not memoised). Semantics-neutral.
  bool deduplicate = true;

  /// Degraded-mode synthesis: when a sink is given, an unresolvable
  /// propagation (a cause referencing a missing or non-input port, an
  /// unannotated deviation under UnannotatedPolicy::kError) becomes an
  /// explicitly-marked UndevelopedEvent leaf plus a diagnostic, instead of
  /// aborting the traversal -- the tree completes and stays analyzable.
  /// Not owned; null restores the historical fail-fast behaviour.
  DiagnosticSink* sink = nullptr;

  /// Resource guard for the backward traversal: recursion depth ceiling,
  /// optional fault-tree node ceiling, optional wall-clock deadline.
  /// Violations cut the traversal with marked undeveloped leaves and are
  /// summarised in stats().budget (plus warnings on `sink` when set).
  Budget budget{};
};

/// Counters from the most recent synthesise() call.
struct SynthesisStats {
  std::size_t resolutions = 0;  ///< (port, channels, class) targets resolved
  std::size_t cache_hits = 0;
  std::size_t loops_cut = 0;
  std::size_t degraded = 0;     ///< unresolvable propagations made undeveloped
  BudgetReport budget;          ///< which resource limits fired, if any
};

/// Name of the condition event synthesised for a data-dependent annotation
/// row (condition_probability < 1): "cond:<Deviation>@<block path>#<row>".
/// Shared with the forward propagation engine so both sides agree.
std::string condition_event_name(const Block& block,
                                 const Deviation& deviation,
                                 std::size_t row_index);

/// Synthesises fault trees for deviations at the model's boundary outputs.
/// The model must outlive the synthesiser; it is not modified.
class Synthesiser {
 public:
  explicit Synthesiser(const Model& model, SynthesisOptions options = {});

  /// Synthesises the fault tree for `top`, whose port must name a boundary
  /// output port of the model root.
  FaultTree synthesise(const Deviation& top);

  /// Convenience: parses "Class-port" against the model registry.
  FaultTree synthesise(std::string_view top);

  /// Synthesises one tree per (boundary output port x failure class in the
  /// registry) whose tree is non-empty.
  std::vector<FaultTree> synthesise_all();

  const SynthesisStats& stats() const noexcept { return stats_; }

 private:
  const Model& model_;
  SynthesisOptions options_;
  SynthesisStats stats_;
};

class ThreadPool;

/// Synthesises one tree per top event concurrently (a campaign over many
/// top events is embarrassingly parallel: each tree gets its own traversal
/// state, and the shared model is read-only). Results are in `tops` order
/// and identical to sequential synthesis. Runs on `pool`'s workers plus
/// the calling thread; a null pool is the plain serial loop.
std::vector<FaultTree> synthesise_parallel(const Model& model,
                                           const std::vector<Deviation>& tops,
                                           const SynthesisOptions& options,
                                           ThreadPool* pool);

/// Convenience overload owning a transient pool of `threads` workers
/// (<= 0: hardware concurrency; 1: serial).
std::vector<FaultTree> synthesise_parallel(const Model& model,
                                           const std::vector<Deviation>& tops,
                                           SynthesisOptions options = {},
                                           int threads = 0);

}  // namespace ftsynth
