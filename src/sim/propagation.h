// Forward failure-propagation simulation.
//
// The synthesis algorithm derives failure logic *backwards* from system
// outputs. This engine runs the same local failure semantics *forwards*:
// given a set of active leaf events (component malfunctions, environment
// deviations), it computes -- by least-fixpoint iteration over the model --
// every deviation observable at every port, including the system outputs.
//
// Its purpose is validation (experiment E9): for monotone models (no NOT in
// the annotations), an active-event set causes a top deviation in forward
// simulation exactly when it satisfies the synthesized fault tree. The
// property tests check this exhaustively on small random models; the Monte
// Carlo harness (sim/monte_carlo.h) checks it statistically on larger ones.
//
// Leaf events are named exactly as the synthesiser names them:
//   "<block path>.<malfunction>"   component malfunction
//   "env:<Class>-<port>"           deviation at a model boundary input
//   "und:<Class>-<port>@<path>"    undeveloped event (unannotated component)

#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fta/synthesis.h"
#include "model/model.h"

namespace ftsynth {

namespace detail {

/// State atom of the forward propagation: (port, channel, class). Only
/// true atoms are stored.
struct PropagationAtom {
  const Port* port;
  int channel;
  FailureClass cls;
  friend bool operator==(const PropagationAtom& a,
                         const PropagationAtom& b) noexcept {
    return a.port == b.port && a.channel == b.channel && a.cls == b.cls;
  }
};

struct PropagationAtomHash {
  std::size_t operator()(const PropagationAtom& a) const noexcept {
    std::size_t h = std::hash<const void*>{}(a.port);
    h = h * 1000003u ^ static_cast<std::size_t>(a.channel + 1);
    h = h * 1000003u ^ a.cls.hash();
    return h;
  }
};

using PropagationState =
    std::unordered_set<PropagationAtom, PropagationAtomHash>;

}  // namespace detail

/// The outcome of one forward propagation.
class PropagationResult {
 public:
  /// True when `cls` is observed at channel `channel` of `port`
  /// (channel -1: at any channel).
  bool at(const Port& port, FailureClass cls, int channel = -1) const;

  /// True when `cls` is observed at the model boundary output `port_name`
  /// (root annotation common cause included).
  bool at_system_output(Symbol port_name, FailureClass cls) const;

  /// All deviations observed at boundary outputs.
  std::vector<Deviation> system_output_deviations() const;

 private:
  friend class PropagationEngine;
  detail::PropagationState true_atoms_;
  std::unordered_map<Symbol, std::vector<FailureClass>> output_deviations_;
};

/// Forward propagation engine. Uses the same SynthesisOptions as the
/// synthesiser so both sides implement identical semantics. Note: the
/// least fixpoint is only well-defined for monotone failure logic; models
/// using NOT are iterated to a (possibly non-unique) stable state.
class PropagationEngine {
 public:
  explicit PropagationEngine(const Model& model,
                             SynthesisOptions options = {});

  /// Propagates the given active leaf events to every port.
  PropagationResult propagate(
      const std::unordered_set<Symbol>& active_events) const;

  /// All leaf events that can be active in this model: every declared
  /// malfunction, every (boundary input x registered class) environment
  /// deviation, and every data condition of a conditional annotation row.
  struct LeafEvent {
    Symbol name;
    double rate = 0.0;                ///< lambda; 0 when unquantified
    double fixed_probability = -1.0;  ///< >= 0 for condition events
  };
  std::vector<LeafEvent> leaf_events() const;

 private:
  const Model& model_;
  SynthesisOptions options_;
};

}  // namespace ftsynth
