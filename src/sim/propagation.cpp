#include "sim/propagation.h"

#include <algorithm>

#include "core/error.h"

namespace ftsynth {

bool PropagationResult::at(const Port& port, FailureClass cls,
                           int channel) const {
  if (channel >= 0) return true_atoms_.count({&port, channel, cls}) != 0;
  for (int c = 0; c < port.width(); ++c) {
    if (true_atoms_.count({&port, c, cls}) != 0) return true;
  }
  return false;
}

bool PropagationResult::at_system_output(Symbol port_name,
                                         FailureClass cls) const {
  auto it = output_deviations_.find(port_name);
  if (it == output_deviations_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), cls) !=
         it->second.end();
}

std::vector<Deviation> PropagationResult::system_output_deviations() const {
  std::vector<Deviation> out;
  for (const auto& [port, classes] : output_deviations_) {
    for (FailureClass cls : classes) out.push_back(Deviation{cls, port});
  }
  std::sort(out.begin(), out.end());
  return out;
}

PropagationEngine::PropagationEngine(const Model& model,
                                     SynthesisOptions options)
    : model_(model), options_(options) {}

namespace {

/// One Jacobi sweep evaluator: computes new output-port values by reading
/// the previous iteration's state.
class Evaluator {
 public:
  Evaluator(const Model& model, const SynthesisOptions& options,
            const std::unordered_set<Symbol>& active)
      : model_(model),
        options_(options),
        active_(active),
        omission_(model.registry().omission()) {}

  /// Value of (output port, channel, class) for the next iteration.
  bool eval_output(const Port& port, int channel, FailureClass cls) const {
    const Block& block = port.owner();
    switch (block.kind()) {
      case BlockKind::kBasic:
        return eval_basic(block, port, cls);
      case BlockKind::kSubsystem:
        return eval_subsystem_output(block, port, channel, cls);
      case BlockKind::kInport: {
        const Block* subsystem = block.parent();
        check_internal(subsystem != nullptr, "Inport proxy without parent");
        return input_true(subsystem->port(block.name()), channel, cls);
      }
      case BlockKind::kMux: {
        int offset = 0;
        for (const Port* input : block.inputs()) {
          if (channel < offset + input->width())
            return input_true(*input, channel - offset, cls);
          offset += input->width();
        }
        return false;
      }
      case BlockKind::kDemux: {
        int offset = 0;
        for (const Port* output : block.outputs()) {
          if (output == &port) break;
          offset += output->width();
        }
        return input_true(*block.inputs().front(), offset + channel, cls);
      }
      case BlockKind::kDataStoreRead: {
        for (const Block* writer : model_.store_writers(block.store_name())) {
          if (input_true(*writer->inputs().front(), -1, cls)) return true;
        }
        return false;
      }
      case BlockKind::kGround:
        return false;
      case BlockKind::kOutport:
      case BlockKind::kDataStoreWrite:
        break;
    }
    throw Error(ErrorKind::kInternal, "eval_output on block without outputs");
  }

  /// Boundary-output value of subsystem `s` (inner propagation + enclosing
  /// common cause) -- also used for the model root after the fixpoint.
  bool eval_subsystem_output(const Block& s, const Port& port, int channel,
                             FailureClass cls) const {
    const Block* proxy = s.find_child(port.name());
    check_internal(proxy != nullptr && proxy->kind() == BlockKind::kOutport,
                   "missing Outport proxy for " + port.qualified_name());
    if (input_true(*proxy->inputs().front(), channel, cls)) return true;
    if (options_.subsystem_common_cause) {
      bool any_row = false;
      return eval_rows(s, Deviation{cls, port.name()}, any_row);
    }
    return false;
  }

  /// Reads the previous-iteration state for the flow feeding `input`.
  bool input_true(const Port& input, int channel, FailureClass cls) const {
    const Block& owner = input.owner();
    const Block* parent = owner.parent();
    if (parent == nullptr) {
      // Model boundary: environment event.
      if (options_.environment == SynthesisOptions::EnvironmentPolicy::kPrune)
        return false;
      return active_.count(Symbol(
                 "env:" + Deviation{cls, input.name()}.to_string())) != 0;
    }
    const Connection* connection = parent->connection_into(input);
    if (connection == nullptr) {
      return active_.count(Symbol("und:" +
                                  Deviation{cls, input.name()}.to_string() +
                                  "@" + owner.path())) != 0;
    }
    const Port& source = *connection->from;
    if (channel >= 0) return state_at(source, channel, cls);
    for (int c = 0; c < source.width(); ++c) {
      if (state_at(source, c, cls)) return true;
    }
    return false;
  }

  void set_state(const detail::PropagationState* state) { state_ = state; }

 private:
  bool state_at(const Port& port, int channel, FailureClass cls) const {
    return state_->count({&port, channel, cls}) != 0;
  }

  /// Mirrors the synthesiser's convert_rows: OR over the matching rows,
  /// conditional rows gated by their condition event being active.
  bool eval_rows(const Block& block, const Deviation& deviation,
                 bool& any_row) const {
    any_row = false;
    bool value = false;
    const std::vector<AnnotationRow>& rows = block.annotation().rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const AnnotationRow& row = rows[i];
      if (!(row.output == deviation)) continue;
      any_row = true;
      if (value) continue;  // already true; keep scanning for any_row only
      if (!eval_expr(*row.cause, block)) continue;
      if (row.condition_probability < 1.0 &&
          active_.count(
              Symbol(condition_event_name(block, deviation, i))) == 0)
        continue;
      value = true;
    }
    return value;
  }

  bool eval_basic(const Block& block, const Port& port,
                  FailureClass cls) const {
    const Deviation deviation{cls, port.name()};
    bool explained = false;
    bool value = eval_rows(block, deviation, explained);

    if (!value && options_.trigger_omission && cls == omission_) {
      if (const Port* trigger = block.trigger()) {
        value = input_true(*trigger, -1, omission_);
        explained = true;
      }
    }
    if (explained) return value;

    switch (options_.unannotated) {
      case SynthesisOptions::UnannotatedPolicy::kPrune:
        return false;
      case SynthesisOptions::UnannotatedPolicy::kError:
        throw Error(ErrorKind::kAnalysis,
                    "component '" + block.path() +
                        "' has no hazard-analysis row for " +
                        deviation.to_string());
      case SynthesisOptions::UnannotatedPolicy::kPropagate: {
        for (const Port* input : block.inputs()) {
          if (input->is_trigger()) continue;
          if (input_true(*input, -1, cls)) return true;
        }
        if (!block.inputs().empty()) return false;
        break;  // a source block: fall through to the undeveloped event
      }
      case SynthesisOptions::UnannotatedPolicy::kUndeveloped:
        break;
    }
    return active_.count(Symbol("und:" + deviation.to_string() + "@" +
                                block.path())) != 0;
  }

  bool eval_expr(const Expr& expr, const Block& block) const {
    return expr.evaluate(
        [&](const Deviation& d) {
          return input_true(block.port(d.port), -1, d.failure_class);
        },
        [&](Symbol malfunction) {
          return active_.count(
                     Symbol(block.path() + "." + malfunction.str())) != 0;
        });
  }

  const Model& model_;
  const SynthesisOptions& options_;
  const std::unordered_set<Symbol>& active_;
  FailureClass omission_;
  const detail::PropagationState* state_ = nullptr;
};

}  // namespace

PropagationResult PropagationEngine::propagate(
    const std::unordered_set<Symbol>& active_events) const {
  // All output ports to iterate over (state atoms live on output ports).
  std::vector<const Port*> outputs;
  model_.for_each_block([&](const Block& block) {
    for (const auto& port : block.ports()) {
      if (port->is_output()) outputs.push_back(port.get());
    }
  });
  const std::vector<FailureClass>& classes = model_.registry().all();

  Evaluator evaluator(model_, options_, active_events);
  PropagationResult result;
  evaluator.set_state(&result.true_atoms_);

  // Jacobi-style iteration to the (monotone) least fixpoint. Each sweep
  // adds at least one atom or terminates, so the loop is bounded by the
  // number of atoms.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<detail::PropagationAtom> discovered;
    for (const Port* port : outputs) {
      for (FailureClass cls : classes) {
        for (int channel = 0; channel < port->width(); ++channel) {
          detail::PropagationAtom atom{port, channel, cls};
          if (result.true_atoms_.count(atom) != 0) continue;
          if (evaluator.eval_output(*port, channel, cls))
            discovered.push_back(atom);
        }
      }
    }
    for (const detail::PropagationAtom& atom : discovered) {
      result.true_atoms_.insert(atom);
      changed = true;
    }
  }

  // Boundary outputs of the model root (incl. root common cause).
  for (const Port* port : model_.root().outputs()) {
    std::vector<FailureClass> observed;
    for (FailureClass cls : classes) {
      bool any = false;
      for (int channel = 0; channel < port->width() && !any; ++channel)
        any = evaluator.eval_subsystem_output(model_.root(), *port, channel,
                                              cls);
      if (any) observed.push_back(cls);
    }
    if (!observed.empty())
      result.output_deviations_.emplace(port->name(), std::move(observed));
  }
  return result;
}

std::vector<PropagationEngine::LeafEvent> PropagationEngine::leaf_events()
    const {
  std::vector<LeafEvent> events;
  model_.for_each_block([&](const Block& block) {
    for (const Malfunction& m : block.annotation().malfunctions()) {
      events.push_back(
          {Symbol(block.path() + "." + m.name.str()), m.rate, -1.0});
    }
    const std::vector<AnnotationRow>& rows = block.annotation().rows();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].condition_probability < 1.0) {
        events.push_back(
            {Symbol(condition_event_name(block, rows[i].output, i)), 0.0,
             rows[i].condition_probability});
      }
    }
  });
  for (const Port* input : model_.root().inputs()) {
    for (FailureClass cls : model_.registry().all()) {
      events.push_back(
          {Symbol("env:" + Deviation{cls, input->name()}.to_string()), 0.0,
           -1.0});
    }
  }
  return events;
}

}  // namespace ftsynth
