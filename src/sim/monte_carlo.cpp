#include "sim/monte_carlo.h"

#include <cmath>
#include <random>

#include "core/parallel.h"
#include "core/thread_pool.h"

namespace ftsynth {

namespace {

/// splitmix64 finaliser: decorrelates the per-shard seeds derived from
/// (master seed, shard index) -- the standard counter-based stream scheme.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard) noexcept {
  return splitmix64(seed + splitmix64(static_cast<std::uint64_t>(shard)));
}

}  // namespace

MonteCarloResult simulate_top_event(const Model& model, const Deviation& top,
                                    const MonteCarloOptions& options,
                                    ThreadPool* pool) {
  PropagationEngine engine(model, options.semantics);
  const std::vector<PropagationEngine::LeafEvent> leaves =
      engine.leaf_events();

  // Precompute per-leaf firing probabilities.
  std::vector<double> probabilities;
  probabilities.reserve(leaves.size());
  for (const PropagationEngine::LeafEvent& leaf : leaves) {
    if (leaf.fixed_probability >= 0.0) {
      probabilities.push_back(leaf.fixed_probability);
    } else if (leaf.rate > 0.0) {
      probabilities.push_back(
          1.0 -
          std::exp(-leaf.rate * options.probability.mission_time_hours));
    } else {
      probabilities.push_back(options.probability.default_event_probability);
    }
  }

  const std::size_t shards =
      std::max<std::size_t>(1, std::min(options.shards, options.trials));

  // Shard s runs trials/shards trials (+1 for the first trials%shards
  // shards) on its own RNG stream; shards == 1 reproduces the historical
  // single-stream sequence exactly.
  std::vector<std::size_t> occurrences(shards, 0);
  parallel_for(pool, shards, [&](std::size_t shard) {
    const std::size_t trials =
        options.trials / shards + (shard < options.trials % shards ? 1 : 0);
    std::mt19937_64 rng(shards == 1 ? options.seed
                                    : shard_seed(options.seed, shard));
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    std::unordered_set<Symbol> active;
    std::size_t hits = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      active.clear();
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (probabilities[i] > 0.0 && uniform(rng) < probabilities[i])
          active.insert(leaves[i].name);
      }
      if (active.empty()) continue;  // no events, no deviation (monotone)
      PropagationResult propagation = engine.propagate(active);
      if (propagation.at_system_output(top.port, top.failure_class)) ++hits;
    }
    occurrences[shard] = hits;
  });

  MonteCarloResult result;
  result.trials = options.trials;
  for (std::size_t hits : occurrences) result.occurrences += hits;
  result.estimate = static_cast<double>(result.occurrences) /
                    static_cast<double>(result.trials);
  result.std_error = std::sqrt(result.estimate * (1.0 - result.estimate) /
                               static_cast<double>(result.trials));
  return result;
}

}  // namespace ftsynth
