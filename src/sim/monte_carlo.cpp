#include "sim/monte_carlo.h"

#include <cmath>
#include <random>

namespace ftsynth {

MonteCarloResult simulate_top_event(const Model& model, const Deviation& top,
                                    const MonteCarloOptions& options) {
  PropagationEngine engine(model, options.semantics);
  const std::vector<PropagationEngine::LeafEvent> leaves =
      engine.leaf_events();

  // Precompute per-leaf firing probabilities.
  std::vector<double> probabilities;
  probabilities.reserve(leaves.size());
  for (const PropagationEngine::LeafEvent& leaf : leaves) {
    if (leaf.fixed_probability >= 0.0) {
      probabilities.push_back(leaf.fixed_probability);
    } else if (leaf.rate > 0.0) {
      probabilities.push_back(
          1.0 -
          std::exp(-leaf.rate * options.probability.mission_time_hours));
    } else {
      probabilities.push_back(options.probability.default_event_probability);
    }
  }

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  MonteCarloResult result;
  result.trials = options.trials;
  std::unordered_set<Symbol> active;
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    active.clear();
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      if (probabilities[i] > 0.0 && uniform(rng) < probabilities[i])
        active.insert(leaves[i].name);
    }
    if (active.empty()) continue;  // no events, no deviation (monotone)
    PropagationResult propagation = engine.propagate(active);
    if (propagation.at_system_output(top.port, top.failure_class))
      ++result.occurrences;
  }
  result.estimate = static_cast<double>(result.occurrences) /
                    static_cast<double>(result.trials);
  result.std_error = std::sqrt(result.estimate * (1.0 - result.estimate) /
                               static_cast<double>(result.trials));
  return result;
}

}  // namespace ftsynth
