// Monte Carlo fault injection.
//
// Samples active-event scenarios from the model's failure rates, runs the
// forward propagation engine on each, and estimates the probability of a
// deviation at a system output. On monotone models this estimate must
// agree (statistically) with the exact BDD probability of the synthesized
// fault tree -- the cross-validation of experiment E9.

#pragma once

#include <cstdint>

#include "analysis/probability.h"
#include "failure/failure_class.h"
#include "sim/propagation.h"

namespace ftsynth {

struct MonteCarloOptions {
  std::size_t trials = 10000;
  std::uint64_t seed = 20010701;  ///< deterministic by default
  ProbabilityOptions probability;
  SynthesisOptions semantics;
};

struct MonteCarloResult {
  std::size_t trials = 0;
  std::size_t occurrences = 0;  ///< trials where the top deviation appeared
  double estimate = 0.0;        ///< occurrences / trials
  double std_error = 0.0;       ///< binomial standard error of the estimate
};

/// Estimates P[`top` appears at the system boundary within the mission
/// time]. Every model malfunction fires independently with
/// 1 - exp(-lambda * t); environment deviations fire with
/// `probability.default_event_probability`.
MonteCarloResult simulate_top_event(const Model& model, const Deviation& top,
                                    const MonteCarloOptions& options = {});

}  // namespace ftsynth
