// Monte Carlo fault injection.
//
// Samples active-event scenarios from the model's failure rates, runs the
// forward propagation engine on each, and estimates the probability of a
// deviation at a system output. On monotone models this estimate must
// agree (statistically) with the exact BDD probability of the synthesized
// fault tree -- the cross-validation of experiment E9.
//
// Sharding: the trials can be split into `shards` independent streams,
// each with its own counter-derived RNG seed (splitmix64 over the master
// seed and the shard index). The estimate is a pure function of
// (seed, shards, trials) -- NOT of how many threads execute the shards --
// so a sharded run is reproducible and a pool can execute the shards
// concurrently without changing a single sampled bit. shards == 1 keeps
// the historical single-stream sequence byte-for-byte.

#pragma once

#include <cstdint>

#include "analysis/probability.h"
#include "failure/failure_class.h"
#include "sim/propagation.h"

namespace ftsynth {

class ThreadPool;

struct MonteCarloOptions {
  std::size_t trials = 10000;
  std::uint64_t seed = 20010701;  ///< deterministic by default
  /// Independent RNG streams the trials are split over (remainder trials
  /// go to the first shards). The estimate depends on (seed, shards), not
  /// on the executing thread count. 1 = the historical serial stream.
  std::size_t shards = 1;
  ProbabilityOptions probability;
  SynthesisOptions semantics;
};

struct MonteCarloResult {
  std::size_t trials = 0;
  std::size_t occurrences = 0;  ///< trials where the top deviation appeared
  double estimate = 0.0;        ///< occurrences / trials
  double std_error = 0.0;       ///< binomial standard error of the estimate
};

/// Estimates P[`top` appears at the system boundary within the mission
/// time]. Every model malfunction fires independently with
/// 1 - exp(-lambda * t); environment deviations fire with
/// `probability.default_event_probability`. A non-null `pool` runs the
/// shards on the worker threads (the propagation engine is shared: it is
/// stateless per propagate() call); the result is identical to pool-less
/// execution.
MonteCarloResult simulate_top_event(const Model& model, const Deviation& top,
                                    const MonteCarloOptions& options = {},
                                    ThreadPool* pool = nullptr);

}  // namespace ftsynth
