#include "bound/pdag.h"

#include <algorithm>
#include <unordered_map>

#include "core/error.h"

namespace ftsynth::bound {

namespace {

void support_insert(std::vector<std::uint64_t>& support, int event) {
  support[static_cast<std::size_t>(event) / 64] |=
      std::uint64_t{1} << (static_cast<std::size_t>(event) % 64);
}

void support_union(std::vector<std::uint64_t>& into,
                   const std::vector<std::uint64_t>& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] |= from[i];
}

/// Post-order compiler; structure sharing collapses through the memo, so
/// every FtNode becomes at most one PdagGate.
class Compiler {
 public:
  Compiler(Pdag& pdag, const std::vector<const FtNode*>& order)
      : pdag_(pdag), words_((order.size() + 63) / 64) {
    rank_.reserve(order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      rank_.emplace(order[i], static_cast<int>(i));
  }

  Ref compile(const FtNode* node) {
    if (node->is_leaf()) return literal(node, /*negated=*/false);
    if (node->gate() == GateKind::kNot) {
      check_internal(node->children().size() == 1 &&
                         node->children()[0]->is_leaf(),
                     "bound engine needs a normalised tree "
                     "(NOT over a non-leaf)");
      return literal(node->children()[0], /*negated=*/true);
    }
    auto it = memo_.find(node);
    if (it != memo_.end()) return it->second;

    PdagGate gate;
    gate.conjunction = node->gate() != GateKind::kOr;
    gate.support.assign(words_, 0);
    gate.children.reserve(node->children().size());
    for (const FtNode* child : node->children())
      gate.children.push_back(compile(child));

    gate.disjoint_children = true;
    for (const Ref child : gate.children) {
      const std::vector<std::uint64_t>& child_support = support_of(child);
      if (!supports_disjoint(gate.support, child_support))
        gate.disjoint_children = false;
      support_union(gate.support, child_support);
    }

    if (gate.conjunction) {
      if (gate.disjoint_children) {
        gate.ub = 1.0;
        for (const Ref child : gate.children) gate.ub *= ub_of(child);
      } else {
        gate.ub = 1.0;
        for (const Ref child : gate.children)
          gate.ub = std::min(gate.ub, ub_of(child));
      }
    } else {
      gate.ub = 0.0;
      for (const Ref child : gate.children) gate.ub += ub_of(child);
      gate.ub = std::min(gate.ub, 1.0);
    }

    const Ref ref = static_cast<Ref>(pdag_.gates.size());
    pdag_.gates.push_back(std::move(gate));
    memo_.emplace(node, ref);
    return ref;
  }

 private:
  Ref literal(const FtNode* leaf, bool negated) {
    auto it = rank_.find(leaf);
    check_internal(it != rank_.end(),
                   "bound engine met a leaf outside the interned order");
    const int id = it->second * 2 + (negated ? 1 : 0);
    if (literal_support_.size() <= static_cast<std::size_t>(id))
      literal_support_.resize(2 * rank_.size());
    std::vector<std::uint64_t>& support =
        literal_support_[static_cast<std::size_t>(id)];
    if (support.empty()) {
      support.assign(words_, 0);
      support_insert(support, it->second);
    }
    return literal_ref(id);
  }

  const std::vector<std::uint64_t>& support_of(Ref ref) const {
    if (is_literal(ref))
      return literal_support_[static_cast<std::size_t>(literal_of(ref))];
    return pdag_.gates[static_cast<std::size_t>(ref)].support;
  }

  double ub_of(Ref ref) const {
    if (is_literal(ref))
      return pdag_.literal_probability[static_cast<std::size_t>(
          literal_of(ref))];
    return pdag_.gates[static_cast<std::size_t>(ref)].ub;
  }

  Pdag& pdag_;
  std::size_t words_;
  std::unordered_map<const FtNode*, int> rank_;
  std::unordered_map<const FtNode*, Ref> memo_;
  /// Lazily-built one-bit supports, indexed by literal id.
  std::vector<std::vector<std::uint64_t>> literal_support_;
};

}  // namespace

bool supports_disjoint(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & b[i]) != 0) return false;
  }
  return true;
}

Pdag compile_pdag(const FaultTree& normalised,
                  const std::vector<const FtNode*>& event_order,
                  const std::vector<double>& event_probability) {
  check_internal(event_order.size() == event_probability.size(),
                 "bound PDAG: one probability per interned event");
  Pdag pdag;
  pdag.event_count = event_order.size();
  pdag.literal_probability.resize(2 * event_order.size());
  for (std::size_t i = 0; i < event_order.size(); ++i) {
    const double p = std::clamp(event_probability[i], 0.0, 1.0);
    pdag.literal_probability[2 * i] = p;
    pdag.literal_probability[2 * i + 1] = 1.0 - p;
  }
  if (normalised.top() == nullptr) {
    pdag.constant_false = true;
    return pdag;
  }
  Compiler compiler(pdag, event_order);
  pdag.root = compiler.compile(normalised.top());
  return pdag;
}

}  // namespace ftsynth::bound
