#include "bound/frontier.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <queue>
#include <utility>

#include "core/parallel.h"
#include "core/thread_pool.h"

namespace ftsynth::bound {

namespace {

/// Shard count is a CONSTANT, never derived from the worker count: an
/// item's home shard depends only on its content, so the frontier's shape
/// -- and with it every selection, expansion and merge -- is identical
/// under any --jobs value.
constexpr std::size_t kShards = 16;

/// Items expanded per round. Also constant: the round boundary is where
/// convergence and budgets are checked, so the stopping point (and the
/// reported interval) must not depend on the worker count either.
constexpr std::size_t kRoundWidth = 64;

/// SDP admission caps: a set whose disjoint-product expansion exceeds
/// either is deferred (its raw mass moves to the upper bound instead of
/// tightening the lower bound). Both are content-derived counters, so
/// deferral decisions are deterministic.
constexpr std::size_t kSdpProductCap = 4096;
constexpr std::size_t kSdpOpCap = std::size_t{1} << 21;

/// Kahan accumulator: the residual is maintained incrementally over
/// millions of additions and subtractions; compensation keeps the drift
/// far below any epsilon worth asking for. All updates happen serially at
/// round boundaries, so the result is deterministic.
struct Accumulator {
  double sum = 0.0;
  double carry = 0.0;
  void add(double x) noexcept {
    const double y = x - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  double value() const noexcept { return sum > 0.0 ? sum : 0.0; }
};

/// A partial product: chosen literals plus still-open disjunction gates
/// (conjunctions are absorbed eagerly), with a certified upper bound on
/// the probability mass reachable through it.
struct Item {
  std::vector<int> literals;  ///< sorted ids
  std::vector<Ref> gates;     ///< sorted, unique, disjunctions only
  double mass = 0.0;
};

/// Total order for the priority queue: most mass first, then content
/// (fewest literals, then ids) so equal-mass items -- every item, in the
/// unrated p = 0 regime -- still drain in one canonical sequence.
bool item_before(const Item& a, const Item& b) noexcept {
  if (a.mass != b.mass) return a.mass > b.mass;
  if (a.literals.size() != b.literals.size())
    return a.literals.size() < b.literals.size();
  if (a.literals != b.literals) return a.literals < b.literals;
  return a.gates < b.gates;
}

struct ItemWorse {
  bool operator()(const Item& a, const Item& b) const noexcept {
    return item_before(b, a);
  }
};

using ShardQueue = std::priority_queue<Item, std::vector<Item>, ItemWorse>;

/// Sorted-unique insert of `literal`; false when the opposite polarity is
/// already present (the item denotes the empty event set).
bool insert_literal(std::vector<int>& literals, int literal) {
  auto it = std::lower_bound(literals.begin(), literals.end(), literal ^ 1);
  if (it != literals.end() && *it == (literal ^ 1)) return false;
  it = std::lower_bound(literals.begin(), literals.end(), literal);
  if (it != literals.end() && *it == literal) return true;
  literals.insert(it, literal);
  return true;
}

void insert_gate(std::vector<Ref>& gates, Ref gate) {
  auto it = std::lower_bound(gates.begin(), gates.end(), gate);
  if (it != gates.end() && *it == gate) return;
  gates.insert(it, gate);
}

/// Conjunctive closure: absorbs `ref` into the item, inlining conjunction
/// gates all the way down so only disjunctions stay open. False on a
/// contradictory literal pair (drop the item; it contributes measure 0).
bool absorb(const Pdag& pdag, Ref ref, std::vector<int>& literals,
            std::vector<Ref>& gates) {
  std::vector<Ref> work{ref};
  while (!work.empty()) {
    const Ref current = work.back();
    work.pop_back();
    if (is_literal(current)) {
      if (!insert_literal(literals, literal_of(current))) return false;
      continue;
    }
    const PdagGate& gate = pdag.gates[static_cast<std::size_t>(current)];
    if (gate.conjunction) {
      work.insert(work.end(), gate.children.begin(), gate.children.end());
    } else {
      insert_gate(gates, current);
    }
  }
  return true;
}

std::uint64_t literal_signature(const std::vector<int>& literals) noexcept {
  std::uint64_t signature = 0;
  for (const int literal : literals)
    signature |= std::uint64_t{1} << (static_cast<unsigned>(literal) % 64);
  return signature;
}

/// An emitted cut set, stored for subsumption screening of later items.
struct Emitted {
  std::vector<int> literals;  ///< sorted ids
  std::uint64_t signature = 0;
};

/// True when some emitted set in [begin, end) is a subset of `literals`.
bool subsumed_by(const std::vector<Emitted>& emitted, std::size_t begin,
                 std::size_t end, const std::vector<int>& literals,
                 std::uint64_t signature) {
  for (std::size_t i = begin; i < end; ++i) {
    const Emitted& set = emitted[i];
    if (set.literals.size() > literals.size()) continue;
    if ((set.signature & ~signature) != 0) continue;
    if (std::includes(literals.begin(), literals.end(), set.literals.begin(),
                      set.literals.end()))
      return true;
  }
  return false;
}

/// Certified mass of an item. The product form (literal probability times
/// the open gates' bounds) needs mutual independence, i.e. pairwise
/// disjoint supports; otherwise fall back to the weakest conjunct, which
/// holds under any sharing. The product form, when available, is never
/// looser: every factor is <= 1.
double item_mass(const Pdag& pdag, const Item& item,
                 std::vector<std::uint64_t>& scratch_support) {
  double literal_probability = 1.0;
  for (const int literal : item.literals)
    literal_probability *=
        pdag.literal_probability[static_cast<std::size_t>(literal)];
  if (item.gates.empty()) return literal_probability;

  scratch_support.assign((pdag.event_count + 63) / 64, 0);
  for (const int literal : item.literals) {
    const std::size_t event = static_cast<std::size_t>(literal) / 2;
    scratch_support[event / 64] |= std::uint64_t{1} << (event % 64);
  }
  bool disjoint = true;
  double product = literal_probability;
  double weakest = literal_probability;
  for (const Ref gate_ref : item.gates) {
    const PdagGate& gate = pdag.gates[static_cast<std::size_t>(gate_ref)];
    if (disjoint && supports_disjoint(scratch_support, gate.support)) {
      for (std::size_t i = 0; i < scratch_support.size(); ++i)
        scratch_support[i] |= gate.support[i];
      product *= gate.ub;
    } else {
      disjoint = false;
    }
    weakest = std::min(weakest, gate.ub);
  }
  return disjoint ? product : weakest;
}

/// Incremental sum-of-disjoint-products over the admitted cut sets:
/// admit() returns the exact measure the new set adds beyond the union of
/// everything admitted before it, so the running total is exactly
/// P(union of admitted sets) -- the monotone lower bound.
class SdpEngine {
 public:
  explicit SdpEngine(const Pdag& pdag)
      : pdag_(pdag), words_((2 * pdag.event_count + 63) / 64) {}

  /// Exact marginal measure of `literals`, or nullopt when the expansion
  /// blows past the caps (the caller then defers the set: it keeps its raw
  /// mass in the upper bound and never enters the admitted list).
  std::optional<double> admit(const std::vector<int>& literals) {
    std::vector<Product> work;
    work.push_back(product_of(literals));
    std::size_t ops = 0;
    for (const std::vector<int>& previous : admitted_) {
      if (work.empty()) break;
      std::vector<Product> next;
      next.reserve(work.size());
      for (const Product& product : work) {
        ops += previous.size();
        refine(product, previous, next);
      }
      if (next.size() > kSdpProductCap || ops > kSdpOpCap)
        return std::nullopt;
      work = std::move(next);
    }
    double delta = 0.0;
    for (const Product& product : work) delta += probability(product);
    // A fully-covered set (empty expansion) adds no region; keeping it out
    // of the admitted list saves every later refinement a pass.
    if (!work.empty()) admitted_.push_back(literals);
    return delta;
  }

 private:
  /// A disjoint product: the admitted set's literals plus complemented
  /// separators, as a bitset over literal ids.
  using Product = std::vector<std::uint64_t>;

  Product product_of(const std::vector<int>& literals) const {
    Product product(words_, 0);
    for (const int literal : literals) set_bit(product, literal);
    return product;
  }

  static void set_bit(Product& product, int literal) noexcept {
    product[static_cast<std::size_t>(literal) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(literal) % 64);
  }
  static bool test_bit(const Product& product, int literal) noexcept {
    return (product[static_cast<std::size_t>(literal) / 64] >>
                (static_cast<std::size_t>(literal) % 64) &
            1) != 0;
  }

  /// Splits `product` against NOT(previous) into `out` (0, 1 or |D|
  /// disjoint pieces, D = previous's literals missing from the product).
  void refine(const Product& product, const std::vector<int>& previous,
              std::vector<Product>& out) const {
    for (const int literal : previous) {
      if (test_bit(product, literal ^ 1)) {
        out.push_back(product);  // already disjoint from `previous`
        return;
      }
    }
    std::vector<int> missing;
    for (const int literal : previous) {
      if (!test_bit(product, literal)) missing.push_back(literal);
    }
    if (missing.empty()) return;  // product implies `previous`: covered
    Product base = product;
    for (const int literal : missing) {
      Product piece = base;
      set_bit(piece, literal ^ 1);
      out.push_back(std::move(piece));
      set_bit(base, literal);
    }
  }

  double probability(const Product& product) const {
    double p = 1.0;
    for (std::size_t w = 0; w < product.size(); ++w) {
      std::uint64_t bits = product[w];
      while (bits != 0) {
        const int literal =
            static_cast<int>(w * 64) + std::countr_zero(bits);
        bits &= bits - 1;
        p *= pdag_.literal_probability[static_cast<std::size_t>(literal)];
      }
    }
    return p;
  }

  const Pdag& pdag_;
  std::size_t words_;
  std::vector<std::vector<int>> admitted_;
};

/// One expanded item's offspring, produced on a worker and merged in batch
/// order on the coordinating thread.
struct Expansion {
  std::vector<Item> children;       ///< open and complete alike
  double order_dropped_mass = 0.0;  ///< items cut by max_order
  std::size_t subsumed = 0;
  bool order_truncated = false;
};

class Frontier {
 public:
  Frontier(const Pdag& pdag, const BoundLimits& limits)
      : pdag_(pdag), limits_(limits), budget_(limits.budget), sdp_(pdag) {}

  BoundOutcome run() {
    BoundOutcome out;
    if (pdag_.constant_false) {
      out.p_upper = 0.0;
      out.converged = true;
      out.exhausted = true;
      return out;
    }
    seed();
    drain();

    const double upper_now = current_upper();
    best_upper_ = std::min(best_upper_, upper_now);
    best_upper_ = std::max(best_upper_, lower_);

    out.products = std::move(products_);
    out.p_lower = lower_;
    out.p_upper = best_upper_;
    out.converged = best_upper_ - lower_ <= std::max(limits_.epsilon, 0.0);
    out.exhausted = exhausted_;
    out.truncated = truncated_;
    out.deadline_exceeded = deadline_exceeded_;
    out.stats = stats_;
    out.stats.emitted = out.products.size();
    out.stats.deferred = deferred_count_;
    return out;
  }

 private:
  void seed() {
    Item root;
    if (!absorb(pdag_, pdag_.root, root.literals, root.gates)) return;
    std::vector<std::uint64_t> scratch;
    root.mass = item_mass(pdag_, root, scratch);
    merge_child(std::move(root));
  }

  void drain() {
    while (true) {
      const double upper_now = current_upper();
      best_upper_ = std::min(best_upper_, std::max(upper_now, lower_));
      if (frontier_size_ == 0) {
        exhausted_ = true;
        return;
      }
      if (limits_.epsilon >= 0.0 && best_upper_ - lower_ <= limits_.epsilon)
        return;
      if (budget_.poll() || budget_.expired()) {
        deadline_exceeded_ = true;
        truncated_ = true;
        return;
      }
      if (limits_.max_expansions != 0 &&
          stats_.expansions >= limits_.max_expansions) {
        truncated_ = true;
        return;
      }
      if (products_.size() >= limits_.max_sets) {
        truncated_ = true;
        return;
      }
      round();
    }
  }

  void round() {
    const std::vector<Item> batch = select_batch();
    const std::size_t snapshot = emitted_.size();
    // Expansion is read-only on the frontier state: items were popped, the
    // emitted prefix [0, snapshot) is frozen for the round.
    std::vector<Expansion> expansions = parallel_map(
        limits_.pool, batch.size(), [&](std::size_t i) -> Expansion {
          return expand(batch[i], snapshot);
        });
    for (Expansion& expansion : expansions) {
      stats_.subsumed += expansion.subsumed;
      if (expansion.order_truncated) truncated_ = true;
      order_dropped_.add(expansion.order_dropped_mass);
      for (Item& child : expansion.children) {
        // Re-screen against sets emitted after the snapshot (by an earlier
        // merge slot of this same round): deterministic, merge runs in
        // batch order.
        if (subsumed_by(emitted_, snapshot, emitted_.size(), child.literals,
                        literal_signature(child.literals))) {
          ++stats_.subsumed;
          continue;
        }
        merge_child(std::move(child));
      }
    }
    stats_.expansions += batch.size();
    ++stats_.rounds;
    stats_.peak_frontier = std::max(stats_.peak_frontier, frontier_size_);
  }

  /// Pops the globally best <= kRoundWidth items: repeatedly take the best
  /// shard top (ties by lowest shard index). Purely content-driven.
  std::vector<Item> select_batch() {
    std::vector<Item> batch;
    batch.reserve(kRoundWidth);
    while (batch.size() < kRoundWidth) {
      std::size_t best_shard = kShards;
      for (std::size_t s = 0; s < kShards; ++s) {
        if (shards_[s].empty()) continue;
        if (best_shard == kShards ||
            item_before(shards_[s].top(), shards_[best_shard].top()))
          best_shard = s;
      }
      if (best_shard == kShards) break;
      batch.push_back(shards_[best_shard].top());
      shards_[best_shard].pop();
      --frontier_size_;
      residual_.add(-batch.back().mass);
    }
    return batch;
  }

  Expansion expand(const Item& item, std::size_t snapshot) const {
    Expansion result;
    const PdagGate& gate =
        pdag_.gates[static_cast<std::size_t>(item.gates.front())];
    result.children.reserve(gate.children.size());
    std::vector<std::uint64_t> scratch;
    for (const Ref choice : gate.children) {
      Item child;
      child.literals = item.literals;
      child.gates.assign(item.gates.begin() + 1, item.gates.end());
      if (!absorb(pdag_, choice, child.literals, child.gates))
        continue;  // contradictory: measure 0, no residual to keep
      if (subsumed_by(emitted_, 0, snapshot, child.literals,
                      literal_signature(child.literals))) {
        ++result.subsumed;
        continue;
      }
      child.mass = item_mass(pdag_, child, scratch);
      if (child.literals.size() > limits_.max_order) {
        // Beyond the order cap: never enumerated, so its mass can never
        // leave the upper bound. The run is truncated, not converged,
        // unless the lost mass is below epsilon anyway.
        result.order_dropped_mass += child.mass;
        result.order_truncated = true;
        continue;
      }
      result.children.push_back(std::move(child));
    }
    return result;
  }

  /// Deterministic single-threaded sink for new items: complete products
  /// are emitted (SDP-admitted or deferred), open items go to their
  /// content shard.
  void merge_child(Item&& child) {
    if (child.gates.empty()) {
      emit(std::move(child));
      return;
    }
    const std::size_t shard = shard_of(child);
    residual_.add(child.mass);
    shards_[shard].push(std::move(child));
    ++frontier_size_;
  }

  void emit(Item&& product) {
    Emitted entry;
    entry.signature = literal_signature(product.literals);
    entry.literals = std::move(product.literals);
    if (std::optional<double> delta = sdp_.admit(entry.literals)) {
      lower_ += *delta;
    } else {
      ++deferred_count_;
      deferred_.add(product.mass);
    }
    products_.push_back(entry.literals);
    emitted_.push_back(std::move(entry));
  }

  double current_upper() const {
    const double upper = lower_ + deferred_.value() + order_dropped_.value() +
                         residual_.value();
    return std::min(upper, 1.0);
  }

  std::size_t shard_of(const Item& item) const noexcept {
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a
    for (const int literal : item.literals) {
      hash ^= static_cast<std::uint64_t>(literal);
      hash *= 1099511628211ULL;
    }
    for (const Ref gate : item.gates) {
      hash ^= static_cast<std::uint64_t>(gate) + 0x9e3779b97f4a7c15ULL;
      hash *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(hash % kShards);
  }

  const Pdag& pdag_;
  const BoundLimits& limits_;
  Budget budget_;
  SdpEngine sdp_;
  std::array<ShardQueue, kShards> shards_;
  std::size_t frontier_size_ = 0;
  std::vector<Emitted> emitted_;
  std::vector<std::vector<int>> products_;
  double lower_ = 0.0;
  double best_upper_ = 1.0;
  Accumulator residual_;
  Accumulator deferred_;
  Accumulator order_dropped_;
  std::size_t deferred_count_ = 0;
  bool truncated_ = false;
  bool deadline_exceeded_ = false;
  bool exhausted_ = false;
  BoundStats stats_;
};

}  // namespace

BoundOutcome drain_frontier(const Pdag& pdag, const BoundLimits& limits) {
  return Frontier(pdag, limits).run();
}

}  // namespace ftsynth::bound
