// Best-first anytime enumeration of cut sets with certified probability
// bounds -- the core of `--engine bound`.
//
// The enumerator maintains a priority queue of *partial products*: a set
// of chosen literals plus a set of still-open (disjunction) gates, ordered
// by a certified upper bound on the probability mass reachable through the
// item (bound/pdag.h supplies the per-gate bounds). Draining the queue
// most-probable-first yields complete products -- cut sets -- in roughly
// descending probability, and two running numbers that bracket the exact
// top-event probability at every step:
//
//   lower  = P(union of emitted cut sets), computed exactly by
//            incremental disjoint-product expansion (SDP): each admitted
//            set contributes the measure of the region it adds beyond the
//            sets before it. Monotone non-decreasing.
//   upper  = lower + (residual mass of the open frontier)
//                  + (raw mass of sets whose SDP expansion was deferred)
//                  + (mass dropped by order/expansion limits).
//            Each term over-approximates the probability the enumeration
//            has not yet accounted for exactly, so the smallest upper
//            bound seen so far is kept (the sum itself may transiently
//            rise when an expansion splits an item into looser children).
//
// The run terminates on convergence (interval width <= epsilon), Budget
// expiry (deadline or expansion cap), listing limits, or exhaustion; an
// exhausted run has emitted every minimal cut set and, absent deferrals,
// lower == upper == the exact probability.
//
// Parallelism is round-synchronised so output is byte-identical across
// --jobs counts: each round deterministically selects the globally best
// fixed-size batch of items from a constant number of shards, expands the
// batch on the pool (determinism by indexing), then merges children and
// emitted products serially in batch order. Nothing about shard count,
// batch size or merge order depends on the worker count.

#pragma once

#include <cstddef>
#include <vector>

#include "bound/pdag.h"
#include "core/budget.h"

namespace ftsynth {
class ThreadPool;
}  // namespace ftsynth

namespace ftsynth::bound {

struct BoundLimits {
  /// Stop once upper - lower <= epsilon. Negative: never stop early (run
  /// to exhaustion or Budget expiry); the converged flag then reports
  /// whether the final width is exactly zero.
  double epsilon = 1e-6;
  /// Items that grow beyond this many literals are dropped from the
  /// frontier; their mass stays in the upper bound and the run is flagged
  /// truncated (mirrors CutSetOptions::max_order).
  std::size_t max_order = 64;
  /// Emission cap (mirrors CutSetOptions::max_sets).
  std::size_t max_sets = std::size_t{1} << 20;
  /// Total expansion cap; 0 = unlimited (from Budget::max_nodes).
  std::size_t max_expansions = 0;
  Budget budget;
  ThreadPool* pool = nullptr;
};

struct BoundStats {
  std::size_t rounds = 0;
  std::size_t expansions = 0;   ///< items popped and resolved
  std::size_t emitted = 0;      ///< complete products admitted
  std::size_t peak_frontier = 0;
  std::size_t subsumed = 0;     ///< items/products pruned against emitted sets
  std::size_t deferred = 0;     ///< emitted sets outside the SDP lower bound
};

struct BoundOutcome {
  /// Emitted products as sorted literal-id lists (pdag.h convention).
  /// Guaranteed free of exact duplicates and of supersets of *earlier*
  /// emissions; a final minimisation pass still applies (a later, smaller
  /// set may subsume an earlier one).
  std::vector<std::vector<int>> products;
  double p_lower = 0.0;
  double p_upper = 1.0;
  bool converged = false;
  bool exhausted = false;           ///< frontier fully drained
  bool truncated = false;           ///< an order/sets/expansion limit bit
  bool deadline_exceeded = false;
  BoundStats stats;
};

BoundOutcome drain_frontier(const Pdag& pdag, const BoundLimits& limits);

}  // namespace ftsynth::bound
