// PDAG compilation for the anytime bound engine.
//
// The best-first enumerator (bound/frontier.h) does not walk FtNode
// pointers: it works on a compact gate graph over dense literal ids, so a
// frontier item is two small sorted id vectors and every probability or
// support lookup is an array index. This module compiles a *normalised*
// FaultTree (fta/simplify.h: NNF, NOT only over leaves, flattened,
// structure-shared) into that form and precomputes, per gate, a certified
// upper bound on its probability plus its event support:
//
//   * literal:      ub = p (caller-supplied, polarity-adjusted);
//   * OR:           ub = min(1, sum of child ubs)      (union bound);
//   * AND, children with pairwise-disjoint supports:
//                   ub = product of child ubs          (independence);
//   * AND, overlapping supports:
//                   ub = min over child ubs            (monotonicity).
//
// All three bounds hold for arbitrary sharing of independent basic events,
// so every number derived from them downstream is certified, never a
// heuristic. The disjointness flag is kept on the gate: the frontier uses
// it again to decide whether an item's residual mass may multiply its open
// gates' bounds or must fall back to the min rule.
//
// Literal ids follow the analysis/cutsets.cpp convention: id =
// 2 * event_rank + (negated ? 1 : 0), with event ranks assigned by the
// caller (the depth-first occurrence order of ordering.h), so emitted
// products convert straight into the cut-set kernel's bitsets.

#pragma once

#include <cstdint>
#include <vector>

#include "fta/fault_tree.h"

namespace ftsynth::bound {

/// Child reference: a non-negative value indexes Pdag::gates; a negative
/// value encodes literal id `~ref`.
using Ref = std::int32_t;

constexpr Ref literal_ref(int literal) noexcept {
  return ~static_cast<Ref>(literal);
}
constexpr bool is_literal(Ref ref) noexcept { return ref < 0; }
constexpr int literal_of(Ref ref) noexcept { return ~ref; }

struct PdagGate {
  /// true: conjunction (AND / priority-AND, identical cut-set semantics);
  /// false: disjunction.
  bool conjunction = false;
  /// Children supports are pairwise disjoint (relevant for conjunctions:
  /// enables the product upper bound and item-mass factorisation).
  bool disjoint_children = false;
  /// Certified upper bound on the gate's probability.
  double ub = 0.0;
  std::vector<Ref> children;
  /// Event-index bitset of the gate's support (one bit per event rank).
  std::vector<std::uint64_t> support;
};

struct Pdag {
  /// Topological: every gate's gate-children precede it.
  std::vector<PdagGate> gates;
  Ref root = 0;
  bool constant_false = false;  ///< empty tree (no top): no cut sets
  std::size_t event_count = 0;
  /// Probability per literal id (2 * event_count entries): the caller's
  /// event probabilities with p(NOT x) = 1 - p(x) applied.
  std::vector<double> literal_probability;
};

/// Compiles `normalised` over `event_order` (rank = index; must cover every
/// distinct non-house leaf, i.e. dfs_variable_order of the same tree) with
/// `event_probability[rank]` as the basic probabilities. Throws
/// ErrorKind::kInternal on a non-normalised shape (NOT over a gate).
Pdag compile_pdag(const FaultTree& normalised,
                  const std::vector<const FtNode*>& event_order,
                  const std::vector<double>& event_probability);

/// True when the two supports share no event.
bool supports_disjoint(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) noexcept;

}  // namespace ftsynth::bound
