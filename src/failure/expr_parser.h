// Parser for the textual failure-expression notation used in annotation
// tables (the paper's Figure 2 columns), e.g.
//
//   "Omission-input_1 AND Omission-input_2"
//   "Jammed OR Short_circuited"
//   "Wrong-input_1 OR Wrong-input_2 OR Biased"
//   "NOT (Stuck-in AND monitor_failed)"
//
// Grammar (case-insensitive keywords; & | ! accepted as operator aliases):
//
//   expr   := or
//   or     := and  ( ("OR"  | "|") and  )*
//   and    := unary( ("AND" | "&") unary)*
//   unary  := ("NOT" | "!") unary | "(" expr ")" | atom
//   atom   := "true" | "false"
//           | IDENT "-" IDENT      -- FailureClass "-" port  => deviation
//           | IDENT                -- malfunction name
//
// A hyphenated atom's head must name a registered failure class; a bare
// identifier is a component malfunction.

#pragma once

#include <string_view>

#include "failure/expression.h"
#include "failure/failure_class.h"

namespace ftsynth {

/// Source context threaded into expression parse errors, so a malformed
/// annotation surfaces with a usable location ("where in the model file")
/// and owner ("which block") instead of a bare column.
struct ExprSource {
  int line = 0;            ///< 1-based line of the expression text; 0 unknown
  std::string block_path;  ///< owning block's hierarchical path, if any
};

/// Parses `text` into an expression; throws ParseError on syntax errors and
/// on deviations whose failure class is not in `registry`. The error's
/// line is taken from `source` (column is the 1-based offset into `text`),
/// and its message names `source.block_path` when present. Expressions
/// nested deeper than an internal guard (parentheses / NOT chains) are
/// rejected with a ParseError rather than risking stack exhaustion.
ExprPtr parse_expression(std::string_view text,
                         const FailureClassRegistry& registry,
                         const ExprSource& source = {});

/// Parses a single deviation in "Class-port" notation (used for top-event
/// specifications); throws ParseError if `text` is not exactly a deviation.
Deviation parse_deviation(std::string_view text,
                          const FailureClassRegistry& registry,
                          const ExprSource& source = {});

}  // namespace ftsynth
