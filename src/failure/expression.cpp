#include "failure/expression.h"

#include <algorithm>

#include "core/error.h"

namespace ftsynth {

const Deviation& Expr::deviation() const {
  check_internal(op_ == ExprOp::kDeviation,
                 "Expr::deviation() on a non-deviation node");
  return deviation_;
}

int Expr::threshold() const {
  check_internal(op_ == ExprOp::kAtLeast,
                 "Expr::threshold() on a non-vote node");
  return threshold_;
}

Symbol Expr::malfunction() const {
  check_internal(op_ == ExprOp::kMalfunction,
                 "Expr::malfunction() on a non-malfunction node");
  return malfunction_;
}

namespace {

// Precedence for printing: OR(1) < AND(2) < NOT(3) < leaf(4).
int precedence(ExprOp op) noexcept {
  switch (op) {
    case ExprOp::kOr:
      return 1;
    case ExprOp::kAnd:
      return 2;
    case ExprOp::kNot:
      return 3;
    default:
      return 4;
  }
}

void print(const Expr& e, int parent_precedence, std::string& out) {
  const int mine = precedence(e.op());
  const bool parens = mine < parent_precedence;
  if (parens) out += "(";
  switch (e.op()) {
    case ExprOp::kFalse:
      out += "false";
      break;
    case ExprOp::kTrue:
      out += "true";
      break;
    case ExprOp::kDeviation:
      out += e.deviation().to_string();
      break;
    case ExprOp::kMalfunction:
      out += e.malfunction().view();
      break;
    case ExprOp::kNot:
      out += "NOT ";
      print(*e.children().front(), mine, out);
      break;
    case ExprOp::kAtLeast: {
      out += "VOTE(" + std::to_string(e.threshold()) + ":";
      for (std::size_t i = 0; i < e.children().size(); ++i) {
        out += i == 0 ? " " : ", ";
        print(*e.children()[i], 0, out);
      }
      out += ")";
      break;
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      const char* sep = e.op() == ExprOp::kAnd ? " AND " : " OR ";
      for (std::size_t i = 0; i < e.children().size(); ++i) {
        if (i != 0) out += sep;
        // Children at equal precedence need no parens for the same
        // associative operator, so pass `mine` (not mine + 1).
        print(*e.children()[i], mine, out);
      }
      break;
    }
  }
  if (parens) out += ")";
}

}  // namespace

std::string Expr::to_string() const {
  std::string out;
  print(*this, 0, out);
  return out;
}

bool Expr::evaluate(
    const std::function<bool(const Deviation&)>& deviation_value,
    const std::function<bool(Symbol)>& malfunction_value) const {
  switch (op_) {
    case ExprOp::kFalse:
      return false;
    case ExprOp::kTrue:
      return true;
    case ExprOp::kDeviation:
      return deviation_value(deviation_);
    case ExprOp::kMalfunction:
      return malfunction_value(malfunction_);
    case ExprOp::kNot:
      return !children_.front()->evaluate(deviation_value, malfunction_value);
    case ExprOp::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const ExprPtr& c) {
                           return c->evaluate(deviation_value,
                                              malfunction_value);
                         });
    case ExprOp::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const ExprPtr& c) {
                           return c->evaluate(deviation_value,
                                              malfunction_value);
                         });
    case ExprOp::kAtLeast: {
      int holding = 0;
      for (const ExprPtr& child : children_) {
        if (child->evaluate(deviation_value, malfunction_value)) ++holding;
      }
      return holding >= threshold_;
    }
  }
  throw Error(ErrorKind::kInternal, "corrupt ExprOp");
}

void Expr::for_each_leaf(const std::function<void(const Expr&)>& visit) const {
  if (is_leaf()) {
    visit(*this);
    return;
  }
  for (const ExprPtr& child : children_) child->for_each_leaf(visit);
}

std::vector<Deviation> Expr::input_deviations() const {
  std::vector<Deviation> out;
  for_each_leaf([&](const Expr& leaf) {
    if (leaf.op() != ExprOp::kDeviation) return;
    if (std::find(out.begin(), out.end(), leaf.deviation()) == out.end())
      out.push_back(leaf.deviation());
  });
  return out;
}

std::vector<Symbol> Expr::malfunctions() const {
  std::vector<Symbol> out;
  for_each_leaf([&](const Expr& leaf) {
    if (leaf.op() != ExprOp::kMalfunction) return;
    if (std::find(out.begin(), out.end(), leaf.malfunction()) == out.end())
      out.push_back(leaf.malfunction());
  });
  return out;
}

bool equal(const Expr& a, const Expr& b) noexcept {
  if (&a == &b) return true;
  if (a.op_ != b.op_) return false;
  switch (a.op_) {
    case ExprOp::kFalse:
    case ExprOp::kTrue:
      return true;
    case ExprOp::kDeviation:
      return a.deviation_ == b.deviation_;
    case ExprOp::kMalfunction:
      return a.malfunction_ == b.malfunction_;
    case ExprOp::kAtLeast:
      if (a.threshold_ != b.threshold_) return false;
      break;
    default:
      break;
  }
  if (a.children_.size() != b.children_.size()) return false;
  for (std::size_t i = 0; i < a.children_.size(); ++i) {
    if (!equal(*a.children_[i], *b.children_[i])) return false;
  }
  return true;
}

ExprPtr Expr::make(ExprOp op, std::vector<ExprPtr> children,
                   Deviation deviation, Symbol malfunction, int threshold) {
  return std::make_shared<const Expr>(Private{}, op, std::move(children),
                                      deviation, malfunction, threshold);
}

ExprPtr Expr::constant(bool value) {
  static const ExprPtr kTrueExpr =
      make(ExprOp::kTrue, {}, Deviation{}, Symbol{});
  static const ExprPtr kFalseExpr =
      make(ExprOp::kFalse, {}, Deviation{}, Symbol{});
  return value ? kTrueExpr : kFalseExpr;
}

ExprPtr Expr::deviation(FailureClass failure_class, Symbol port) {
  return deviation(Deviation{failure_class, port});
}

ExprPtr Expr::deviation(const Deviation& deviation) {
  check_internal(deviation.failure_class.valid() && !deviation.port.empty(),
                 "deviation leaf needs a failure class and a port");
  return make(ExprOp::kDeviation, {}, deviation, Symbol{});
}

ExprPtr Expr::malfunction(Symbol name) {
  check_internal(!name.empty(), "malfunction leaf needs a name");
  return make(ExprOp::kMalfunction, {}, Deviation{}, name);
}

namespace {

// Shared n-ary builder for AND/OR. `identity` is the constant absorbed
// (kTrue for AND), `annihilator` the constant that dominates (kFalse for
// AND).
ExprPtr make_nary(ExprOp op, std::vector<ExprPtr> children, ExprOp identity,
                  ExprOp annihilator,
                  ExprPtr (*rebuild)(std::vector<ExprPtr>)) {
  std::vector<ExprPtr> flat;
  flat.reserve(children.size());
  for (ExprPtr& child : children) {
    check_internal(child != nullptr, "null child in expression factory");
    if (child->op() == identity) continue;
    if (child->op() == annihilator) return Expr::constant(op == ExprOp::kOr);
    if (child->op() == op) {
      // Flatten (a AND b) AND c -> AND(a, b, c); keeps printing and cut-set
      // expansion shallow.
      for (const ExprPtr& grandchild : child->children())
        flat.push_back(grandchild);
    } else {
      flat.push_back(std::move(child));
    }
  }
  // Drop structural duplicates (X AND X == X).
  std::vector<ExprPtr> unique;
  for (ExprPtr& candidate : flat) {
    bool seen = std::any_of(unique.begin(), unique.end(), [&](const ExprPtr& u) {
      return equal(*u, *candidate);
    });
    if (!seen) unique.push_back(std::move(candidate));
  }
  if (unique.empty()) return Expr::constant(op == ExprOp::kAnd);
  if (unique.size() == 1) return unique.front();
  return rebuild(std::move(unique));
}

}  // namespace

ExprPtr Expr::make_and(std::vector<ExprPtr> children) {
  return make_nary(
      ExprOp::kAnd, std::move(children), ExprOp::kTrue, ExprOp::kFalse,
      +[](std::vector<ExprPtr> c) {
        return make(ExprOp::kAnd, std::move(c), Deviation{}, Symbol{});
      });
}

ExprPtr Expr::make_and(ExprPtr a, ExprPtr b) {
  return make_and(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr Expr::make_or(std::vector<ExprPtr> children) {
  return make_nary(
      ExprOp::kOr, std::move(children), ExprOp::kFalse, ExprOp::kTrue,
      +[](std::vector<ExprPtr> c) {
        return make(ExprOp::kOr, std::move(c), Deviation{}, Symbol{});
      });
}

ExprPtr Expr::make_or(ExprPtr a, ExprPtr b) {
  return make_or(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr Expr::make_not(ExprPtr child) {
  check_internal(child != nullptr, "null child in make_not");
  if (child->op() == ExprOp::kTrue) return constant(false);
  if (child->op() == ExprOp::kFalse) return constant(true);
  if (child->op() == ExprOp::kNot) return child->children().front();
  return make(ExprOp::kNot, {std::move(child)}, Deviation{}, Symbol{});
}

ExprPtr Expr::make_at_least(int threshold, std::vector<ExprPtr> children) {
  for (const ExprPtr& child : children)
    check_internal(child != nullptr, "null child in make_at_least");
  // Fold constants: true children always count, false children never do.
  std::vector<ExprPtr> kept;
  for (ExprPtr& child : children) {
    if (child->op() == ExprOp::kTrue) {
      --threshold;
      continue;
    }
    if (child->op() == ExprOp::kFalse) continue;
    kept.push_back(std::move(child));
  }
  if (threshold <= 0) return constant(true);
  if (threshold > static_cast<int>(kept.size())) return constant(false);
  if (threshold == 1) return make_or(std::move(kept));
  if (threshold == static_cast<int>(kept.size()))
    return make_and(std::move(kept));
  return make(ExprOp::kAtLeast, std::move(kept), Deviation{}, Symbol{},
              threshold);
}

}  // namespace ftsynth
