// Failure classes -- the vocabulary of the HAZOP-style analysis.
//
// The paper examines every component output for deviations in three
// categories (section 2):
//   (A) service provision failures: omission, commission of the output;
//   (B) timing failures: early, late delivery;
//   (C) value failures: out of range, stuck, biased, linear / non-linear
//       drift, erratic behaviour.
//
// A FailureClass names one such deviation type; applied to a port it forms a
// Deviation ("Omission-output"). The registry is extensible so analysts can
// add domain-specific classes (e.g. "Babbling" for a bus guardian study).

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/symbol.h"

namespace ftsynth {

/// The paper's three deviation categories (section 2, A/B/C).
enum class FailureCategory {
  kProvision,  ///< omission / commission of a service
  kTiming,     ///< early / late delivery
  kValue,      ///< wrong value: out of range, stuck, biased, drift, erratic
};

std::string_view to_string(FailureCategory category) noexcept;

/// An immutable, interned failure class. Value type; compares by identity.
class FailureClass {
 public:
  constexpr FailureClass() noexcept = default;
  FailureClass(Symbol name, FailureCategory category) noexcept
      : name_(name), category_(category) {}

  Symbol name() const noexcept { return name_; }
  std::string_view view() const noexcept { return name_.view(); }
  FailureCategory category() const noexcept { return category_; }
  bool valid() const noexcept { return !name_.empty(); }

  friend bool operator==(FailureClass a, FailureClass b) noexcept {
    return a.name_ == b.name_;
  }
  friend bool operator!=(FailureClass a, FailureClass b) noexcept {
    return a.name_ != b.name_;
  }
  friend bool operator<(FailureClass a, FailureClass b) noexcept {
    return a.name_ < b.name_;
  }

  std::size_t hash() const noexcept { return name_.hash(); }

 private:
  Symbol name_;
  FailureCategory category_ = FailureCategory::kProvision;
};

/// Registry of known failure classes. A registry instance is shared by a
/// model and every analysis run on it; the standard taxonomy above is
/// pre-registered by the default constructor.
class FailureClassRegistry {
 public:
  /// Constructs with the paper's standard taxonomy registered:
  /// Omission, Commission (provision); Early, Late (timing);
  /// Value, OutOfRange, Stuck, Biased, Drift, Erratic (value).
  FailureClassRegistry();

  /// Registers a new class; throws ErrorKind::kModel if the name is not an
  /// identifier or is already registered with a different category.
  /// Re-registering with the same category is a no-op (idempotent).
  FailureClass add(std::string_view name, FailureCategory category);

  /// Looks a class up by (case-sensitive) name.
  std::optional<FailureClass> find(std::string_view name) const;

  /// Like find(), but throws ErrorKind::kLookup on a miss.
  FailureClass at(std::string_view name) const;

  /// All registered classes in registration order.
  const std::vector<FailureClass>& all() const noexcept { return classes_; }

  // Convenience accessors for the pre-registered standard classes.
  FailureClass omission() const { return at("Omission"); }
  FailureClass commission() const { return at("Commission"); }
  FailureClass early() const { return at("Early"); }
  FailureClass late() const { return at("Late"); }
  FailureClass value() const { return at("Value"); }

 private:
  std::vector<FailureClass> classes_;
};

/// A deviation: a failure class observed at a named port. Rendered in the
/// paper's hyphenated notation, e.g. "Omission-input_1".
struct Deviation {
  FailureClass failure_class;
  Symbol port;

  std::string to_string() const;

  friend bool operator==(const Deviation& a, const Deviation& b) noexcept {
    return a.failure_class == b.failure_class && a.port == b.port;
  }
  friend bool operator<(const Deviation& a, const Deviation& b) noexcept {
    if (a.failure_class != b.failure_class)
      return a.failure_class < b.failure_class;
    return a.port < b.port;
  }
};

}  // namespace ftsynth

template <>
struct std::hash<ftsynth::FailureClass> {
  std::size_t operator()(ftsynth::FailureClass c) const noexcept {
    return c.hash();
  }
};

template <>
struct std::hash<ftsynth::Deviation> {
  std::size_t operator()(const ftsynth::Deviation& d) const noexcept {
    return d.failure_class.hash() * 1000003u ^ d.port.hash();
  }
};
