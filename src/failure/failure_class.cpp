#include "failure/failure_class.h"

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

std::string_view to_string(FailureCategory category) noexcept {
  switch (category) {
    case FailureCategory::kProvision:
      return "provision";
    case FailureCategory::kTiming:
      return "timing";
    case FailureCategory::kValue:
      return "value";
  }
  return "unknown";
}

FailureClassRegistry::FailureClassRegistry() {
  add("Omission", FailureCategory::kProvision);
  add("Commission", FailureCategory::kProvision);
  add("Early", FailureCategory::kTiming);
  add("Late", FailureCategory::kTiming);
  add("Value", FailureCategory::kValue);
  add("OutOfRange", FailureCategory::kValue);
  add("Stuck", FailureCategory::kValue);
  add("Biased", FailureCategory::kValue);
  add("Drift", FailureCategory::kValue);
  add("Erratic", FailureCategory::kValue);
}

FailureClass FailureClassRegistry::add(std::string_view name,
                                       FailureCategory category) {
  require(is_identifier(name), ErrorKind::kModel,
          "failure class name is not an identifier: '" + std::string(name) +
              "'");
  if (auto existing = find(name)) {
    require(existing->category() == category, ErrorKind::kModel,
            "failure class '" + std::string(name) +
                "' already registered with category " +
                std::string(to_string(existing->category())));
    return *existing;
  }
  FailureClass cls{Symbol(name), category};
  classes_.push_back(cls);
  return cls;
}

std::optional<FailureClass> FailureClassRegistry::find(
    std::string_view name) const {
  for (FailureClass cls : classes_) {
    if (cls.view() == name) return cls;
  }
  return std::nullopt;
}

FailureClass FailureClassRegistry::at(std::string_view name) const {
  auto cls = find(name);
  require(cls.has_value(), ErrorKind::kLookup,
          "unknown failure class '" + std::string(name) + "'");
  return *cls;
}

std::string Deviation::to_string() const {
  return std::string(failure_class.view()) + "-" + std::string(port.view());
}

}  // namespace ftsynth
