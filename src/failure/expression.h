// Failure expressions.
//
// Each row of a component's hazard analysis gives the causes of an output
// deviation as a logical expression over (a) deviations of the component's
// inputs and (b) internal malfunctions of the component (paper, Figure 2:
// "Input Deviation Logic" and "Component Malfunction Logic" columns).
//
// Expr is an immutable AST shared via shared_ptr<const Expr>; subtrees are
// freely shared between annotations and between synthesized trees.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "failure/failure_class.h"

namespace ftsynth {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node kinds of a failure expression.
enum class ExprOp {
  kFalse,        ///< constant: cannot happen
  kTrue,         ///< constant: always (used for unconditional propagation)
  kAnd,          ///< n-ary conjunction
  kOr,           ///< n-ary disjunction
  kNot,          ///< negation (one child)
  kAtLeast,      ///< k-of-N vote over the children ("VOTE(k: ...)")
  kDeviation,    ///< leaf: deviation of one of the component's input ports
  kMalfunction,  ///< leaf: internal malfunction of the component
};

/// Immutable failure-expression node. Construct through the factory
/// functions below, which flatten nested AND/OR and fold constants.
class Expr {
 public:
  ExprOp op() const noexcept { return op_; }

  /// Children of kAnd / kOr / kNot; empty for leaves and constants.
  const std::vector<ExprPtr>& children() const noexcept { return children_; }

  /// For kDeviation leaves.
  const Deviation& deviation() const;
  /// For kAtLeast nodes: the vote threshold k.
  int threshold() const;
  /// For kMalfunction leaves.
  Symbol malfunction() const;

  bool is_leaf() const noexcept {
    return op_ == ExprOp::kDeviation || op_ == ExprOp::kMalfunction;
  }
  bool is_constant() const noexcept {
    return op_ == ExprOp::kTrue || op_ == ExprOp::kFalse;
  }

  /// Renders in the paper's notation, e.g.
  /// "Omission-input_1 AND Omission-input_2 OR Jammed"; parenthesises only
  /// where required by precedence (NOT > AND > OR).
  std::string to_string() const;

  /// Evaluates under a truth assignment for the leaves.
  bool evaluate(
      const std::function<bool(const Deviation&)>& deviation_value,
      const std::function<bool(Symbol)>& malfunction_value) const;

  /// Visits every leaf once (duplicates within the tree included).
  void for_each_leaf(const std::function<void(const Expr&)>& visit) const;

  /// All distinct input-port deviations referenced by the expression.
  std::vector<Deviation> input_deviations() const;
  /// All distinct malfunction names referenced by the expression.
  std::vector<Symbol> malfunctions() const;

  /// Structural equality (same shape, same leaves).
  friend bool equal(const Expr& a, const Expr& b) noexcept;

  // -- Factories -------------------------------------------------------------

  static ExprPtr constant(bool value);
  static ExprPtr deviation(FailureClass failure_class, Symbol port);
  static ExprPtr deviation(const Deviation& deviation);
  static ExprPtr malfunction(Symbol name);

  /// Conjunction; flattens nested ANDs, drops kTrue children, returns kFalse
  /// if any child is kFalse, and collapses a single remaining child.
  static ExprPtr make_and(std::vector<ExprPtr> children);
  static ExprPtr make_and(ExprPtr a, ExprPtr b);

  /// Disjunction with the dual simplifications of make_and.
  static ExprPtr make_or(std::vector<ExprPtr> children);
  static ExprPtr make_or(ExprPtr a, ExprPtr b);

  /// Negation; folds constants and double negation.
  static ExprPtr make_not(ExprPtr child);

  /// k-of-N vote: true when at least `threshold` children hold. Folds the
  /// degenerate cases (k <= 0 -> true; k > N -> false; k == 1 -> OR;
  /// k == N -> AND).
  static ExprPtr make_at_least(int threshold, std::vector<ExprPtr> children);

 private:
  struct Private {};  // gates construction to the factories

 public:
  Expr(Private, ExprOp op, std::vector<ExprPtr> children, Deviation deviation,
       Symbol malfunction, int threshold) noexcept
      : op_(op),
        children_(std::move(children)),
        deviation_(deviation),
        malfunction_(malfunction),
        threshold_(threshold) {}

 private:
  static ExprPtr make(ExprOp op, std::vector<ExprPtr> children,
                      Deviation deviation, Symbol malfunction,
                      int threshold = 0);

  ExprOp op_;
  std::vector<ExprPtr> children_;
  Deviation deviation_;  // valid iff op_ == kDeviation
  Symbol malfunction_;   // valid iff op_ == kMalfunction
  int threshold_ = 0;    // valid iff op_ == kAtLeast
};

}  // namespace ftsynth
