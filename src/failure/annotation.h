// Component hazard-analysis annotations.
//
// The result of the HAZOP-style examination of one component is a table
// (paper, Figure 2) listing, for every identified output failure mode:
//   - the output deviation (failure class + output port),
//   - a description,
//   - the Input Deviation Logic (causes among input deviations),
//   - the Component Malfunction Logic (causes among internal malfunctions),
//   - failure rates (lambda, in failures/hour) for each malfunction.
//
// An Annotation holds that table for one component, plus the component's
// malfunction list. The analysis is deliberately local -- confined to the
// component's I/O interface -- which is what makes annotations reusable
// across applications (paper, section 2).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "failure/expression.h"
#include "failure/failure_class.h"

namespace ftsynth {

/// An internal malfunction of a component ("Jammed", "Biased", ...), with an
/// estimated or experimentally derived failure rate in failures/hour.
struct Malfunction {
  Symbol name;
  double rate = 0.0;  ///< lambda, failures per hour; 0 = unquantified
  std::string description;
};

/// One row of the hazard-analysis table: the causes of one output deviation.
///
/// `condition_probability` addresses the paper's data-dependent failure
/// discussion (section 2: a stuck register bit corrupts only the values
/// that exercise it): when < 1, the causes produce the output deviation
/// only under an input-data condition of that probability. Synthesis ANDs
/// the row with a fixed-probability condition event.
struct AnnotationRow {
  Deviation output;      ///< the output failure mode being explained
  ExprPtr cause;         ///< causes: input deviations and/or malfunctions
  std::string description;
  double condition_probability = 1.0;  ///< P[causes manifest at the output]
};

/// The complete local failure model of one component.
class Annotation {
 public:
  Annotation() = default;

  /// Declares a malfunction; throws ErrorKind::kModel on duplicate names.
  void add_malfunction(Symbol name, double rate,
                       std::string description = {});

  /// Adds a hazard-analysis row. Multiple rows for the same output deviation
  /// are permitted and are OR-ed together by cause().
  /// `condition_probability` must be in (0, 1]; values < 1 mark the row as
  /// data-dependent (see AnnotationRow).
  void add_row(Deviation output, ExprPtr cause, std::string description = {},
               double condition_probability = 1.0);

  const std::vector<Malfunction>& malfunctions() const noexcept {
    return malfunctions_;
  }
  const std::vector<AnnotationRow>& rows() const noexcept { return rows_; }

  bool empty() const noexcept {
    return malfunctions_.empty() && rows_.empty();
  }

  std::optional<Malfunction> find_malfunction(Symbol name) const;

  /// Combined cause expression for `output` (rows OR-ed together), or
  /// nullptr when no row mentions that deviation.
  ExprPtr cause(const Deviation& output) const;

  /// True if some row explains `output`.
  bool has_row(const Deviation& output) const;

  /// Every distinct output deviation that has at least one row.
  std::vector<Deviation> output_deviations() const;

  /// Every distinct input deviation referenced by any row -- the deviations
  /// this component "responds to" (paper, section 2, question a).
  std::vector<Deviation> referenced_input_deviations() const;

  /// Renders the annotation as a Figure 2-style text table with columns
  /// Failure Mode | Description | Causes | lambda(f/h).
  std::string render_table(const std::string& component_name) const;

 private:
  std::vector<Malfunction> malfunctions_;
  std::vector<AnnotationRow> rows_;
};

}  // namespace ftsynth
