#include "failure/annotation.h"

#include <algorithm>

#include "core/error.h"
#include "core/strings.h"
#include "core/text_table.h"

namespace ftsynth {

void Annotation::add_malfunction(Symbol name, double rate,
                                 std::string description) {
  require(!name.empty(), ErrorKind::kModel, "malfunction needs a name");
  require(rate >= 0.0, ErrorKind::kModel,
          "malfunction '" + name.str() + "' has negative failure rate");
  require(!find_malfunction(name).has_value(), ErrorKind::kModel,
          "duplicate malfunction '" + name.str() + "'");
  malfunctions_.push_back({name, rate, std::move(description)});
}

void Annotation::add_row(Deviation output, ExprPtr cause,
                         std::string description,
                         double condition_probability) {
  require(output.failure_class.valid() && !output.port.empty(),
          ErrorKind::kModel, "annotation row needs an output deviation");
  require(cause != nullptr, ErrorKind::kModel,
          "annotation row for " + output.to_string() + " has no cause");
  require(condition_probability > 0.0 && condition_probability <= 1.0,
          ErrorKind::kModel,
          "condition probability of " + output.to_string() +
              " must be in (0, 1]");
  rows_.push_back({output, std::move(cause), std::move(description),
                   condition_probability});
}

std::optional<Malfunction> Annotation::find_malfunction(Symbol name) const {
  for (const Malfunction& m : malfunctions_) {
    if (m.name == name) return m;
  }
  return std::nullopt;
}

ExprPtr Annotation::cause(const Deviation& output) const {
  std::vector<ExprPtr> causes;
  for (const AnnotationRow& row : rows_) {
    if (row.output == output) causes.push_back(row.cause);
  }
  if (causes.empty()) return nullptr;
  return Expr::make_or(std::move(causes));
}

bool Annotation::has_row(const Deviation& output) const {
  return std::any_of(rows_.begin(), rows_.end(), [&](const AnnotationRow& r) {
    return r.output == output;
  });
}

std::vector<Deviation> Annotation::output_deviations() const {
  std::vector<Deviation> out;
  for (const AnnotationRow& row : rows_) {
    if (std::find(out.begin(), out.end(), row.output) == out.end())
      out.push_back(row.output);
  }
  return out;
}

std::vector<Deviation> Annotation::referenced_input_deviations() const {
  std::vector<Deviation> out;
  for (const AnnotationRow& row : rows_) {
    for (const Deviation& d : row.cause->input_deviations()) {
      if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
    }
  }
  return out;
}

std::string Annotation::render_table(const std::string& component_name) const {
  std::string out = "Hazard analysis: " + component_name + "\n";
  TextTable table({"Output Failure Mode", "Description", "Causes"});
  for (const AnnotationRow& row : rows_) {
    std::string cause = row.cause->to_string();
    if (row.condition_probability < 1.0)
      cause += " [data condition p=" + format_double(row.condition_probability) + "]";
    table.add_row({row.output.to_string(), row.description, std::move(cause)});
  }
  out += table.render();
  if (!malfunctions_.empty()) {
    TextTable rates({"Malfunction", "Description", "lambda (f/h)"});
    for (const Malfunction& m : malfunctions_) {
      rates.add_row({m.name.str(), m.description,
                     m.rate > 0.0 ? format_double(m.rate) : "-"});
    }
    out += rates.render();
  }
  return out;
}

}  // namespace ftsynth
