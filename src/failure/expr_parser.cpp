#include "failure/expr_parser.h"

#include <cctype>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

/// Parenthesis / NOT nesting ceiling: adversarial expressions (a 10k-deep
/// "((((..." chain) must fail with a located ParseError instead of
/// exhausting the parser's stack.
constexpr int kMaxExprDepth = 500;

/// Builds and throws the located ParseError for an expression problem:
/// line from the source context, 1-based column into the expression text,
/// and the owning block named in the message.
[[noreturn]] void raise(const ExprSource& source, std::string message,
                        int column) {
  if (!source.block_path.empty())
    message += " (in annotation of '" + source.block_path + "')";
  throw ParseError(std::move(message), source.line > 0 ? source.line : 1,
                   column);
}

enum class TokenKind {
  kIdent, kLParen, kRParen, kHyphen, kAnd, kOr, kNot,
  kComma, kColon, kInteger, kEnd
};

struct Token {
  TokenKind kind;
  std::string_view text;
  int column;  // 1-based offset into the expression text
};

class Lexer {
 public:
  Lexer(std::string_view text, const ExprSource& source)
      : text_(text), source_(source) {}

  Token next() {
    skip_space();
    const int column = static_cast<int>(pos_) + 1;
    if (pos_ >= text_.size()) return {TokenKind::kEnd, {}, column};
    const char c = text_[pos_];
    switch (c) {
      case '(':
        ++pos_;
        return {TokenKind::kLParen, text_.substr(pos_ - 1, 1), column};
      case ')':
        ++pos_;
        return {TokenKind::kRParen, text_.substr(pos_ - 1, 1), column};
      case '-':
        ++pos_;
        return {TokenKind::kHyphen, text_.substr(pos_ - 1, 1), column};
      case '&':
        ++pos_;
        return {TokenKind::kAnd, text_.substr(pos_ - 1, 1), column};
      case '|':
        ++pos_;
        return {TokenKind::kOr, text_.substr(pos_ - 1, 1), column};
      case '!':
        ++pos_;
        return {TokenKind::kNot, text_.substr(pos_ - 1, 1), column};
      case ',':
        ++pos_;
        return {TokenKind::kComma, text_.substr(pos_ - 1, 1), column};
      case ':':
        ++pos_;
        return {TokenKind::kColon, text_.substr(pos_ - 1, 1), column};
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      return {TokenKind::kInteger, text_.substr(start, pos_ - start), column};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        ++pos_;
      std::string_view word = text_.substr(start, pos_ - start);
      if (iequals(word, "AND")) return {TokenKind::kAnd, word, column};
      if (iequals(word, "OR")) return {TokenKind::kOr, word, column};
      if (iequals(word, "NOT")) return {TokenKind::kNot, word, column};
      return {TokenKind::kIdent, word, column};
    }
    raise(source_,
          "unexpected character '" + std::string(1, c) +
              "' in failure expression",
          column);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  const ExprSource& source_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, const FailureClassRegistry& registry,
         const ExprSource& source)
      : lexer_(text, source), registry_(registry), source_(source) {
    advance();
  }

  ExprPtr parse() {
    ExprPtr expr = parse_or();
    expect(TokenKind::kEnd, "end of expression");
    return expr;
  }

  Deviation parse_single_deviation() {
    expect(TokenKind::kIdent, "failure class name");
    Token head = current_;
    advance();
    expect(TokenKind::kHyphen, "'-' after failure class");
    advance();
    expect(TokenKind::kIdent, "port name after '-'");
    Deviation deviation = make_deviation(head, current_);
    advance();
    expect(TokenKind::kEnd, "end of deviation");
    return deviation;
  }

 private:
  ExprPtr parse_or() {
    std::vector<ExprPtr> terms{parse_and()};
    while (current_.kind == TokenKind::kOr) {
      advance();
      terms.push_back(parse_and());
    }
    return Expr::make_or(std::move(terms));
  }

  ExprPtr parse_and() {
    std::vector<ExprPtr> factors{parse_unary()};
    while (current_.kind == TokenKind::kAnd) {
      advance();
      factors.push_back(parse_unary());
    }
    return Expr::make_and(std::move(factors));
  }

  ExprPtr parse_unary() {
    if (++depth_ > kMaxExprDepth) {
      raise(source_,
            "failure expression nested deeper than " +
                std::to_string(kMaxExprDepth) + " levels",
            current_.column);
    }
    ExprPtr result;
    if (current_.kind == TokenKind::kNot) {
      advance();
      result = Expr::make_not(parse_unary());
    } else if (current_.kind == TokenKind::kLParen) {
      advance();
      result = parse_or();
      expect(TokenKind::kRParen, "')'");
      advance();
    } else {
      result = parse_atom();
    }
    --depth_;
    return result;
  }

  ExprPtr parse_atom() {
    expect(TokenKind::kIdent, "identifier, 'NOT' or '('");
    Token head = current_;
    advance();
    // VOTE(k: expr, expr, ...) -- the k-of-N vote.
    if (iequals(head.text, "VOTE") && current_.kind == TokenKind::kLParen) {
      advance();
      expect(TokenKind::kInteger, "vote threshold");
      int threshold = 0;
      for (char digit : current_.text)
        threshold = threshold * 10 + (digit - '0');
      advance();
      expect(TokenKind::kColon, "':' after the vote threshold");
      advance();
      std::vector<ExprPtr> children{parse_or()};
      while (current_.kind == TokenKind::kComma) {
        advance();
        children.push_back(parse_or());
      }
      expect(TokenKind::kRParen, "')'");
      advance();
      return Expr::make_at_least(threshold, std::move(children));
    }
    if (current_.kind == TokenKind::kHyphen) {
      advance();
      expect(TokenKind::kIdent, "port name after '-'");
      Deviation deviation = make_deviation(head, current_);
      advance();
      return Expr::deviation(deviation);
    }
    if (iequals(head.text, "true")) return Expr::constant(true);
    if (iequals(head.text, "false")) return Expr::constant(false);
    return Expr::malfunction(Symbol(head.text));
  }

  Deviation make_deviation(const Token& class_token,
                           const Token& port_token) const {
    auto cls = registry_.find(class_token.text);
    if (!cls) {
      raise(source_,
            "unknown failure class '" + std::string(class_token.text) +
                "' in deviation",
            class_token.column);
    }
    return Deviation{*cls, Symbol(port_token.text)};
  }

  void advance() { current_ = lexer_.next(); }

  void expect(TokenKind kind, const std::string& what) const {
    if (current_.kind != kind) {
      std::string got = current_.kind == TokenKind::kEnd
                            ? "end of input"
                            : "'" + std::string(current_.text) + "'";
      raise(source_, "expected " + what + ", got " + got, current_.column);
    }
  }

  Lexer lexer_;
  const FailureClassRegistry& registry_;
  const ExprSource& source_;
  Token current_{TokenKind::kEnd, {}, 0};
  int depth_ = 0;
};

}  // namespace

ExprPtr parse_expression(std::string_view text,
                         const FailureClassRegistry& registry,
                         const ExprSource& source) {
  return Parser(text, registry, source).parse();
}

Deviation parse_deviation(std::string_view text,
                          const FailureClassRegistry& registry,
                          const ExprSource& source) {
  return Parser(text, registry, source).parse_single_deviation();
}

}  // namespace ftsynth
