#include "openpsa/xml_reader.h"

#include <cctype>
#include <cstdlib>

#include "core/error.h"

namespace ftsynth::openpsa {
namespace {

// Documents nested past this many open elements are rejected rather than
// parsed: the cursor-based parser below is iterative, but downstream
// consumers walk the DOM recursively, so depth must stay bounded.
constexpr int kMaxDepth = 512;

/// Cursor over the document text tracking a 1-based line/column.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return eof() ? '\0' : text_[pos_]; }
  char peek_at(std::size_t ahead) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char advance() noexcept {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool consume(std::string_view expected) noexcept {
    if (text_.substr(pos_, expected.size()) != expected) return false;
    for (std::size_t i = 0; i < expected.size(); ++i) advance();
    return true;
  }

  void skip_whitespace() noexcept {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }

  SourceLocation location() const noexcept { return {line_, column_}; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML: " + message, line_, column_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

std::string parse_name(Cursor& cursor) {
  if (!is_name_start(cursor.peek())) cursor.fail("expected a name");
  std::string name;
  while (is_name_char(cursor.peek())) name.push_back(cursor.advance());
  return name;
}

/// Decodes one entity reference positioned on '&'. Only the five XML
/// built-ins and numeric character references are recognised; the MEF
/// defines no others and silent pass-through would corrupt round trips.
void append_entity(Cursor& cursor, std::string& out) {
  SourceLocation start = cursor.location();
  cursor.advance();  // '&'
  std::string entity;
  while (!cursor.eof() && cursor.peek() != ';' && entity.size() <= 8) {
    entity.push_back(cursor.advance());
  }
  if (cursor.peek() != ';') {
    throw ParseError("XML: unterminated entity reference", start.line,
                     start.column);
  }
  cursor.advance();  // ';'
  if (entity == "amp") {
    out.push_back('&');
  } else if (entity == "lt") {
    out.push_back('<');
  } else if (entity == "gt") {
    out.push_back('>');
  } else if (entity == "quot") {
    out.push_back('"');
  } else if (entity == "apos") {
    out.push_back('\'');
  } else if (entity.size() > 1 && entity[0] == '#') {
    const bool hex = entity[1] == 'x' || entity[1] == 'X';
    char* end = nullptr;
    const char* digits = entity.c_str() + (hex ? 2 : 1);
    long code = std::strtol(digits, &end, hex ? 16 : 10);
    if (end == digits || *end != '\0' || code <= 0 || code > 0x10FFFF) {
      throw ParseError("XML: bad character reference '&" + entity + ";'",
                       start.line, start.column);
    }
    // UTF-8 encode the code point.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  } else {
    throw ParseError("XML: unknown entity '&" + entity + ";'", start.line,
                     start.column);
  }
}

std::string parse_attribute_value(Cursor& cursor) {
  char quote = cursor.peek();
  if (quote != '"' && quote != '\'') {
    cursor.fail("expected a quoted attribute value");
  }
  cursor.advance();
  std::string value;
  while (!cursor.eof() && cursor.peek() != quote) {
    if (cursor.peek() == '<') cursor.fail("'<' in attribute value");
    if (cursor.peek() == '&') {
      append_entity(cursor, value);
    } else {
      value.push_back(cursor.advance());
    }
  }
  if (cursor.eof()) cursor.fail("unterminated attribute value");
  cursor.advance();  // closing quote
  return value;
}

/// Skips "<!--...-->", "<?...?>" and "<!DOCTYPE ...>" (with possible
/// internal-subset brackets). Positioned on '<'; returns true when one of
/// these was consumed.
bool skip_misc(Cursor& cursor) {
  if (cursor.peek() != '<') return false;
  if (cursor.peek_at(1) == '!' && cursor.peek_at(2) == '-' &&
      cursor.peek_at(3) == '-') {
    SourceLocation start = cursor.location();
    cursor.consume("<!--");
    while (!cursor.consume("-->")) {
      if (cursor.eof()) {
        throw ParseError("XML: unterminated comment", start.line,
                         start.column);
      }
      cursor.advance();
    }
    return true;
  }
  if (cursor.peek_at(1) == '?') {
    SourceLocation start = cursor.location();
    cursor.consume("<?");
    while (!cursor.consume("?>")) {
      if (cursor.eof()) {
        throw ParseError("XML: unterminated processing instruction",
                         start.line, start.column);
      }
      cursor.advance();
    }
    return true;
  }
  if (cursor.peek_at(1) == '!') {  // DOCTYPE: skip, never fetch or expand
    SourceLocation start = cursor.location();
    cursor.consume("<!");
    int brackets = 0;
    while (!cursor.eof()) {
      char c = cursor.advance();
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
      if (c == '>' && brackets <= 0) return true;
    }
    throw ParseError("XML: unterminated '<!' declaration", start.line,
                     start.column);
  }
  return false;
}

}  // namespace

std::string_view XmlElement::attribute(std::string_view key) const noexcept {
  for (const auto& [name_, value] : attributes) {
    if (name_ == key) return value;
  }
  return {};
}

bool XmlElement::has_attribute(std::string_view key) const noexcept {
  for (const auto& [name_, value] : attributes) {
    if (name_ == key) return true;
  }
  return false;
}

const XmlElement* XmlElement::child(std::string_view child_name) const noexcept {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::unique_ptr<XmlElement> parse_xml(std::string_view text) {
  Cursor cursor(text);
  std::unique_ptr<XmlElement> root;
  // Explicit element stack: the parser itself never recurses, so input
  // depth cannot overflow the call stack (it is capped for consumers).
  std::vector<XmlElement*> open;

  while (true) {
    if (open.empty()) cursor.skip_whitespace();
    if (cursor.eof()) break;

    if (cursor.peek() != '<') {
      // Character data. Outside the root only whitespace is legal.
      if (open.empty()) cursor.fail("text outside the root element");
      std::string& out = open.back()->text;
      while (!cursor.eof() && cursor.peek() != '<') {
        if (cursor.peek() == '&') {
          append_entity(cursor, out);
        } else {
          out.push_back(cursor.advance());
        }
      }
      continue;
    }

    if (skip_misc(cursor)) continue;

    if (cursor.peek_at(1) == '/') {  // closing tag
      SourceLocation start = cursor.location();
      cursor.consume("</");
      std::string name = parse_name(cursor);
      cursor.skip_whitespace();
      if (cursor.peek() != '>') cursor.fail("expected '>' in closing tag");
      cursor.advance();
      if (open.empty()) {
        throw ParseError("XML: closing tag </" + name + "> with no open tag",
                         start.line, start.column);
      }
      if (open.back()->name != name) {
        throw ParseError("XML: closing tag </" + name + "> does not match <" +
                             open.back()->name + ">",
                         start.line, start.column);
      }
      open.pop_back();
      if (open.empty()) break;  // root closed: only misc may follow
      continue;
    }

    // Opening tag.
    SourceLocation start = cursor.location();
    cursor.advance();  // '<'
    auto element = std::make_unique<XmlElement>();
    element->name = parse_name(cursor);
    element->location = start;
    for (;;) {
      cursor.skip_whitespace();
      if (cursor.eof()) {
        throw ParseError("XML: unterminated tag <" + element->name + ">",
                         start.line, start.column);
      }
      if (cursor.peek() == '>' || cursor.peek() == '/') break;
      std::string key = parse_name(cursor);
      cursor.skip_whitespace();
      if (cursor.peek() != '=') cursor.fail("expected '=' after attribute");
      cursor.advance();
      cursor.skip_whitespace();
      std::string value = parse_attribute_value(cursor);
      for (const auto& [existing, unused] : element->attributes) {
        if (existing == key) {
          cursor.fail("duplicate attribute '" + key + "'");
        }
      }
      element->attributes.emplace_back(std::move(key), std::move(value));
    }
    const bool self_closing = cursor.peek() == '/';
    if (self_closing) {
      cursor.advance();
      if (cursor.peek() != '>') cursor.fail("expected '>' after '/'");
    }
    cursor.advance();  // '>'

    XmlElement* raw = element.get();
    if (open.empty()) {
      if (root) {
        throw ParseError("XML: more than one root element", start.line,
                         start.column);
      }
      root = std::move(element);
    } else {
      open.back()->children.push_back(std::move(element));
    }
    if (!self_closing) {
      if (static_cast<int>(open.size()) >= kMaxDepth) {
        throw ParseError("XML: elements nested deeper than " +
                             std::to_string(kMaxDepth),
                         start.line, start.column);
      }
      open.push_back(raw);
    } else if (open.empty()) {
      break;  // self-closing root
    }
  }

  if (!open.empty()) {
    SourceLocation at = open.back()->location;
    throw ParseError("XML: unclosed element <" + open.back()->name + ">",
                     at.line, at.column);
  }
  if (!root) throw ParseError("XML: no root element", 1, 1);

  // Only comments/PIs/whitespace may trail the root.
  cursor.skip_whitespace();
  while (!cursor.eof()) {
    if (!skip_misc(cursor)) cursor.fail("content after the root element");
    cursor.skip_whitespace();
  }
  return root;
}

}  // namespace ftsynth::openpsa
