// Open-PSA Model Exchange Format importer.
//
// Reads the MEF subset documented in docs/FORMATS.md section 6:
// `define-fault-tree` / `define-gate` with and, or, not, xor, nand, nor
// and atleast (vote) connectives, `define-basic-event` probabilities
// (constant <float> or <exponential> rate), `define-house-event`
// constants, and `define-event-tree` accident sequences. Every importable
// top event -- each fault tree's root gate(s) and each event-tree
// sequence -- becomes one SELF-CONTAINED FaultTree: shared definitions
// are rebuilt per top into that top's arena (the cone cache recognises
// the shared cones by structural hash, so cross-top sharing still pays).
//
// Connectives beyond AND/OR/NOT/PAND have no GateKind, so they are
// desugared at import: nand -> NOT AND, nor -> NOT OR, xor folded
// pairwise into OR(AND(a, NOT b), AND(NOT a, b)), atleast(k of n) into
// the O(n*k) shared take/skip expansion. House events fold into the
// formulas as constants (a MEF house event carries an explicit boolean).
// The engines normalise trees internally, so NOT over composite gates is
// fine.
//
// Error discipline (mirrors mdl/parser.h): XML well-formedness violations
// always throw ParseError. Semantic problems -- undefined references,
// probabilities outside [0,1], cyclic gate definitions, unsupported
// constructs -- throw from the sink-less overloads, but with a
// DiagnosticSink they are reported and recovered from (undeveloped
// placeholder leaves, clamped probabilities), so one pass surfaces every
// problem and still yields the healthy parts.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/diagnostics.h"
#include "fta/fault_tree.h"

namespace ftsynth::openpsa {

/// One importable top event of a MEF document.
struct MefTop {
  enum class Kind {
    kFaultTree,  ///< a root gate of a define-fault-tree
    kSequence,   ///< one define-event-tree accident sequence
  };
  Kind kind = Kind::kFaultTree;
  /// "fault-tree" (single root), "fault-tree.gate" (several roots) or
  /// "event-tree/sequence".
  std::string name;
  FaultTree tree;

  MefTop(Kind k, std::string n, FaultTree t)
      : kind(k), name(std::move(n)), tree(std::move(t)) {}
};

/// A parsed MEF document: its name and its top events, fault-tree roots
/// first (definition order), then event-tree sequences (walk order).
struct MefModel {
  std::string name;
  std::vector<MefTop> tops;

  /// Counters for `info` output.
  std::size_t fault_tree_count = 0;
  std::size_t event_tree_count = 0;
  std::size_t gate_count = 0;
  std::size_t basic_event_count = 0;
  std::size_t house_event_count = 0;
  std::size_t sequence_count = 0;
};

/// Parses MEF XML text. Throws ParseError on malformed XML and Error on
/// the first semantic problem.
MefModel read_openpsa(std::string_view text);

/// Error-recovering parse: malformed XML still throws ParseError (there
/// is no meaningful partial DOM), but semantic problems are reported to
/// `sink` and repaired -- undefined references become `und:` undeveloped
/// leaves, out-of-range probabilities are clamped, cyclic definitions are
/// cut with a diagnostic -- so the healthy tops still come back.
MefModel read_openpsa(std::string_view text, DiagnosticSink& sink);

/// File variants; throw ErrorKind::kParse when `path` is unreadable.
MefModel read_openpsa_file(const std::string& path);
MefModel read_openpsa_file(const std::string& path, DiagnosticSink& sink);

/// Format sniffing for CLI/service dispatch: true when the path or the
/// leading content bytes say "XML" (extension .xml, or the first
/// non-whitespace byte is '<').
bool looks_like_openpsa(std::string_view path, std::string_view content);

}  // namespace ftsynth::openpsa
