// Dependency-free XML reader for the Open-PSA importer.
//
// The Model Exchange Format is plain XML, but pulling in a full XML
// library for the subset the MEF uses (elements, attributes, character
// data, comments) would be the only external dependency in the tree. This
// reader parses exactly that subset into an owned DOM: no namespaces, no
// external entities, no DTD expansion -- a DOCTYPE is skipped, never
// fetched, so the classic XXE/billion-laughs attacks are structurally
// impossible. Malformed input throws ParseError with a 1-based
// line/column, which the service layer already maps to exit code 2.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/diagnostics.h"

namespace ftsynth::openpsa {

/// One element of the parsed document. Children are owned; text content
/// is the concatenation of all character data directly inside the
/// element (MEF grammars never mix meaningful text with child elements).
struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;
  SourceLocation location;  ///< of the opening '<'

  /// Attribute value, or empty string_view when absent.
  std::string_view attribute(std::string_view key) const noexcept;
  bool has_attribute(std::string_view key) const noexcept;

  /// First child with the given element name, or nullptr.
  const XmlElement* child(std::string_view child_name) const noexcept;
};

/// Parses a complete XML document and returns its root element.
/// Throws ParseError (ErrorKind::kParse) on any well-formedness
/// violation: unclosed or mismatched tags, bad attribute syntax, stray
/// text outside the root, unknown entities, nesting deeper than an
/// internal cap.
std::unique_ptr<XmlElement> parse_xml(std::string_view text);

}  // namespace ftsynth::openpsa
