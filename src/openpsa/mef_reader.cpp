#include "openpsa/mef_reader.h"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/event_tree.h"
#include "core/error.h"
#include "openpsa/xml_reader.h"

namespace ftsynth::openpsa {
namespace {

// Gate-reference chains longer than this are cut with a diagnostic; the
// per-top builder recurses through named definitions.
constexpr int kMaxGateDepth = 1000;

/// A formula value during construction: either a node in the target
/// arena or a boolean constant (house events fold at import time -- the
/// FaultTree has no "false" leaf).
struct Value {
  bool is_constant = false;
  bool constant = false;
  FtNode* node = nullptr;

  static Value of(FtNode* n) { return {false, false, n}; }
  static Value of(bool c) { return {true, c, nullptr}; }
};

/// One define-basic-event, parsed once so range problems are reported at
/// the definition site, not per reference.
struct BasicDef {
  NodeKind kind = NodeKind::kBasic;  ///< kBasic/kUndeveloped/kLoop
  double fixed_probability = -1.0;
  double rate = 0.0;
  std::string label;
};

struct HouseDef {
  bool value = false;
  std::string label;
};

struct GateDef {
  const XmlElement* formula = nullptr;  ///< the one connective child
  std::string label;
  SourceLocation location;
};

double parse_float_attr(const XmlElement& element, bool& ok) {
  std::string text(element.attribute("value"));
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  ok = !text.empty() && end != nullptr && *end == '\0';
  return value;
}

std::string_view leaf_kind_attribute(const XmlElement& definition) {
  const XmlElement* attrs = definition.child("attributes");
  if (attrs == nullptr) return {};
  for (const auto& attr : attrs->children) {
    if (attr->name == "attribute" && attr->attribute("name") == "ftsynth-kind")
      return attr->attribute("value");
  }
  return {};
}

class Importer {
 public:
  explicit Importer(DiagnosticSink* sink) : sink_(sink) {}

  MefModel import(const XmlElement& root) {
    if (root.name != "opsa-mef") {
      // Not recoverable: nothing below a foreign root is meaningful.
      throw ParseError("Open-PSA: root element is <" + root.name +
                           ">, expected <opsa-mef>",
                       root.location.line, root.location.column);
    }
    model_.name = root.has_attribute("name")
                      ? std::string(root.attribute("name"))
                      : "openpsa";
    collect_definitions(root);
    build_fault_tree_tops();
    build_event_tree_tops();
    return std::move(model_);
  }

 private:
  // -- error discipline ------------------------------------------------------

  void fail(ErrorKind kind, const std::string& message, SourceLocation where) {
    if (sink_ != nullptr) {
      sink_->error(kind, "Open-PSA: " + message, where);
      return;
    }
    if (kind == ErrorKind::kParse && where.known()) {
      throw ParseError("Open-PSA: " + message, where.line, where.column);
    }
    std::string text = "Open-PSA: " + message;
    if (where.known()) text += " (line " + where.to_string() + ")";
    throw Error(kind, text);
  }

  void warn(const std::string& message, SourceLocation where) {
    if (sink_ != nullptr)
      sink_->warning(ErrorKind::kModel, "Open-PSA: " + message, where);
  }

  // -- pass 1: definition registries -----------------------------------------

  void collect_definitions(const XmlElement& root) {
    for (const auto& section : root.children) {
      if (section->name == "define-fault-tree") {
        collect_fault_tree(*section);
      } else if (section->name == "model-data") {
        for (const auto& entry : section->children) collect_event(*entry);
      } else if (section->name == "define-event-tree") {
        ++model_.event_tree_count;
        std::string name(section->attribute("name"));
        if (name.empty()) {
          fail(ErrorKind::kParse, "define-event-tree without a name",
               section->location);
          continue;
        }
        if (!event_trees_.emplace(name, section.get()).second) {
          fail(ErrorKind::kModel, "duplicate event tree '" + name + "'",
               section->location);
          continue;
        }
        event_tree_order_.push_back(name);
        for (const auto& entry : section->children) {
          if (entry->name == "define-sequence") {
            sequence_defs_[name + "\x1f" +
                           std::string(entry->attribute("name"))] = entry.get();
          } else if (entry->name == "define-branch") {
            branch_defs_[name + "\x1f" +
                         std::string(entry->attribute("name"))] = entry.get();
          }
        }
      } else if (section->name == "define-initiating-event") {
        std::string tree(section->attribute("event-tree"));
        std::string name(section->attribute("name"));
        if (!tree.empty() && !name.empty())
          initiating_events_.emplace(tree, name);
      } else if (section->name == "label" || section->name == "attributes") {
        // Document metadata; nothing to import.
      } else {
        warn("ignoring unsupported section <" + section->name + ">",
             section->location);
      }
    }
  }

  void collect_fault_tree(const XmlElement& definition) {
    ++model_.fault_tree_count;
    std::string name(definition.attribute("name"));
    if (name.empty()) {
      fail(ErrorKind::kParse, "define-fault-tree without a name",
           definition.location);
      return;
    }
    if (!fault_trees_.emplace(name, &definition).second) {
      fail(ErrorKind::kModel, "duplicate fault tree '" + name + "'",
           definition.location);
      return;
    }
    fault_tree_order_.push_back(name);
    for (const auto& entry : definition.children) collect_event(*entry);
  }

  void collect_event(const XmlElement& definition) {
    if (definition.name == "define-gate") {
      ++model_.gate_count;
      std::string name(definition.attribute("name"));
      if (name.empty()) {
        fail(ErrorKind::kParse, "define-gate without a name",
             definition.location);
        return;
      }
      GateDef def;
      def.location = definition.location;
      for (const auto& child : definition.children) {
        if (child->name == "label") {
          def.label = child->text;
        } else if (child->name == "attributes") {
          continue;
        } else if (def.formula == nullptr) {
          def.formula = child.get();
        } else {
          fail(ErrorKind::kParse,
               "gate '" + name + "' has more than one formula",
               child->location);
        }
      }
      if (def.formula == nullptr) {
        fail(ErrorKind::kParse, "gate '" + name + "' has no formula",
             definition.location);
        return;
      }
      if (!gates_.emplace(std::move(name), def).second) {
        fail(ErrorKind::kModel,
             "duplicate gate '" + std::string(definition.attribute("name")) +
                 "'",
             definition.location);
      }
    } else if (definition.name == "define-basic-event") {
      ++model_.basic_event_count;
      std::string name(definition.attribute("name"));
      if (name.empty()) {
        fail(ErrorKind::kParse, "define-basic-event without a name",
             definition.location);
        return;
      }
      BasicDef def = parse_basic_event(name, definition);
      if (!basics_.emplace(std::move(name), def).second) {
        fail(ErrorKind::kModel,
             "duplicate basic event '" +
                 std::string(definition.attribute("name")) + "'",
             definition.location);
      }
    } else if (definition.name == "define-house-event") {
      ++model_.house_event_count;
      std::string name(definition.attribute("name"));
      if (name.empty()) {
        fail(ErrorKind::kParse, "define-house-event without a name",
             definition.location);
        return;
      }
      HouseDef def;
      if (const XmlElement* label = definition.child("label"))
        def.label = label->text;
      const XmlElement* constant = definition.child("constant");
      if (constant == nullptr) {
        // The MEF default state for a house event is false.
        def.value = false;
      } else {
        std::string_view value = constant->attribute("value");
        if (value == "true") {
          def.value = true;
        } else if (value == "false") {
          def.value = false;
        } else {
          fail(ErrorKind::kParse,
               "house event '" + name + "' has non-boolean value '" +
                   std::string(value) + "'",
               constant->location);
        }
      }
      if (!houses_.emplace(std::move(name), def).second) {
        fail(ErrorKind::kModel,
             "duplicate house event '" +
                 std::string(definition.attribute("name")) + "'",
             definition.location);
      }
    } else if (definition.name == "label" ||
               definition.name == "attributes") {
      // Container metadata.
    } else {
      warn("ignoring unsupported definition <" + definition.name + ">",
           definition.location);
    }
  }

  BasicDef parse_basic_event(const std::string& name,
                             const XmlElement& definition) {
    BasicDef def;
    std::string_view kind = leaf_kind_attribute(definition);
    if (kind == "undeveloped") def.kind = NodeKind::kUndeveloped;
    if (kind == "loop") def.kind = NodeKind::kLoop;
    if (const XmlElement* label = definition.child("label"))
      def.label = label->text;
    for (const auto& child : definition.children) {
      if (child->name == "float") {
        bool ok = false;
        double value = parse_float_attr(*child, ok);
        if (!ok) {
          fail(ErrorKind::kParse,
               "basic event '" + name + "' has a malformed <float>",
               child->location);
          continue;
        }
        if (value < 0.0 || value > 1.0) {
          fail(ErrorKind::kModel,
               "basic event '" + name + "' probability " +
                   std::to_string(value) + " outside [0, 1]; clamping",
               child->location);
          value = value < 0.0 ? 0.0 : 1.0;
        }
        def.fixed_probability = value;
      } else if (child->name == "exponential") {
        const XmlElement* lambda = child->child("float");
        bool ok = false;
        double rate = lambda != nullptr ? parse_float_attr(*lambda, ok) : 0.0;
        if (!ok) {
          fail(ErrorKind::kParse,
               "basic event '" + name + "' has a malformed <exponential>",
               child->location);
          continue;
        }
        if (rate < 0.0) {
          fail(ErrorKind::kModel,
               "basic event '" + name + "' has negative rate; clamping to 0",
               child->location);
          rate = 0.0;
        }
        def.rate = rate;
      } else if (child->name == "label" || child->name == "attributes") {
        continue;
      } else {
        warn("ignoring unsupported expression <" + child->name +
                 "> on basic event '" + name + "'",
             child->location);
      }
    }
    return def;
  }

  // -- per-top formula construction ------------------------------------------

  /// Builds formulas for one self-contained top. Named gates are memoised
  /// (per-arena DAG sharing); cycles are detected on the in-progress set.
  struct TreeBuilder {
    Importer& importer;
    FaultTree& tree;
    std::unordered_map<std::string, Value> gate_memo;
    std::unordered_set<std::string> in_progress;
    int depth = 0;

    Value make_not(Value operand) {
      if (operand.is_constant) return Value::of(!operand.constant);
      return Value::of(
          tree.add_gate(GateKind::kNot, "", {operand.node}));
    }

    Value make_and(const std::vector<Value>& operands) {
      std::vector<FtNode*> nodes;
      for (const Value& operand : operands) {
        if (operand.is_constant) {
          if (!operand.constant) return Value::of(false);
          continue;  // true: AND identity
        }
        nodes.push_back(operand.node);
      }
      if (nodes.empty()) return Value::of(true);
      if (nodes.size() == 1) return Value::of(nodes.front());
      return Value::of(tree.add_gate(GateKind::kAnd, "", std::move(nodes)));
    }

    Value make_or(const std::vector<Value>& operands) {
      std::vector<FtNode*> nodes;
      for (const Value& operand : operands) {
        if (operand.is_constant) {
          if (operand.constant) return Value::of(true);
          continue;  // false: OR identity
        }
        nodes.push_back(operand.node);
      }
      if (nodes.empty()) return Value::of(false);
      if (nodes.size() == 1) return Value::of(nodes.front());
      return Value::of(tree.add_gate(GateKind::kOr, "", std::move(nodes)));
    }

    Value make_xor(Value a, Value b) {
      return make_or({make_and({a, make_not(b)}), make_and({make_not(a), b})});
    }

    /// atleast k of `operands`: the shared take/skip expansion. f(i, k) =
    /// "at least k of operands[i..]" = OR(AND(op[i], f(i+1, k-1)),
    /// f(i+1, k)), memoised so the expansion is an O(n*k) DAG, not an
    /// exponential tree.
    Value make_atleast(std::vector<Value> operands, long k) {
      std::vector<Value> nodes;
      for (const Value& operand : operands) {
        if (operand.is_constant) {
          if (operand.constant) --k;  // an always-true vote input
          continue;
        }
        nodes.push_back(operand);
      }
      const long n = static_cast<long>(nodes.size());
      if (k <= 0) return Value::of(true);
      if (k > n) return Value::of(false);
      if (k == n) return make_and(nodes);
      if (k == 1) return make_or(nodes);
      std::unordered_map<long, Value> memo;
      const std::function<Value(long, long)> at_least = [&](long i,
                                                            long need) {
        if (need <= 0) return Value::of(true);
        if (need > n - i) return Value::of(false);
        const long key = i * (n + 1) + need;
        if (auto it = memo.find(key); it != memo.end()) return it->second;
        Value take = make_and({nodes[static_cast<std::size_t>(i)],
                               at_least(i + 1, need - 1)});
        Value skip = at_least(i + 1, need);
        Value result = make_or({take, skip});
        memo.emplace(key, result);
        return result;
      };
      return at_least(0, k);
    }

    Value undeveloped(const std::string& reference) {
      return Value::of(tree.add_undeveloped(
          Symbol("und:" + reference),
          "unresolved Open-PSA reference '" + reference + "'", ""));
    }

    Value basic_leaf(const std::string& name, const BasicDef& def) {
      FtNode* leaf = nullptr;
      switch (def.kind) {
        case NodeKind::kUndeveloped:
          leaf = tree.add_undeveloped(Symbol(name), def.label, "");
          break;
        case NodeKind::kLoop:
          leaf = tree.add_loop(Symbol(name), def.label, "");
          break;
        default:
          leaf = tree.add_basic(Symbol(name), def.rate, def.label, "");
          if (def.fixed_probability >= 0.0)
            leaf->set_fixed_probability(def.fixed_probability);
          break;
      }
      return Value::of(leaf);
    }

    Value build_basic(const std::string& name, SourceLocation where) {
      auto it = importer.basics_.find(name);
      if (it == importer.basics_.end()) {
        importer.warn(
            "basic event '" + name + "' has no definition; unquantified",
            where);
        return Value::of(tree.add_basic(Symbol(name), 0.0, "", ""));
      }
      return basic_leaf(name, it->second);
    }

    Value build_house(const std::string& name, SourceLocation where) {
      auto it = importer.houses_.find(name);
      if (it == importer.houses_.end()) {
        importer.fail(ErrorKind::kModel,
                      "undefined house event '" + name + "'", where);
        return undeveloped(name);
      }
      return Value::of(it->second.value);
    }

    Value build_gate(const std::string& name, SourceLocation where) {
      if (auto it = gate_memo.find(name); it != gate_memo.end())
        return it->second;
      auto def = importer.gates_.find(name);
      if (def == importer.gates_.end()) {
        importer.fail(ErrorKind::kModel, "undefined gate '" + name + "'",
                      where);
        Value value = undeveloped(name);
        gate_memo.emplace(name, value);
        return value;
      }
      if (in_progress.count(name) != 0) {
        importer.fail(ErrorKind::kModel,
                      "cyclic gate definition through '" + name + "'", where);
        return undeveloped(name);  // cut the cycle; deliberately not memoised
      }
      if (depth >= kMaxGateDepth) {
        importer.fail(ErrorKind::kModel,
                      "gate definitions nested deeper than " +
                          std::to_string(kMaxGateDepth),
                      where);
        return undeveloped(name);
      }
      in_progress.insert(name);
      ++depth;
      Value value = build_formula(*def->second.formula);
      --depth;
      in_progress.erase(name);
      if (!value.is_constant && value.node->kind() == NodeKind::kGate &&
          value.node->description().empty() && !def->second.label.empty()) {
        value.node->set_description(def->second.label);
      }
      gate_memo.emplace(name, value);
      return value;
    }

    /// Resolves an untyped <event name=.../> reference.
    Value build_event(const std::string& name, SourceLocation where) {
      if (importer.gates_.count(name) != 0) return build_gate(name, where);
      if (importer.houses_.count(name) != 0) return build_house(name, where);
      return build_basic(name, where);
    }

    std::vector<Value> build_operands(const XmlElement& connective) {
      std::vector<Value> operands;
      for (const auto& child : connective.children)
        operands.push_back(build_formula(*child));
      return operands;
    }

    Value build_formula(const XmlElement& formula) {
      const std::string& op = formula.name;
      std::string name(formula.attribute("name"));
      if (op == "gate") return build_gate(name, formula.location);
      if (op == "basic-event") return build_basic(name, formula.location);
      if (op == "house-event") return build_house(name, formula.location);
      if (op == "event") return build_event(name, formula.location);
      if (op == "bool" || op == "constant") {
        return Value::of(formula.attribute("value") == "true");
      }
      if (op == "and") return make_and(build_operands(formula));
      if (op == "or") return make_or(build_operands(formula));
      if (op == "nand") return make_not(make_and(build_operands(formula)));
      if (op == "nor") return make_not(make_or(build_operands(formula)));
      if (op == "not") {
        if (formula.children.size() != 1) {
          importer.fail(ErrorKind::kParse, "<not> takes exactly one operand",
                        formula.location);
          return undeveloped("not");
        }
        return make_not(build_formula(*formula.children.front()));
      }
      if (op == "xor") {
        std::vector<Value> operands = build_operands(formula);
        if (operands.empty()) {
          importer.fail(ErrorKind::kParse, "<xor> takes operands",
                        formula.location);
          return undeveloped("xor");
        }
        Value result = operands.front();
        for (std::size_t i = 1; i < operands.size(); ++i)
          result = make_xor(result, operands[i]);
        return result;
      }
      if (op == "atleast" || op == "vote") {
        std::string min_text(formula.attribute("min"));
        char* end = nullptr;
        long k = std::strtol(min_text.c_str(), &end, 10);
        if (min_text.empty() || *end != '\0' || k < 1) {
          importer.fail(ErrorKind::kParse,
                        "<" + op + "> needs a positive min attribute",
                        formula.location);
          return undeveloped(op);
        }
        return make_atleast(build_operands(formula), k);
      }
      importer.fail(ErrorKind::kParse,
                    "unsupported formula element <" + op + ">",
                    formula.location);
      return undeveloped(op);
    }
  };

  /// Installs a built top value on `tree`: node tops directly, constant
  /// true as a house leaf, constant false as the null top (the synthesis
  /// convention for "impossible", analysed as probability 0).
  static void install_top(FaultTree& tree, Value top) {
    if (!top.is_constant) {
      tree.set_top(top.node);
    } else if (top.constant) {
      tree.set_top(tree.add_house(Symbol("true"), "constant true"));
    }
  }

  // -- pass 2: fault-tree tops -----------------------------------------------

  void build_fault_tree_tops() {
    // A fault tree's tops are its unreferenced gates: referenced-ness is
    // computed over every gate formula in the document (a gate used by
    // another fault tree is not a root), but NOT over event-tree
    // collect-formulas -- a system fault tree referenced only from an
    // event tree still deserves its own standalone analysis.
    std::unordered_set<std::string> referenced;
    for (const auto& [name, def] : gates_) collect_gate_refs(*def.formula,
                                                             referenced);
    for (const std::string& ft_name : fault_tree_order_) {
      const XmlElement& definition = *fault_trees_.at(ft_name);
      std::vector<std::string> roots;
      std::size_t gates_defined = 0;
      for (const auto& entry : definition.children) {
        if (entry->name != "define-gate") continue;
        std::string gate_name(entry->attribute("name"));
        if (gate_name.empty() || gates_.count(gate_name) == 0) continue;
        ++gates_defined;
        if (referenced.count(gate_name) == 0) roots.push_back(gate_name);
      }
      if (roots.empty()) {
        if (gates_defined != 0) {
          fail(ErrorKind::kModel,
               "fault tree '" + ft_name +
                   "' has no root gate (every gate is referenced)",
               definition.location);
        } else {
          warn("fault tree '" + ft_name + "' defines no gates",
               definition.location);
        }
        continue;
      }
      for (const std::string& root : roots) {
        std::string top_name =
            roots.size() == 1 ? ft_name : ft_name + "." + root;
        FaultTree tree(top_name);
        TreeBuilder builder{*this, tree, {}, {}, 0};
        Value top = builder.build_gate(root, definition.location);
        install_top(tree, top);
        const GateDef& root_def = gates_.at(root);
        tree.set_top_description(
            !root_def.label.empty()
                ? root_def.label
                : "top gate '" + root + "' of fault tree '" + ft_name + "'");
        model_.tops.emplace_back(MefTop::Kind::kFaultTree,
                                 std::move(top_name), std::move(tree));
      }
    }
  }

  static void collect_gate_refs(const XmlElement& formula,
                                std::unordered_set<std::string>& out) {
    if (formula.name == "gate" || formula.name == "event")
      out.insert(std::string(formula.attribute("name")));
    for (const auto& child : formula.children) collect_gate_refs(*child, out);
  }

  // -- pass 3: event-tree sequence tops --------------------------------------

  void build_event_tree_tops() {
    for (const std::string& et_name : event_tree_order_) {
      const XmlElement& definition = *event_trees_.at(et_name);
      const XmlElement* initial = definition.child("initial-state");
      if (initial == nullptr) {
        warn("event tree '" + et_name + "' has no initial-state",
             definition.location);
        continue;
      }
      // Walk the fork structure: every root-to-sequence path yields the
      // list of collect-formula elements seen along it.
      std::vector<std::string> sequence_order;
      std::unordered_map<std::string,
                         std::vector<std::vector<const XmlElement*>>>
          paths_of;
      std::vector<const XmlElement*> collected;
      walk_instructions(et_name, *initial, collected, sequence_order,
                        paths_of, 0);

      std::string initiating;
      if (auto it = initiating_events_.find(et_name);
          it != initiating_events_.end())
        initiating = it->second;

      for (const std::string& seq_name : sequence_order) {
        ++model_.sequence_count;
        std::string top_name = et_name + "/" + seq_name;
        FaultTree tree(top_name);
        TreeBuilder builder{*this, tree, {}, {}, 0};
        // The initiating event joins every path when it is itself a
        // modelled event (gate or basic event); otherwise it only names
        // the scenario.
        Value init = Value::of(true);
        if (!initiating.empty() &&
            (gates_.count(initiating) != 0 || basics_.count(initiating) != 0))
          init = builder.build_event(initiating, definition.location);

        // Constant-fold each path: false drops the path, all-true makes
        // the path (and so the sequence) certain. The surviving pure-node
        // paths collect into the OR-of-ANDs sequence gate.
        bool certain = false;
        std::vector<std::vector<FtNode*>> node_paths;
        for (const std::vector<const XmlElement*>& path :
             paths_of.at(seq_name)) {
          bool impossible = false;
          std::vector<FtNode*> nodes;
          if (!init.is_constant) nodes.push_back(init.node);
          for (const XmlElement* formula : path) {
            Value value = builder.build_formula(*formula);
            if (value.is_constant) {
              if (!value.constant) impossible = true;
            } else {
              nodes.push_back(value.node);
            }
            if (impossible) break;
          }
          if (impossible) continue;
          if (nodes.empty()) {
            certain = true;
            break;
          }
          node_paths.push_back(std::move(nodes));
        }
        if (certain) {
          install_top(tree, Value::of(true));
        } else {
          tree.set_top(collect_sequence_gate(tree, node_paths));
        }
        std::string description =
            "sequence '" + seq_name + "' of event tree '" + et_name + "'";
        if (!initiating.empty())
          description += " (initiating event '" + initiating + "')";
        tree.set_top_description(std::move(description));
        model_.tops.emplace_back(MefTop::Kind::kSequence, std::move(top_name),
                                 std::move(tree));
      }
    }
  }

  /// Walks one instruction list (initial-state, path, branch or sequence
  /// body): collect-formula accumulates, fork branches, sequence/branch
  /// elements terminate or continue the path.
  void walk_instructions(
      const std::string& et_name, const XmlElement& container,
      std::vector<const XmlElement*> collected,
      std::vector<std::string>& sequence_order,
      std::unordered_map<std::string,
                         std::vector<std::vector<const XmlElement*>>>&
          paths_of,
      int depth) {
    if (depth > kMaxGateDepth) {
      fail(ErrorKind::kModel,
           "event tree '" + et_name + "' branches nested too deeply",
           container.location);
      return;
    }
    for (const auto& child : container.children) {
      if (child->name == "collect-formula") {
        if (child->children.size() == 1) {
          collected.push_back(child->children.front().get());
        } else {
          fail(ErrorKind::kParse,
               "collect-formula takes exactly one formula", child->location);
        }
      } else if (child->name == "fork") {
        for (const auto& path : child->children) {
          if (path->name != "path") continue;
          walk_instructions(et_name, *path, collected, sequence_order,
                            paths_of, depth + 1);
        }
        return;  // a fork ends this instruction list
      } else if (child->name == "sequence") {
        std::string seq_name(child->attribute("name"));
        if (seq_name.empty()) {
          fail(ErrorKind::kParse, "sequence reference without a name",
               child->location);
          return;
        }
        // define-sequence bodies append their own collect-formulas.
        if (auto it = sequence_defs_.find(et_name + "\x1f" + seq_name);
            it != sequence_defs_.end()) {
          for (const auto& instruction : it->second->children) {
            if (instruction->name == "collect-formula" &&
                instruction->children.size() == 1)
              collected.push_back(instruction->children.front().get());
          }
        }
        auto [it, inserted] = paths_of.emplace(
            seq_name, std::vector<std::vector<const XmlElement*>>{});
        if (inserted) sequence_order.push_back(seq_name);
        it->second.push_back(std::move(collected));
        return;
      } else if (child->name == "branch") {
        std::string branch_name(child->attribute("name"));
        auto it = branch_defs_.find(et_name + "\x1f" + branch_name);
        if (it == branch_defs_.end()) {
          fail(ErrorKind::kModel,
               "undefined branch '" + branch_name + "' in event tree '" +
                   et_name + "'",
               child->location);
          return;
        }
        walk_instructions(et_name, *it->second, std::move(collected),
                          sequence_order, paths_of, depth + 1);
        return;
      } else {
        warn("ignoring unsupported instruction <" + child->name +
                 "> in event tree '" + et_name + "'",
             child->location);
      }
    }
  }

  DiagnosticSink* sink_;
  MefModel model_;
  std::unordered_map<std::string, GateDef> gates_;
  std::unordered_map<std::string, BasicDef> basics_;
  std::unordered_map<std::string, HouseDef> houses_;
  std::unordered_map<std::string, const XmlElement*> fault_trees_;
  std::vector<std::string> fault_tree_order_;
  std::unordered_map<std::string, const XmlElement*> event_trees_;
  std::vector<std::string> event_tree_order_;
  std::unordered_map<std::string, const XmlElement*> sequence_defs_;
  std::unordered_map<std::string, const XmlElement*> branch_defs_;
  std::unordered_map<std::string, std::string> initiating_events_;
};

MefModel read_impl(std::string_view text, DiagnosticSink* sink) {
  std::unique_ptr<XmlElement> root = parse_xml(text);
  return Importer(sink).import(*root);
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  require(file.good(), ErrorKind::kParse, "cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

MefModel read_openpsa(std::string_view text) {
  return read_impl(text, nullptr);
}

MefModel read_openpsa(std::string_view text, DiagnosticSink& sink) {
  return read_impl(text, &sink);
}

MefModel read_openpsa_file(const std::string& path) {
  return read_openpsa(slurp(path));
}

MefModel read_openpsa_file(const std::string& path, DiagnosticSink& sink) {
  return read_openpsa(slurp(path), sink);
}

bool looks_like_openpsa(std::string_view path, std::string_view content) {
  if (path.size() >= 4) {
    std::string_view ext = path.substr(path.size() - 4);
    if (ext == ".xml" || ext == ".XML") return true;
  }
  for (char c : content) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    return c == '<';
  }
  return false;
}

}  // namespace ftsynth::openpsa
