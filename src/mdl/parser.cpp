#include "mdl/parser.h"

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "core/diagnostics.h"
#include "core/error.h"
#include "core/strings.h"
#include "mdl/lexer.h"
#include "model/builder.h"
#include "model/validate.h"

namespace ftsynth {

namespace {

using mdl::Token;
using mdl::TokenKind;

/// Nesting ceiling for the recursive-descent DOM parser (and hence for the
/// interpreter, whose recursion mirrors the DOM). Real models nest a few
/// dozen levels; an adversarial 100k-level `Block {` chain must become a
/// diagnostic, not a stack overflow.
constexpr int kMaxNesting = 256;

// -- DOM -----------------------------------------------------------------------

/// A parsed section: attributes (Key value) and nested sections.
struct Section {
  std::string name;
  int line = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<Section> children;

  const std::string* find(std::string_view key) const {
    for (const auto& [k, v] : attrs) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::string get(std::string_view key) const {
    const std::string* value = find(key);
    if (value == nullptr) {
      throw ParseError("section '" + name + "' is missing required attribute '" +
                           std::string(key) + "'",
                       line, 1);
    }
    return *value;
  }

  std::string get_or(std::string_view key, std::string fallback) const {
    const std::string* value = find(key);
    return value != nullptr ? *value : std::move(fallback);
  }

  double get_number(std::string_view key, double fallback) const {
    const std::string* value = find(key);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    double parsed = std::strtod(value->c_str(), &end);
    if (end == nullptr || *end != '\0') {
      throw ParseError("attribute '" + std::string(key) + "' of section '" +
                           name + "' is not a number: '" + *value + "'",
                       line, 1);
    }
    return parsed;
  }

  int get_int(std::string_view key, int fallback) const {
    return static_cast<int>(get_number(key, fallback));
  }
};

/// Builds the section DOM from the token stream.
///
/// With a DiagnosticSink the parser runs in panic-mode recovery: an
/// unexpected token is reported once, then the parser synchronises -- it
/// skips ahead to the next '}' (ending the current section) or the next
/// identifier that can start an attribute or section -- and resumes. One
/// run therefore reports many independent errors. Without a sink the first
/// error throws ParseError (the historical fail-fast contract).
class DomParser {
 public:
  DomParser(std::vector<Token> tokens, DiagnosticSink* sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  /// Parses the single top-level section. In recovery mode returns
  /// std::nullopt when not even a section header could be found.
  std::optional<Section> parse_root() {
    if (current().kind != TokenKind::kIdent) {
      fail("expected section name, got " + describe(current()),
           current().line, current().column);
      return std::nullopt;  // recovery: nothing to build on
    }
    Section root = parse_section(1);
    if (current().kind != TokenKind::kEnd) {
      fail("expected end of file, got " + describe(current()),
           current().line, current().column);
      // Recovery: ignore trailing garbage.
    }
    return root;
  }

 private:
  static std::string describe(const Token& token) {
    return token.kind == TokenKind::kEnd ? "end of file"
                                         : "'" + token.text + "'";
  }

  const Token& current() const { return tokens_[pos_]; }
  const Token& lookahead() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : tokens_.size() - 1];
  }
  void advance() {
    if (current().kind != TokenKind::kEnd) ++pos_;
  }

  /// Reports one parse error; throws in fail-fast mode, records and
  /// returns in recovery mode (the caller then synchronises).
  void fail(const std::string& message, int line, int column) {
    if (sink_ == nullptr) throw ParseError(message, line, column);
    if (!sink_->saturated()) {
      sink_->error(ErrorKind::kParse, message, {line, column});
    }
  }

  /// Panic-mode synchronisation: skips at least one token, then stops at a
  /// '}' (section end, left for the caller), an identifier (a plausible
  /// attribute/section start) or the end of input.
  void synchronize() {
    advance();
    while (current().kind != TokenKind::kEnd &&
           current().kind != TokenKind::kRBrace &&
           current().kind != TokenKind::kIdent) {
      advance();
    }
  }

  /// Skips a balanced `{ ... }` body whose '{' is the current token (used
  /// to step over over-deep nesting without recursing into it).
  void skip_balanced_body() {
    int depth = 0;
    do {
      if (current().kind == TokenKind::kLBrace) ++depth;
      if (current().kind == TokenKind::kRBrace) --depth;
      if (current().kind == TokenKind::kEnd) return;
      advance();
    } while (depth > 0);
  }

  /// Parses `IDENT { ... }`; the caller guarantees current() is the IDENT.
  Section parse_section(int depth) {
    Section section;
    section.name = current().text;
    section.line = current().line;
    advance();
    if (current().kind != TokenKind::kLBrace) {
      fail("expected '{' after section name '" + section.name + "'",
           current().line, current().column);
      synchronize();
      return section;
    }
    if (depth > kMaxNesting) {
      fail("sections nested deeper than " + std::to_string(kMaxNesting) +
               " levels (section '" + section.name + "')",
           current().line, current().column);
      skip_balanced_body();
      return section;
    }
    advance();  // '{'
    while (true) {
      switch (current().kind) {
        case TokenKind::kRBrace:
          advance();
          return section;
        case TokenKind::kEnd:
          fail("missing '}' for section '" + section.name +
                   "' opened at line " + std::to_string(section.line),
               current().line, current().column);
          return section;
        case TokenKind::kIdent: {
          if (lookahead().kind == TokenKind::kLBrace) {
            section.children.push_back(parse_section(depth + 1));
            continue;
          }
          std::string key = current().text;
          advance();
          switch (current().kind) {
            case TokenKind::kString:
            case TokenKind::kNumber:
            case TokenKind::kIdent:
              section.attrs.emplace_back(std::move(key), current().text);
              advance();
              break;
            default:
              fail("expected a value after attribute '" + key + "'",
                   current().line, current().column);
              // The offending token is often the section's own '}' or the
              // next attribute name: leave those to the section loop and
              // skip only genuine junk, so one missing value does not
              // derail the nesting of everything after it.
              if (current().kind != TokenKind::kRBrace &&
                  current().kind != TokenKind::kIdent &&
                  current().kind != TokenKind::kEnd) {
                synchronize();
              }
              break;
          }
          continue;
        }
        default:
          fail("expected attribute or section name, got " +
                   describe(current()),
               current().line, current().column);
          synchronize();
          continue;
      }
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticSink* sink_;
};

// -- Interpretation --------------------------------------------------------------

FlowKind parse_flow(const std::string& text, int line) {
  if (iequals(text, "data")) return FlowKind::kData;
  if (iequals(text, "material")) return FlowKind::kMaterial;
  if (iequals(text, "energy")) return FlowKind::kEnergy;
  throw ParseError("unknown flow kind '" + text + "'", line, 1);
}

FailureCategory parse_category(const std::string& text, int line) {
  if (iequals(text, "provision")) return FailureCategory::kProvision;
  if (iequals(text, "timing")) return FailureCategory::kTiming;
  if (iequals(text, "value")) return FailureCategory::kValue;
  throw ParseError("unknown failure category '" + text + "'", line, 1);
}

std::optional<BlockKind> parse_block_kind(const std::string& text) {
  for (BlockKind kind :
       {BlockKind::kBasic, BlockKind::kSubsystem, BlockKind::kInport,
        BlockKind::kOutport, BlockKind::kMux, BlockKind::kDemux,
        BlockKind::kDataStoreWrite, BlockKind::kDataStoreRead,
        BlockKind::kGround}) {
    if (iequals(text, to_string(kind))) return kind;
  }
  return std::nullopt;
}

class Interpreter {
 public:
  /// `sink == nullptr`: fail-fast (the first interpretation error throws).
  /// With a sink, malformed entities -- a block with an unknown type, an
  /// annotation whose cause does not parse, a dangling line -- are reported
  /// and skipped, and interpretation continues with the rest of the model.
  Interpreter(const Section& root, DiagnosticSink* sink)
      : root_(root), builder_(initial_name(root, sink)), sink_(sink) {}

  Model run(bool validated) {
    if (root_.name != "Model") {
      recoverable_error("top-level section must be 'Model', got '" +
                            root_.name + "'",
                        root_.line);
    }
    if (root_.find("Name") == nullptr) {
      recoverable_error("Model section is missing required attribute 'Name'",
                        root_.line);
    }
    for (const Section& child : root_.children) {
      if (child.name == "FailureClass") {
        guard(child, [&] {
          builder_.registry().add(
              child.get("Name"),
              parse_category(child.get("Category"), child.line));
        });
      }
    }
    const Section* system = find_child(root_, "System");
    if (system == nullptr) {
      recoverable_error("Model section needs a System section", root_.line);
      return builder_.take_unchecked();
    }
    interpret_system(*system, builder_.root());
    return validated ? builder_.take() : builder_.take_unchecked();
  }

 private:
  /// The Model constructor rejects non-identifier names, which would abort
  /// recovery before it starts; substitute a placeholder (the missing /
  /// broken attribute is diagnosed separately) so interpretation proceeds.
  static std::string initial_name(const Section& root, DiagnosticSink* sink) {
    const std::string* name = root.find("Name");
    std::string value = name != nullptr ? *name : std::string("(unnamed)");
    if (sink != nullptr && !is_identifier(value)) {
      if (name != nullptr) {
        sink->error(ErrorKind::kModel,
                    "model name must be an identifier: '" + value + "'",
                    {root.line, 1});
      }
      value = "unnamed";
    }
    return value;
  }

  /// Reports a problem that recovery can survive: throws without a sink,
  /// records and returns with one.
  void recoverable_error(const std::string& message, int line) {
    if (sink_ == nullptr) throw ParseError(message, line, 1);
    sink_->error(ErrorKind::kParse, message, {line, 1});
  }

  /// Runs `body`; in recovery mode an Error is reported against `section`
  /// (and the entity skipped) instead of propagating. Returns false when
  /// the body failed.
  template <typename Body>
  bool guard(const Section& section, Body body,
             const std::string& block_path = {}) {
    if (sink_ == nullptr) {
      body();
      return true;
    }
    try {
      body();
      return true;
    } catch (const Error& error) {
      SourceLocation location{section.line, 1};
      if (const auto* parse = dynamic_cast<const ParseError*>(&error);
          parse != nullptr && parse->line() > 0) {
        location = {parse->line(), parse->column()};
      }
      sink_->report({Severity::kError, error.kind(), location, block_path,
                     error.what()});
      return false;
    }
  }

  static const Section* find_child(const Section& section,
                                   std::string_view name) {
    for (const Section& child : section.children) {
      if (child.name == name) return &child;
    }
    return nullptr;
  }

  void interpret_system(const Section& system, Block& parent) {
    for (const Section& child : system.children) {
      if (child.name == "Block") {
        guard(child, [&] { interpret_block(child, parent); }, parent.path());
      }
    }
    // Lines second: every endpoint now exists.
    for (const Section& child : system.children) {
      if (child.name == "Line") {
        guard(
            child,
            [&] {
              builder_.connect(parent, child.get("Src"), child.get("Dst"));
            },
            parent.path());
      }
    }
  }

  void interpret_block(const Section& section, Block& parent) {
    const std::string type_text = section.get("BlockType");
    std::optional<BlockKind> kind = parse_block_kind(type_text);
    if (!kind) {
      throw ParseError("unknown BlockType '" + type_text + "'", section.line,
                       1);
    }
    const std::string name = section.get("Name");
    Block* block = nullptr;
    switch (*kind) {
      case BlockKind::kBasic:
        block = &builder_.basic(parent, name);
        add_ports(section, *block);
        break;
      case BlockKind::kSubsystem: {
        block = &builder_.subsystem(parent, name);
        if (const Section* inner = find_child(section, "System"))
          interpret_system(*inner, *block);
        break;
      }
      case BlockKind::kInport:
        block = &builder_.inport(
            parent, name,
            parse_flow(section.get_or("Flow", "data"), section.line),
            section.get_int("Width", 1));
        break;
      case BlockKind::kOutport:
        block = &builder_.outport(
            parent, name,
            parse_flow(section.get_or("Flow", "data"), section.line),
            section.get_int("Width", 1));
        break;
      case BlockKind::kMux: {
        block = &parent.add_child(Symbol(name), BlockKind::kMux);
        add_ports(section, *block);
        break;
      }
      case BlockKind::kDemux: {
        block = &parent.add_child(Symbol(name), BlockKind::kDemux);
        add_ports(section, *block);
        break;
      }
      case BlockKind::kDataStoreWrite:
        block = &builder_.store_write(parent, name, section.get("Store"));
        break;
      case BlockKind::kDataStoreRead:
        block = &builder_.store_read(parent, name, section.get("Store"));
        break;
      case BlockKind::kGround:
        block = &builder_.ground(parent, name);
        break;
    }
    block->set_description(section.get_or("Description", ""));

    // Annotations last: ports (and, for subsystems, boundary proxies)
    // exist by now. Each row recovers independently: one malformed cause
    // expression costs that row (synthesis then derives an undeveloped
    // event for the unexplained deviation), not the block or the model.
    for (const Section& child : section.children) {
      if (child.name == "Malfunction") {
        guard(
            child,
            [&] {
              builder_.malfunction(*block, child.get("Name"),
                                   child.get_number("Rate", 0.0),
                                   child.get_or("Description", ""));
            },
            block->path());
      }
    }
    for (const Section& child : section.children) {
      if (child.name == "FailureRow") {
        guard(
            child,
            [&] {
              builder_.annotate(*block, child.get("Output"),
                                child.get("Cause"),
                                child.get_or("Description", ""),
                                child.get_number("Condition", 1.0),
                                child.line);
            },
            block->path());
      }
    }
  }

  void add_ports(const Section& section, Block& block) {
    for (const Section& child : section.children) {
      if (child.name != "Port" && child.name != "Trigger") continue;
      guard(
          child,
          [&] {
            const bool is_trigger =
                child.name == "Trigger" ||
                iequals(child.get_or("Trigger", "off"), "on");
            const std::string direction_text =
                child.get_or("Direction", is_trigger ? "input" : "");
            PortDirection direction;
            if (iequals(direction_text, "input")) {
              direction = PortDirection::kInput;
            } else if (iequals(direction_text, "output")) {
              direction = PortDirection::kOutput;
            } else {
              throw ParseError("Port section needs Direction \"input\" or "
                               "\"output\"",
                               child.line, 1);
            }
            block.add_port(Symbol(child.get("Name")), direction,
                           parse_flow(child.get_or("Flow", "data"),
                                      child.line),
                           child.get_int("Width", 1), is_trigger);
          },
          block.path());
    }
  }

  const Section& root_;
  ModelBuilder builder_;
  DiagnosticSink* sink_;
};

std::string read_file_or_throw(const std::string& path) {
  std::ifstream file(path);
  require(file.good(), ErrorKind::kParse,
          "cannot open model file '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

Model parse_mdl(std::string_view text, bool validated) {
  DomParser dom(mdl::tokenize(text), nullptr);
  std::optional<Section> root = dom.parse_root();
  check_internal(root.has_value(), "fail-fast DOM parse returned no root");
  return Interpreter(*root, nullptr).run(validated);
}

Model parse_mdl(std::string_view text, DiagnosticSink& sink) {
  DomParser dom(mdl::tokenize(text, sink), &sink);
  std::optional<Section> root = dom.parse_root();
  Model model = root.has_value()
                    ? Interpreter(*root, &sink).run(/*validated=*/false)
                    : ModelBuilder("(invalid)").take_unchecked();
  // Structural validation becomes diagnostics too: the partial model is
  // returned regardless, and the caller decides how much brokenness to
  // tolerate.
  for (const Issue& issue : validate(model)) {
    sink.report({issue.severity, ErrorKind::kModel, {}, issue.block_path,
                 issue.message});
  }
  return model;
}

Model parse_mdl_file(const std::string& path, bool validated) {
  return parse_mdl(read_file_or_throw(path), validated);
}

Model parse_mdl_file(const std::string& path, DiagnosticSink& sink) {
  return parse_mdl(read_file_or_throw(path), sink);
}

}  // namespace ftsynth
