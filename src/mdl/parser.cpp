#include "mdl/parser.h"

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "core/error.h"
#include "core/strings.h"
#include "mdl/lexer.h"
#include "model/builder.h"
#include "model/validate.h"

namespace ftsynth {

namespace {

using mdl::Token;
using mdl::TokenKind;

// -- DOM -----------------------------------------------------------------------

/// A parsed section: attributes (Key value) and nested sections.
struct Section {
  std::string name;
  int line = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<Section> children;

  const std::string* find(std::string_view key) const {
    for (const auto& [k, v] : attrs) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::string get(std::string_view key) const {
    const std::string* value = find(key);
    if (value == nullptr) {
      throw Error(ErrorKind::kParse,
                  "section '" + name + "' (line " + std::to_string(line) +
                      ") is missing required attribute '" + std::string(key) +
                      "'");
    }
    return *value;
  }

  std::string get_or(std::string_view key, std::string fallback) const {
    const std::string* value = find(key);
    return value != nullptr ? *value : std::move(fallback);
  }

  double get_number(std::string_view key, double fallback) const {
    const std::string* value = find(key);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    double parsed = std::strtod(value->c_str(), &end);
    if (end == nullptr || *end != '\0') {
      throw Error(ErrorKind::kParse, "attribute '" + std::string(key) +
                                         "' of section '" + name +
                                         "' is not a number: '" + *value +
                                         "'");
    }
    return parsed;
  }

  int get_int(std::string_view key, int fallback) const {
    return static_cast<int>(get_number(key, fallback));
  }
};

/// Builds the section DOM from the token stream.
class DomParser {
 public:
  explicit DomParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Section parse_root() {
    Section root = parse_section();
    expect(TokenKind::kEnd, "end of file");
    return root;
  }

 private:
  const Token& current() const { return tokens_[pos_]; }
  void advance() {
    if (current().kind != TokenKind::kEnd) ++pos_;
  }

  void expect(TokenKind kind, const std::string& what) const {
    if (current().kind != kind) {
      throw ParseError("expected " + what + ", got '" + current().text + "'",
                       current().line, current().column);
    }
  }

  Section parse_section() {
    expect(TokenKind::kIdent, "section name");
    Section section;
    section.name = current().text;
    section.line = current().line;
    advance();
    expect(TokenKind::kLBrace, "'{'");
    advance();
    while (current().kind != TokenKind::kRBrace) {
      expect(TokenKind::kIdent, "attribute or section name");
      // Lookahead decides: IDENT '{' is a nested section, otherwise an
      // attribute with a value token.
      if (tokens_[pos_ + 1].kind == TokenKind::kLBrace) {
        section.children.push_back(parse_section());
        continue;
      }
      std::string key = current().text;
      advance();
      switch (current().kind) {
        case TokenKind::kString:
        case TokenKind::kNumber:
        case TokenKind::kIdent:
          section.attrs.emplace_back(std::move(key), current().text);
          advance();
          break;
        default:
          throw ParseError("expected a value after attribute '" + key + "'",
                           current().line, current().column);
      }
    }
    advance();  // '}'
    return section;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// -- Interpretation --------------------------------------------------------------

FlowKind parse_flow(const std::string& text, int line) {
  if (iequals(text, "data")) return FlowKind::kData;
  if (iequals(text, "material")) return FlowKind::kMaterial;
  if (iequals(text, "energy")) return FlowKind::kEnergy;
  throw ParseError("unknown flow kind '" + text + "'", line, 1);
}

FailureCategory parse_category(const std::string& text, int line) {
  if (iequals(text, "provision")) return FailureCategory::kProvision;
  if (iequals(text, "timing")) return FailureCategory::kTiming;
  if (iequals(text, "value")) return FailureCategory::kValue;
  throw ParseError("unknown failure category '" + text + "'", line, 1);
}

std::optional<BlockKind> parse_block_kind(const std::string& text) {
  for (BlockKind kind :
       {BlockKind::kBasic, BlockKind::kSubsystem, BlockKind::kInport,
        BlockKind::kOutport, BlockKind::kMux, BlockKind::kDemux,
        BlockKind::kDataStoreWrite, BlockKind::kDataStoreRead,
        BlockKind::kGround}) {
    if (iequals(text, to_string(kind))) return kind;
  }
  return std::nullopt;
}

class Interpreter {
 public:
  Interpreter(const Section& root, bool validated)
      : root_(root), builder_(root.get("Name")), validated_(validated) {}

  Model run() {
    require(root_.name == "Model", ErrorKind::kParse,
            "top-level section must be 'Model', got '" + root_.name + "'");
    for (const Section& child : root_.children) {
      if (child.name == "FailureClass") {
        builder_.registry().add(
            child.get("Name"),
            parse_category(child.get("Category"), child.line));
      }
    }
    const Section* system = find_child(root_, "System");
    require(system != nullptr, ErrorKind::kParse,
            "Model section needs a System section");
    interpret_system(*system, builder_.root());
    return validated_ ? builder_.take() : builder_.take_unchecked();
  }

 private:
  static const Section* find_child(const Section& section,
                                   std::string_view name) {
    for (const Section& child : section.children) {
      if (child.name == name) return &child;
    }
    return nullptr;
  }

  void interpret_system(const Section& system, Block& parent) {
    for (const Section& child : system.children) {
      if (child.name == "Block") interpret_block(child, parent);
    }
    // Lines second: every endpoint now exists.
    for (const Section& child : system.children) {
      if (child.name == "Line")
        builder_.connect(parent, child.get("Src"), child.get("Dst"));
    }
  }

  void interpret_block(const Section& section, Block& parent) {
    const std::string type_text = section.get("BlockType");
    std::optional<BlockKind> kind = parse_block_kind(type_text);
    if (!kind) {
      throw ParseError("unknown BlockType '" + type_text + "'", section.line,
                       1);
    }
    const std::string name = section.get("Name");
    Block* block = nullptr;
    switch (*kind) {
      case BlockKind::kBasic:
        block = &builder_.basic(parent, name);
        add_ports(section, *block);
        break;
      case BlockKind::kSubsystem: {
        block = &builder_.subsystem(parent, name);
        if (const Section* inner = find_child(section, "System"))
          interpret_system(*inner, *block);
        break;
      }
      case BlockKind::kInport:
        block = &builder_.inport(
            parent, name,
            parse_flow(section.get_or("Flow", "data"), section.line),
            section.get_int("Width", 1));
        break;
      case BlockKind::kOutport:
        block = &builder_.outport(
            parent, name,
            parse_flow(section.get_or("Flow", "data"), section.line),
            section.get_int("Width", 1));
        break;
      case BlockKind::kMux: {
        block = &parent.add_child(Symbol(name), BlockKind::kMux);
        add_ports(section, *block);
        break;
      }
      case BlockKind::kDemux: {
        block = &parent.add_child(Symbol(name), BlockKind::kDemux);
        add_ports(section, *block);
        break;
      }
      case BlockKind::kDataStoreWrite:
        block = &builder_.store_write(parent, name, section.get("Store"));
        break;
      case BlockKind::kDataStoreRead:
        block = &builder_.store_read(parent, name, section.get("Store"));
        break;
      case BlockKind::kGround:
        block = &builder_.ground(parent, name);
        break;
    }
    block->set_description(section.get_or("Description", ""));

    // Annotations last: ports (and, for subsystems, boundary proxies)
    // exist by now.
    for (const Section& child : section.children) {
      if (child.name == "Malfunction") {
        builder_.malfunction(*block, child.get("Name"),
                             child.get_number("Rate", 0.0),
                             child.get_or("Description", ""));
      }
    }
    for (const Section& child : section.children) {
      if (child.name == "FailureRow") {
        builder_.annotate(*block, child.get("Output"), child.get("Cause"),
                          child.get_or("Description", ""),
                          child.get_number("Condition", 1.0));
      }
    }
  }

  void add_ports(const Section& section, Block& block) {
    for (const Section& child : section.children) {
      if (child.name != "Port" && child.name != "Trigger") continue;
      const bool is_trigger =
          child.name == "Trigger" || iequals(child.get_or("Trigger", "off"), "on");
      const std::string direction_text =
          child.get_or("Direction", is_trigger ? "input" : "");
      PortDirection direction;
      if (iequals(direction_text, "input")) {
        direction = PortDirection::kInput;
      } else if (iequals(direction_text, "output")) {
        direction = PortDirection::kOutput;
      } else {
        throw ParseError("Port section needs Direction \"input\" or "
                         "\"output\"",
                         child.line, 1);
      }
      block.add_port(Symbol(child.get("Name")), direction,
                     parse_flow(child.get_or("Flow", "data"), child.line),
                     child.get_int("Width", 1), is_trigger);
    }
  }

  const Section& root_;
  ModelBuilder builder_;
  bool validated_;
};

}  // namespace

Model parse_mdl(std::string_view text, bool validated) {
  DomParser dom(mdl::tokenize(text));
  Section root = dom.parse_root();
  return Interpreter(root, validated).run();
}

Model parse_mdl_file(const std::string& path, bool validated) {
  std::ifstream file(path);
  require(file.good(), ErrorKind::kParse,
          "cannot open model file '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_mdl(buffer.str(), validated);
}

}  // namespace ftsynth
