#include "mdl/writer.h"

#include <fstream>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

class Writer {
 public:
  explicit Writer(const Model& model) : model_(model) {}

  std::string run() {
    line(0, "Model {");
    attr(1, "Name", model_.name());
    for (FailureClass cls : model_.registry().all()) {
      line(1, "FailureClass {");
      attr(2, "Name", std::string(cls.view()));
      attr(2, "Category", std::string(to_string(cls.category())));
      line(1, "}");
    }
    write_system(1, model_.root());
    line(0, "}");
    return std::move(out_);
  }

 private:
  void line(int indent, std::string_view text) {
    out_.append(static_cast<std::size_t>(indent) * 2, ' ');
    out_ += text;
    out_ += '\n';
  }

  void attr(int indent, std::string_view key, const std::string& value) {
    line(indent, std::string(key) + " \"" + escape_quoted(value) + "\"");
  }

  void attr_raw(int indent, std::string_view key, const std::string& value) {
    line(indent, std::string(key) + " " + value);
  }

  void write_system(int indent, const Block& subsystem) {
    line(indent, "System {");
    for (const auto& child : subsystem.children())
      write_block(indent + 1, *child);
    for (const Connection& connection : subsystem.connections()) {
      line(indent + 1, "Line {");
      attr(indent + 2, "Src", endpoint(*connection.from));
      attr(indent + 2, "Dst", endpoint(*connection.to));
      line(indent + 1, "}");
    }
    line(indent, "}");
  }

  static std::string endpoint(const Port& port) {
    return std::string(port.owner().name().view()) + "." +
           std::string(port.name().view());
  }

  void write_block(int indent, const Block& block) {
    line(indent, "Block {");
    attr_raw(indent + 1, "BlockType", std::string(to_string(block.kind())));
    attr(indent + 1, "Name", std::string(block.name().view()));
    if (!block.description().empty())
      attr(indent + 1, "Description", block.description());

    switch (block.kind()) {
      case BlockKind::kInport:
      case BlockKind::kOutport: {
        // Single implicit port; persist its width/flow.
        const Port& port = *block.ports().front();
        attr_raw(indent + 1, "Width", std::to_string(port.width()));
        attr(indent + 1, "Flow", std::string(to_string(port.flow())));
        break;
      }
      case BlockKind::kDataStoreWrite:
      case BlockKind::kDataStoreRead:
        attr(indent + 1, "Store", block.store_name().str());
        break;
      case BlockKind::kGround:
        break;
      case BlockKind::kBasic:
      case BlockKind::kMux:
      case BlockKind::kDemux:
        for (const auto& port : block.ports()) write_port(indent + 1, *port);
        break;
      case BlockKind::kSubsystem:
        write_system(indent + 1, block);
        break;
    }

    write_annotation(indent + 1, block.annotation());
    line(indent, "}");
  }

  void write_port(int indent, const Port& port) {
    line(indent, "Port {");
    attr(indent + 1, "Name", std::string(port.name().view()));
    attr(indent + 1, "Direction", std::string(to_string(port.direction())));
    if (port.flow() != FlowKind::kData)
      attr(indent + 1, "Flow", std::string(to_string(port.flow())));
    if (port.width() != 1)
      attr_raw(indent + 1, "Width", std::to_string(port.width()));
    if (port.is_trigger()) attr_raw(indent + 1, "Trigger", "on");
    line(indent, "}");
  }

  void write_annotation(int indent, const Annotation& annotation) {
    for (const Malfunction& m : annotation.malfunctions()) {
      line(indent, "Malfunction {");
      attr(indent + 1, "Name", m.name.str());
      if (m.rate > 0.0) attr_raw(indent + 1, "Rate", format_double(m.rate));
      if (!m.description.empty())
        attr(indent + 1, "Description", m.description);
      line(indent, "}");
    }
    for (const AnnotationRow& row : annotation.rows()) {
      line(indent, "FailureRow {");
      attr(indent + 1, "Output", row.output.to_string());
      attr(indent + 1, "Cause", row.cause->to_string());
      if (!row.description.empty())
        attr(indent + 1, "Description", row.description);
      if (row.condition_probability < 1.0) {
        attr_raw(indent + 1, "Condition",
                 format_double(row.condition_probability));
      }
      line(indent, "}");
    }
  }

  const Model& model_;
  std::string out_;
};

}  // namespace

std::string write_mdl(const Model& model) { return Writer(model).run(); }

void write_mdl_file(const Model& model, const std::string& path) {
  std::ofstream file(path);
  require(file.good(), ErrorKind::kParse,
          "cannot open '" + path + "' for writing");
  file << write_mdl(model);
  require(file.good(), ErrorKind::kParse, "failed writing '" + path + "'");
}

}  // namespace ftsynth
