// Lexer for the annotated-model text format (see mdl/parser.h for the
// grammar). Produces identifiers, quoted strings, numbers and braces;
// '#' starts a comment running to end of line.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/diagnostics.h"

namespace ftsynth::mdl {

enum class TokenKind { kIdent, kString, kNumber, kLBrace, kRBrace, kEnd };

struct Token {
  TokenKind kind;
  std::string text;  ///< unescaped for kString; literal text otherwise
  int line = 1;
  int column = 1;
};

/// Tokenises the whole input; throws ParseError on malformed input
/// (unterminated string, stray character). The result always ends with a
/// kEnd token.
std::vector<Token> tokenize(std::string_view text);

/// Recovering variant: malformed input is reported to `sink` and skipped
/// (a stray character is dropped, an unterminated string yields the text
/// collected so far), so lexing always reaches the end of the input. The
/// result still ends with a kEnd token.
std::vector<Token> tokenize(std::string_view text, DiagnosticSink& sink);

}  // namespace ftsynth::mdl
