// Writer for the annotated-model text format: the inverse of mdl/parser.h.
// write_mdl(parse_mdl(text)) and parse_mdl(write_mdl(model)) round-trip
// (property-tested in tests/test_mdl.cpp).

#pragma once

#include <string>

#include "model/model.h"

namespace ftsynth {

/// Serialises `model` (topology + annotations) into the text format.
std::string write_mdl(const Model& model);

/// Writes write_mdl(model) to `path`; throws ErrorKind::kParse on I/O
/// failure.
void write_mdl_file(const Model& model, const std::string& path);

}  // namespace ftsynth
