// Parser for the annotated-model text format.
//
// The paper's tool chain exports the Simulink model -- extended with the
// hazard-analysis annotations -- "as a text file that conforms to a
// particular syntax", which the safety tool then parses and rebuilds in
// memory (section 3, Figure 4). This is that format: a Simulink-MDL-style
// nested-section grammar.
//
//   Model {
//     Name "bbw"
//     FailureClass { Name "Babbling"  Category "provision" }   # optional
//     System {
//       Block { BlockType Inport  Name "pedal"  Width 1  Flow "data" }
//       Block {
//         BlockType Basic
//         Name "filter"
//         Port { Name "in"   Direction "input" }
//         Port { Name "out"  Direction "output" }
//         Malfunction { Name "stuck"  Rate 1e-6  Description "..." }
//         FailureRow {
//           Output "Omission-out"
//           Cause  "Omission-in OR stuck"
//         }
//       }
//       Block {
//         BlockType SubSystem
//         Name "node"
//         System { ... }                       # children and lines
//         FailureRow { ... }                   # hardware common cause
//       }
//       Block { BlockType Outport  Name "force" }
//       Line { Src "pedal"  Dst "filter.in" }
//       Line { Src "filter.out"  Dst "force" }
//     }
//   }
//
// Conventions: Inport/Outport/Ground/DataStore blocks get their standard
// ports implicitly; Basic/Mux/Demux blocks declare Port sections. Line
// endpoints are "block.port", or a bare block name when unambiguous.
// A Port section may carry `Trigger on` to mark a control input.

#pragma once

#include <string>
#include <string_view>

#include "core/diagnostics.h"
#include "model/model.h"

namespace ftsynth {

/// Parses the text of an annotated model file. Throws ParseError on syntax
/// errors; with `validated` (the default) the model is additionally run
/// through validate_or_throw, so structurally invalid content throws
/// ErrorKind::kModel. Pass validated=false to obtain the raw model (e.g.
/// to report validation issues yourself).
Model parse_mdl(std::string_view text, bool validated = true);

/// Reads and parses `path`; throws ErrorKind::kParse when unreadable.
Model parse_mdl_file(const std::string& path, bool validated = true);

/// Error-recovering parse: instead of throwing on the first problem, the
/// lexer and parser run in panic-mode recovery -- each syntax error is
/// reported to `sink` with its source location, the parser synchronises on
/// the next '}' or section keyword, and parsing continues. Malformed
/// blocks, annotations and lines are likewise skipped with a diagnostic
/// instead of aborting the run, so one pass reports *every* problem and
/// still yields the partial model built from the healthy parts. Structural
/// validation issues are appended to `sink` as kModel diagnostics
/// (warnings stay warnings). Only I/O failures still throw.
Model parse_mdl(std::string_view text, DiagnosticSink& sink);

/// Reads and parses `path` with error recovery; throws ErrorKind::kParse
/// only when the file is unreadable.
Model parse_mdl_file(const std::string& path, DiagnosticSink& sink);

}  // namespace ftsynth
