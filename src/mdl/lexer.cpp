#include "mdl/lexer.h"

#include <cctype>

#include "core/error.h"

namespace ftsynth::mdl {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool done() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  char take() noexcept {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_number_start(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
         c == '.';
}

/// One lexer body for both modes: `sink == nullptr` throws on the first
/// malformed byte (the historical fail-fast contract), a sink records a
/// diagnostic and keeps lexing.
std::vector<Token> tokenize_impl(std::string_view text, DiagnosticSink* sink) {
  std::vector<Token> tokens;
  Cursor cursor(text);
  while (!cursor.done()) {
    const char c = cursor.peek();
    const int line = cursor.line();
    const int column = cursor.column();
    if (std::isspace(static_cast<unsigned char>(c))) {
      cursor.take();
      continue;
    }
    if (c == '#') {
      while (!cursor.done() && cursor.peek() != '\n') cursor.take();
      continue;
    }
    if (c == '{') {
      cursor.take();
      tokens.push_back({TokenKind::kLBrace, "{", line, column});
      continue;
    }
    if (c == '}') {
      cursor.take();
      tokens.push_back({TokenKind::kRBrace, "}", line, column});
      continue;
    }
    if (c == '"') {
      cursor.take();
      std::string value;
      bool closed = false;
      while (!cursor.done()) {
        char d = cursor.take();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\' && !cursor.done()) {
          char e = cursor.take();
          switch (e) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            case 'r':
              value += '\r';
              break;
            default:
              value += e;  // \" and \\ fall here
          }
          continue;
        }
        value += d;
      }
      if (!closed) {
        if (sink == nullptr)
          throw ParseError("unterminated string literal", line, column);
        sink->error(ErrorKind::kParse, "unterminated string literal",
                    {line, column});
      }
      tokens.push_back({TokenKind::kString, std::move(value), line, column});
      continue;
    }
    if (is_ident_start(c)) {
      std::string word;
      while (!cursor.done() && is_ident_char(cursor.peek()))
        word += cursor.take();
      tokens.push_back({TokenKind::kIdent, std::move(word), line, column});
      continue;
    }
    if (is_number_start(c)) {
      std::string number;
      // Accept a permissive numeric shape; strtod validates on use.
      while (!cursor.done() &&
             (is_number_start(cursor.peek()) ||
              std::isalnum(static_cast<unsigned char>(cursor.peek())))) {
        number += cursor.take();
      }
      tokens.push_back({TokenKind::kNumber, std::move(number), line, column});
      continue;
    }
    if (sink == nullptr) {
      throw ParseError("unexpected character '" + std::string(1, c) + "'",
                       line, column);
    }
    sink->error(ErrorKind::kParse,
                "unexpected character '" + std::string(1, c) + "'",
                {line, column});
    cursor.take();  // skip the offending byte and resume
  }
  tokens.push_back({TokenKind::kEnd, "", cursor.line(), cursor.column()});
  return tokens;
}

}  // namespace

std::vector<Token> tokenize(std::string_view text) {
  return tokenize_impl(text, nullptr);
}

std::vector<Token> tokenize(std::string_view text, DiagnosticSink& sink) {
  return tokenize_impl(text, &sink);
}

}  // namespace ftsynth::mdl
