// Exact probability of a BDD-encoded boolean function under independent
// per-variable probabilities. Because every variable occurs at most once on
// any root-to-terminal path of an ROBDD, Shannon expansion gives the exact
// probability in one linear pass:
//
//   P(node v) = p_v * P(high) + (1 - p_v) * P(low)
//
// BddProbabilityEngine is the batched form: one probability memo shared
// across every query of an analysis (probability, conditionals, Birnbaum),
// plus the O(N) all-variables Birnbaum sweep that replaces the per-variable
// restrict-and-reevaluate loop (O(V*N) -> O(N)).

#pragma once

#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"

namespace ftsynth {

/// Exact P[f = true] with P[var i = true] = probabilities[i].
/// `probabilities` must cover every variable appearing in `f`.
double bdd_probability(const Bdd& bdd, Bdd::Ref f,
                       const std::vector<double>& probabilities);

/// Birnbaum importance of variable `v`: P[f | v=1] - P[f | v=0], computed
/// exactly on the BDD. Non-const: restriction may allocate nodes (existing
/// references remain valid).
double bdd_birnbaum(Bdd& bdd, Bdd::Ref f,
                    const std::vector<double>& probabilities, int v);

/// Exact P[f | v = value] (conditional probability with the variable
/// pinned). Non-const for the same reason as bdd_birnbaum.
double bdd_probability_given(Bdd& bdd, Bdd::Ref f,
                             const std::vector<double>& probabilities, int v,
                             bool value);

/// Batches probability queries over one BDD under one fixed probability
/// vector, sharing a single probability memo across every call -- N
/// importance queries reuse each other's subresults instead of recomputing
/// the full bottom-up pass per variable.
///
/// Reordering audit: the shared probability memo maps Ref -> P[function],
/// which swaps preserve, but restrict-based queries depend on the level
/// order; the engine must not be used across a sift() of its diagram.
/// (In practice the probability BDD is built under a static order and
/// never sifted.) Restriction may allocate nodes; existing Refs -- and
/// therefore memo entries -- remain valid.
class BddProbabilityEngine {
 public:
  /// `probabilities` must cover every variable appearing in any queried
  /// function; it is copied (queries must see a stable vector).
  BddProbabilityEngine(Bdd& bdd, std::vector<double> probabilities);

  /// Exact P[f = true]; memoised across all queries on this engine.
  double probability(Bdd::Ref f);

  /// Exact P[f | v = value]. The restriction memo is per-call (it is
  /// order-dependent); the probability memo is shared.
  double probability_given(Bdd::Ref f, int v, bool value);

  /// Birnbaum importance of `v`: P[f | v=1] - P[f | v=0]. Both restricted
  /// evaluations share the engine's probability memo.
  double birnbaum(Bdd::Ref f, int v);

  /// Birnbaum importance of EVERY variable in one combined pass: an upward
  /// sweep computing P[node] for each reachable node and a downward sweep
  /// computing each node's reachability weight R[node] (the probability
  /// that the path from the root reaches it), then
  ///
  ///   BM(v) = sum over nodes n labelled v of R[n] * (P[high] - P[low])
  ///
  /// -- exact, equal to the restrict-based definition, and O(N) total
  /// instead of O(V*N). The returned vector is indexed by variable and
  /// sized like the probability vector; variables not in `f` get 0.
  /// Traversal and summation order are structure-determined (postorder,
  /// low child first), so results are bit-identical across runs
  /// regardless of Ref numbering.
  std::vector<double> birnbaum_all(Bdd::Ref f);

  const std::vector<double>& probabilities() const noexcept {
    return probabilities_;
  }

 private:
  Bdd& bdd_;
  std::vector<double> probabilities_;
  std::unordered_map<Bdd::Ref, double> memo_;
};

}  // namespace ftsynth
