// Exact probability of a BDD-encoded boolean function under independent
// per-variable probabilities. Because every variable occurs at most once on
// any root-to-terminal path of an ROBDD, Shannon expansion gives the exact
// probability in one linear pass:
//
//   P(node v) = p_v * P(high) + (1 - p_v) * P(low)

#pragma once

#include <vector>

#include "bdd/bdd.h"

namespace ftsynth {

/// Exact P[f = true] with P[var i = true] = probabilities[i].
/// `probabilities` must cover every variable appearing in `f`.
double bdd_probability(const Bdd& bdd, Bdd::Ref f,
                       const std::vector<double>& probabilities);

/// Birnbaum importance of variable `v`: P[f | v=1] - P[f | v=0], computed
/// exactly on the BDD. Non-const: restriction may allocate nodes (existing
/// references remain valid).
double bdd_birnbaum(Bdd& bdd, Bdd::Ref f,
                    const std::vector<double>& probabilities, int v);

/// Exact P[f | v = value] (conditional probability with the variable
/// pinned). Non-const for the same reason as bdd_birnbaum.
double bdd_probability_given(Bdd& bdd, Bdd::Ref f,
                             const std::vector<double>& probabilities, int v,
                             bool value);

}  // namespace ftsynth
