// Rudell sifting: dynamic variable reordering for the decision diagrams.
//
// Both managers (bdd/bdd.h, bdd/zbdd.h) order their nodes by a per-variable
// level that the static depth-first-occurrence heuristic
// (analysis/ordering.h) seeds but never revisits. On adversarial structures
// -- interleaved voter chains, grouped replicated pairs -- that static order
// is exponentially bad, so the managers expose an adjacent-level swap
// primitive and this header drives it with the classic sifting schedule
// (Rudell, ICCAD'93): move each variable, heaviest level first, through
// every position of the order, remember the position where the live diagram
// was smallest, and park it there. Converge mode repeats passes until a
// pass stops paying.
//
// The driver is a template over the manager because the schedule is
// identical for both diagram kinds; only the swap arithmetic differs (and
// lives with the managers). A manager must provide:
//
//   using Ref = ...;
//   int var_count() const;
//   int level_of(int var) const;
//   std::size_t level_width(int level) const;   // live nodes on the level
//   void swap_adjacent_levels(int level);
//   void collect_garbage(const std::vector<Ref>& roots);
//   std::size_t live_size(const std::vector<Ref>& roots) const;
//
// `roots` are every externally held reference (engine memo tables,
// accumulators, the contradiction family): swaps preserve each Ref's
// meaning in place, but garbage collection reclaims anything unreachable
// from the roots, so a forgotten root is a use-after-free.

#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/budget.h"

namespace ftsynth {

struct SiftOptions {
  /// Abort a variable's journey in the current direction once the live
  /// diagram grows past best * (100 + max_growth_percent) / 100. The
  /// standard damper: a variable rarely recovers after swelling the table.
  int max_growth_percent = 20;
  /// Hard swap ceiling for the whole run (0 = unlimited). The effort knob
  /// for callers without a deadline.
  std::size_t max_swaps = 0;
  /// Repeat whole passes until one stops improving (classic
  /// sifting-to-convergence), bounded by max_passes.
  bool converge = false;
  int max_passes = 8;
  /// Deadline polled between swaps (not owned, may be null). Expiry stops
  /// the reorder at the next swap boundary -- every intermediate order is a
  /// valid order, so an interrupted sift degrades, never corrupts.
  Budget* budget = nullptr;
};

struct SiftStats {
  int passes = 0;
  std::size_t swaps = 0;
  std::size_t size_before = 0;  ///< live nodes before the first swap
  std::size_t size_after = 0;   ///< live nodes at the final order
  bool interrupted = false;     ///< budget / swap ceiling stopped the run

  void merge(const SiftStats& other) noexcept {
    if (passes == 0 && swaps == 0) size_before = other.size_before;
    passes += other.passes;
    swaps += other.swaps;
    size_after = other.size_after;
    interrupted = interrupted || other.interrupted;
  }
};

/// Runs Rudell sifting on `manager` and returns what it did. Deterministic:
/// the same diagram, roots and options always produce the same final order.
template <typename Manager>
SiftStats rudell_sift(Manager& manager,
                      const std::vector<typename Manager::Ref>& roots,
                      const SiftOptions& options) {
  SiftStats stats;
  manager.collect_garbage(roots);  // sizes below must mean LIVE nodes
  std::size_t current = manager.live_size(roots);
  stats.size_before = current;
  stats.size_after = current;
  const int levels = manager.var_count();
  if (levels < 2) return stats;

  auto exhausted = [&]() {
    if (options.max_swaps != 0 && stats.swaps >= options.max_swaps)
      return true;
    return options.budget != nullptr && options.budget->poll();
  };
  const int passes = options.converge ? std::max(1, options.max_passes) : 1;
  for (int pass = 0; pass < passes && !stats.interrupted; ++pass) {
    ++stats.passes;
    const std::size_t pass_start = current;
    // Heaviest variables first: parking the fattest level pays the most
    // and unlocks gains for everything sifted after it. Width-0 variables
    // (declared but absent from the live diagram) cannot change any size,
    // so they keep their positions.
    std::vector<std::size_t> width(static_cast<std::size_t>(levels), 0);
    std::vector<int> vars;
    vars.reserve(static_cast<std::size_t>(levels));
    for (int v = 0; v < levels; ++v) {
      width[static_cast<std::size_t>(v)] =
          manager.level_width(manager.level_of(v));
      if (width[static_cast<std::size_t>(v)] > 0) vars.push_back(v);
    }
    std::stable_sort(vars.begin(), vars.end(), [&](int a, int b) {
      return width[static_cast<std::size_t>(a)] >
             width[static_cast<std::size_t>(b)];
    });

    for (int v : vars) {
      if (exhausted()) {
        stats.interrupted = true;
        break;
      }
      int pos = manager.level_of(v);
      int best_pos = pos;
      std::size_t best = current;
      const std::size_t limit =
          best +
          best * static_cast<std::size_t>(options.max_growth_percent) / 100 +
          2;
      // One journey: nearer boundary first, then sweep across to the other
      // one, then settle on the best position seen.
      auto travel = [&](int target) {
        while (pos != target) {
          if (exhausted()) {
            stats.interrupted = true;
            return;
          }
          manager.swap_adjacent_levels(pos < target ? pos : pos - 1);
          ++stats.swaps;
          pos += pos < target ? 1 : -1;
          const std::size_t size = manager.live_size(roots);
          if (size < best) {
            best = size;
            best_pos = pos;
          }
          if (size > limit) return;  // growth damper: stop this direction
        }
      };
      if (pos <= levels - 1 - pos) {
        travel(0);
        if (!stats.interrupted) travel(levels - 1);
      } else {
        travel(levels - 1);
        if (!stats.interrupted) travel(0);
      }
      // Always park at the best position, even on interrupt: the journey
      // above may have left the variable somewhere worse.
      while (pos != best_pos) {
        manager.swap_adjacent_levels(pos < best_pos ? pos : pos - 1);
        ++stats.swaps;
        pos += pos < best_pos ? 1 : -1;
      }
      current = best;
      // Reclaim this journey's exploration nodes so the next journey's
      // swap loops do not drag dead levels around.
      manager.collect_garbage(roots);
      if (stats.interrupted) break;
    }
    if (current >= pass_start) break;  // converged: the pass stopped paying
  }
  stats.size_after = current;
  return stats;
}

}  // namespace ftsynth
