#include "bdd/bdd_prob.h"

#include <unordered_map>
#include <vector>

#include "core/error.h"

namespace ftsynth {

namespace {

// Reordering audit: every memo in this file lives for one public call (or
// one BddProbabilityEngine), and no Bdd operation reorders, so levels
// cannot move mid-traversal. Holding these memos ACROSS a
// swap_adjacent_levels()/sift() would still be sound for probability_rec --
// swaps rewrite nodes in place preserving each Ref's function, and
// probability depends only on the function -- but NOT for
// conditional_rec, whose memo entries depend on the order through the
// level-based shared-memo handoff; keep that one per-invocation.
double probability_rec(const Bdd& bdd, Bdd::Ref f,
                       const std::vector<double>& probabilities,
                       std::unordered_map<Bdd::Ref, double>& memo) {
  if (bdd.is_false(f)) return 0.0;
  if (bdd.is_true(f)) return 1.0;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Bdd::Node& n = bdd.node(f);
  check_internal(static_cast<std::size_t>(n.var) < probabilities.size(),
                 "probability vector too short for BDD");
  const double p = probabilities[static_cast<std::size_t>(n.var)];
  const double result =
      p * probability_rec(bdd, n.high, probabilities, memo) +
      (1.0 - p) * probability_rec(bdd, n.low, probabilities, memo);
  memo.emplace(f, result);
  return result;
}

// P(f | v = value), evaluated directly on the original diagram: at a
// v-node only the forced branch contributes (and without v's probability
// factor); at every other node the Shannon expansion proceeds as usual.
// No cofactor diagram is ever built -- the old restrict-then-evaluate
// path paid an ite (unique-table allocation) per visited node, which
// dominated importance analysis once every variable asked twice. Nodes
// strictly below v's level cannot contain v (ordered diagram; level
// looked up live, never cached across calls, as levels move under
// dynamic reordering), so their values come from -- and land in -- the
// caller's unrestricted memo; only the v-dependent region above needs
// the per-call conditional memo.
double conditional_rec(const Bdd& bdd, Bdd::Ref f, int v, bool value,
                       const std::vector<double>& probabilities,
                       std::unordered_map<Bdd::Ref, double>& shared_memo,
                       std::unordered_map<Bdd::Ref, double>& memo) {
  if (bdd.is_false(f)) return 0.0;
  if (bdd.is_true(f)) return 1.0;
  const Bdd::Node& n = bdd.node(f);
  if (bdd.level_of(n.var) > bdd.level_of(v))
    return probability_rec(bdd, f, probabilities, shared_memo);
  if (n.var == v)
    return probability_rec(bdd, value ? n.high : n.low, probabilities,
                           shared_memo);
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const double p = probabilities[static_cast<std::size_t>(n.var)];
  const double result =
      p * conditional_rec(bdd, n.high, v, value, probabilities, shared_memo,
                          memo) +
      (1.0 - p) * conditional_rec(bdd, n.low, v, value, probabilities,
                                  shared_memo, memo);
  memo.emplace(f, result);
  return result;
}

// Reachable internal nodes of `f` in postorder (low subgraph first), with
// a Ref -> postorder-index map. Iterative so adversarially deep diagrams
// cannot overflow the stack; the visit order depends only on the diagram's
// structure, never on Ref numbering, which keeps downstream floating-point
// summation order deterministic across runs and cache states.
void postorder_nodes(const Bdd& bdd, Bdd::Ref f, std::vector<Bdd::Ref>* order,
                     std::unordered_map<Bdd::Ref, std::uint32_t>* index) {
  if (bdd.is_terminal(f)) return;
  struct Frame {
    Bdd::Ref ref;
    int stage;  // 0 = visit low, 1 = visit high, 2 = emit
  };
  std::vector<Frame> stack;
  stack.push_back({f, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.stage == 2) {
      if (index->find(frame.ref) == index->end()) {
        index->emplace(frame.ref, static_cast<std::uint32_t>(order->size()));
        order->push_back(frame.ref);
      }
      stack.pop_back();
      continue;
    }
    const Bdd::Node& n = bdd.node(frame.ref);
    const Bdd::Ref child = frame.stage == 0 ? n.low : n.high;
    ++frame.stage;
    if (!bdd.is_terminal(child) && index->find(child) == index->end()) {
      // Defer duplicates to the emit stage (a child pushed twice before
      // its first emit collapses there).
      stack.push_back({child, 0});
    }
  }
}

}  // namespace

double bdd_probability(const Bdd& bdd, Bdd::Ref f,
                       const std::vector<double>& probabilities) {
  std::unordered_map<Bdd::Ref, double> memo;
  return probability_rec(bdd, f, probabilities, memo);
}

double bdd_birnbaum(Bdd& bdd, Bdd::Ref f,
                    const std::vector<double>& probabilities, int v) {
  BddProbabilityEngine engine(bdd, probabilities);
  return engine.birnbaum(f, v);
}

double bdd_probability_given(Bdd& bdd, Bdd::Ref f,
                             const std::vector<double>& probabilities, int v,
                             bool value) {
  BddProbabilityEngine engine(bdd, probabilities);
  return engine.probability_given(f, v, value);
}

BddProbabilityEngine::BddProbabilityEngine(Bdd& bdd,
                                           std::vector<double> probabilities)
    : bdd_(bdd), probabilities_(std::move(probabilities)) {}

double BddProbabilityEngine::probability(Bdd::Ref f) {
  return probability_rec(bdd_, f, probabilities_, memo_);
}

double BddProbabilityEngine::probability_given(Bdd::Ref f, int v, bool value) {
  std::unordered_map<Bdd::Ref, double> conditional_memo;
  return conditional_rec(bdd_, f, v, value, probabilities_, memo_,
                         conditional_memo);
}

double BddProbabilityEngine::birnbaum(Bdd::Ref f, int v) {
  // Both restricted evaluations run against the shared probability memo:
  // the cofactor diagrams overlap heavily with f and with each other, so
  // the second evaluation is mostly memo hits.
  return probability_given(f, v, true) - probability_given(f, v, false);
}

std::vector<double> BddProbabilityEngine::birnbaum_all(Bdd::Ref f) {
  std::vector<double> result(probabilities_.size(), 0.0);
  if (bdd_.is_terminal(f)) return result;

  std::vector<Bdd::Ref> order;
  std::unordered_map<Bdd::Ref, std::uint32_t> index;
  postorder_nodes(bdd_, f, &order, &index);

  // Upward sweep: node probabilities (fills the shared memo).
  probability(f);
  auto node_probability = [&](Bdd::Ref ref) -> double {
    if (bdd_.is_false(ref)) return 0.0;
    if (bdd_.is_true(ref)) return 1.0;
    return memo_.at(ref);
  };

  // Downward sweep in reverse postorder (a topological order: every
  // parent precedes both children), accumulating the probability that a
  // root-to-terminal walk reaches each node.
  std::vector<double> reach(order.size(), 0.0);
  reach[index.at(f)] = 1.0;
  for (std::size_t i = order.size(); i-- > 0;) {
    const Bdd::Node& n = bdd_.node(order[i]);
    check_internal(static_cast<std::size_t>(n.var) < probabilities_.size(),
                   "probability vector too short for BDD");
    const double p = probabilities_[static_cast<std::size_t>(n.var)];
    const double r = reach[i];
    if (!bdd_.is_terminal(n.low)) reach[index.at(n.low)] += (1.0 - p) * r;
    if (!bdd_.is_terminal(n.high)) reach[index.at(n.high)] += p * r;
    // Variables skipped between this node and its children marginalise to
    // a factor of 1, so level skipping needs no correction term.
    result[static_cast<std::size_t>(n.var)] +=
        r * (node_probability(n.high) - node_probability(n.low));
  }
  return result;
}

}  // namespace ftsynth
