#include "bdd/bdd_prob.h"

#include <unordered_map>

#include "core/error.h"

namespace ftsynth {

namespace {

// Reordering audit: every memo in this file lives for one public call, and
// no Bdd operation reorders, so levels cannot move mid-traversal. Holding
// these memos ACROSS a swap_adjacent_levels()/sift() would still be sound
// for probability_rec -- swaps rewrite nodes in place preserving each Ref's
// function, and probability depends only on the function -- but NOT for
// restrict_var, whose results depend on the order through its level-based
// pruning; keep them per-invocation.
double probability_rec(const Bdd& bdd, Bdd::Ref f,
                       const std::vector<double>& probabilities,
                       std::unordered_map<Bdd::Ref, double>& memo) {
  if (bdd.is_false(f)) return 0.0;
  if (bdd.is_true(f)) return 1.0;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Bdd::Node& n = bdd.node(f);
  check_internal(static_cast<std::size_t>(n.var) < probabilities.size(),
                 "probability vector too short for BDD");
  const double p = probabilities[static_cast<std::size_t>(n.var)];
  const double result =
      p * probability_rec(bdd, n.high, probabilities, memo) +
      (1.0 - p) * probability_rec(bdd, n.low, probabilities, memo);
  memo.emplace(f, result);
  return result;
}

// Restricts f by fixing variable v to `value`.
Bdd::Ref restrict_var(Bdd& bdd, Bdd::Ref f, int v, bool value,
                      std::unordered_map<Bdd::Ref, Bdd::Ref>& memo) {
  if (bdd.is_terminal(f)) return f;
  const Bdd::Node n = bdd.node(f);
  // v cannot appear below a deeper level. Looked up live (never cached
  // across calls): levels move under dynamic reordering.
  if (bdd.level_of(n.var) > bdd.level_of(v)) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  Bdd::Ref result;
  if (n.var == v) {
    result = value ? n.high : n.low;
  } else {
    Bdd::Ref low = restrict_var(bdd, n.low, v, value, memo);
    Bdd::Ref high = restrict_var(bdd, n.high, v, value, memo);
    // Rebuild through ite on the decision variable to stay reduced.
    result = bdd.ite(bdd.var(n.var), high, low);
  }
  memo.emplace(f, result);
  return result;
}

}  // namespace

double bdd_probability(const Bdd& bdd, Bdd::Ref f,
                       const std::vector<double>& probabilities) {
  std::unordered_map<Bdd::Ref, double> memo;
  return probability_rec(bdd, f, probabilities, memo);
}

double bdd_birnbaum(Bdd& bdd, Bdd::Ref f,
                    const std::vector<double>& probabilities, int v) {
  std::unordered_map<Bdd::Ref, Bdd::Ref> memo_high;
  std::unordered_map<Bdd::Ref, Bdd::Ref> memo_low;
  Bdd::Ref f_high = restrict_var(bdd, f, v, true, memo_high);
  Bdd::Ref f_low = restrict_var(bdd, f, v, false, memo_low);
  return bdd_probability(bdd, f_high, probabilities) -
         bdd_probability(bdd, f_low, probabilities);
}

double bdd_probability_given(Bdd& bdd, Bdd::Ref f,
                             const std::vector<double>& probabilities, int v,
                             bool value) {
  std::unordered_map<Bdd::Ref, Bdd::Ref> memo;
  return bdd_probability(bdd, restrict_var(bdd, f, v, value, memo),
                         probabilities);
}

}  // namespace ftsynth
