// Diagram-native measures of a ZBDD-encoded set family.
//
// The ZBDD engine's minimal cut-set family can be astronomically larger
// than its diagram (2^n sets in O(n) nodes), so any number computed by
// first *extracting* the family inherits the enumeration cost -- and is
// silently partial once extraction truncates. Every reliability figure the
// reporting layer derives from the family is in fact a sum or minimum over
// the sets, and such measures decompose over ZBDD structure: with S(n) the
// measure of the family rooted at n,
//
//   mass   M(empty) = 0, M(base) = 1,  M(n) = M(low) + p_v * M(high)
//   count  C(empty) = 0, C(base) = 1,  C(n) = C(low) + C(high)
//   order  U(empty) = inf, U(base) = 0, U(n) = min(U(low), 1 + U(high))
//
// (low = subfamily without v, high = subfamily containing v with v
// stripped; no complement factor on the low edge -- unlike a BDD, a ZBDD
// low branch asserts nothing about v.) One upward pass per measure gives
// the whole-family value; a downward reachability pass then splits each
// measure per variable, yielding Fussell-Vesely numerators, per-event set
// counts and smallest orders for ALL events in O(N) total -- the numbers
// importance and FMEA ranking need, exact even when the family was never
// extracted.
//
// The Esary-Proschan bound 1 - prod_s (1 - P(s)) is not node-decomposable
// (it multiplies over sets), but log(1 - EP) = sum_s log(1 - P(s)) expands
// into power sums sum_s P(s)^k / k, and each power sum IS a mass sweep
// under the pointwise k-th power of the probability vector. Summing
// moments until they vanish (they decay at least geometrically with ratio
// max_s P(s)) evaluates the bound to double precision in a handful of
// O(N) passes.

#pragma once

#include <cstddef>
#include <vector>

#include "bdd/zbdd.h"
#include "core/budget.h"

namespace ftsynth {

/// Family-level and per-variable measures of one ZBDD family. All sweep
/// and summation orders are structure-determined (postorder, low child
/// first), so values are bit-identical across runs, Ref numberings and
/// cache states.
struct ZbddMeasures {
  /// False when the budget deadline fired mid-sweep; every other field is
  /// then partial and must not be used.
  bool complete = false;

  double set_count = 0.0;      ///< |family| (exact while < 2^53)
  std::size_t min_order = 0;   ///< smallest set size; 0 for empty family
  double total_mass = 0.0;     ///< sum over sets of P(set): rare-event sum
  double esary_proschan = 0.0; ///< 1 - prod over sets of (1 - P(set))
  /// True when the power-sum series for esary_proschan reached double
  /// precision within the pass cap (it converges whenever every set
  /// probability is < 1; a family containing a probability-1 set exits
  /// early with the bound saturated at 1).
  bool esary_converged = false;
  /// The minimal-cut-set upper bound: the same exponent as esary_proschan
  /// finished with -expm1 instead of 1 - exp, so tiny bounds keep full
  /// relative precision (mirrors probability.h's mcub_bound on the
  /// extracted family).
  double mcub = 0.0;
  bool mcub_converged = false;  ///< same series, same convergence

  /// Per-variable splits, indexed by ZBDD variable id (sized like the
  /// probability vector). var_mass[v] = sum of P(set) over sets containing
  /// v -- the Fussell-Vesely numerator; var_count[v] = number of such
  /// sets; var_min_order[v] = size of the smallest such set (0 when v is
  /// in no set).
  std::vector<double> var_mass;
  std::vector<double> var_count;
  std::vector<std::size_t> var_min_order;
};

/// Computes every measure for the family rooted at `root`.
/// `probabilities[v]` is the probability of the literal behind ZBDD
/// variable v and must cover every variable in the diagram. `budget` is
/// polled between node visits; on deadline expiry the result comes back
/// with complete == false.
ZbddMeasures zbdd_measures(const Zbdd& zbdd, Zbdd::Ref root,
                           const std::vector<double>& probabilities,
                           Budget budget = Budget());

}  // namespace ftsynth
