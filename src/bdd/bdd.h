// Reduced Ordered Binary Decision Diagrams.
//
// The analysis layer uses BDDs as its exact engine: top-event probability
// without the rare-event approximation, equivalence checks between trees
// (design-iteration comparisons), and an oracle for the MOCUS cut-set
// engine in the property tests. 2001-era FTA tools (the Fault Tree Plus of
// the paper's tool chain) shipped exactly this pairing of a classical
// cut-set engine with an exact evaluator.
//
// Implementation: classic ROBDD with a unique table and an operation cache.
// No complement edges. Variables are ordered by creation index by default;
// set_order() installs an explicit order (e.g. the depth-first-occurrence
// heuristic of analysis/ordering.h) before any node is built, and every
// ordering-sensitive operation -- apply, sat_count, the restrictions in
// bdd_prob -- compares variables by their level under that order.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ftsynth {

/// A BDD manager owning every node it creates. References (BddRef) stay
/// valid for the manager's lifetime; functions from different managers must
/// not be mixed.
class Bdd {
 public:
  using Ref = std::uint32_t;

  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  Bdd();

  /// Declares a fresh variable; variables are ordered by declaration.
  int new_var();

  int var_count() const noexcept { return var_count_; }

  /// Installs an explicit variable order: `order[k]` is the variable at
  /// level k (level 0 = root). Must be a permutation of every declared
  /// variable, and must be installed before any node is built -- reordering
  /// an existing diagram is not supported.
  void set_order(const std::vector<int>& order);

  /// The level of a declared variable under the current order (identity
  /// when no explicit order is installed). Smaller = closer to the root.
  int level_of(int v) const;

  /// The function "variable v" / "NOT variable v".
  Ref var(int v);
  Ref nvar(int v);

  Ref apply_not(Ref a);
  Ref apply_and(Ref a, Ref b);
  Ref apply_or(Ref a, Ref b);
  Ref apply_xor(Ref a, Ref b);

  /// If-then-else: f ? g : h.
  Ref ite(Ref f, Ref g, Ref h);

  bool is_true(Ref a) const noexcept { return a == kTrue; }
  bool is_false(Ref a) const noexcept { return a == kFalse; }

  /// Number of distinct nodes in the subgraph of `a` (terminals excluded).
  std::size_t node_count(Ref a) const;

  /// Total nodes allocated by this manager.
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Evaluates under a full assignment (indexed by variable).
  bool evaluate(Ref a, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all declared variables.
  double sat_count(Ref a) const;

  // Structural access (used by probability / cut-set extraction).
  struct Node {
    int var;   ///< decision variable; terminals use a sentinel
    Ref low;   ///< cofactor with var = false
    Ref high;  ///< cofactor with var = true
  };
  const Node& node(Ref a) const { return nodes_[a]; }
  bool is_terminal(Ref a) const noexcept { return a <= kTrue; }

 private:
  Ref make(int var, Ref low, Ref high);

  enum class Op : std::uint8_t { kAnd, kOr, kXor, kNot };

  struct UniqueKey {
    int var;
    Ref low;
    Ref high;
    friend bool operator==(const UniqueKey& a, const UniqueKey& b) noexcept {
      return a.var == b.var && a.low == b.low && a.high == b.high;
    }
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 1000003u ^ k.low;
      h = h * 1000003u ^ k.high;
      return h;
    }
  };
  struct OpKey {
    Op op;
    Ref a;
    Ref b;
    friend bool operator==(const OpKey& x, const OpKey& y) noexcept {
      return x.op == y.op && x.a == y.a && x.b == y.b;
    }
  };
  struct OpHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      return h;
    }
  };

  Ref apply(Op op, Ref a, Ref b);

  /// Level of a node's decision variable; terminals sort below everything.
  int node_level(Ref a) const noexcept;

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, Ref, UniqueHash> unique_;
  std::unordered_map<OpKey, Ref, OpHash> cache_;
  std::vector<int> level_of_;  ///< level_of_[var]; identity by default
  int var_count_ = 0;
};

}  // namespace ftsynth
