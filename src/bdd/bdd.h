// Reduced Ordered Binary Decision Diagrams.
//
// The analysis layer uses BDDs as its exact engine: top-event probability
// without the rare-event approximation, equivalence checks between trees
// (design-iteration comparisons), and an oracle for the MOCUS cut-set
// engine in the property tests. 2001-era FTA tools (the Fault Tree Plus of
// the paper's tool chain) shipped exactly this pairing of a classical
// cut-set engine with an exact evaluator.
//
// Implementation: classic ROBDD with a unique table and an operation cache.
// No complement edges. Variables are ordered by creation index by default;
// set_order() installs an explicit order (e.g. the depth-first-occurrence
// heuristic of analysis/ordering.h) before any node is built, and every
// ordering-sensitive operation -- apply, sat_count, the restrictions in
// bdd_prob -- compares variables by their level under that order. The order
// may also change dynamically: swap_adjacent_levels() is the in-place
// Rudell primitive and sift() (bdd/sifting.h) drives it; swaps preserve
// every Ref's meaning, so only collect_garbage() invalidates refs (and only
// unreachable ones).

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bdd/sifting.h"

namespace ftsynth {

/// A BDD manager owning every node it creates. References (BddRef) stay
/// valid for the manager's lifetime -- across level swaps and sifting too --
/// except that collect_garbage() reclaims nodes unreachable from its root
/// set; functions from different managers must not be mixed.
class Bdd {
 public:
  using Ref = std::uint32_t;

  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  Bdd();

  /// Declares a fresh variable; variables are ordered by declaration.
  int new_var();

  int var_count() const noexcept { return var_count_; }

  /// Installs an explicit variable order: `order[k]` is the variable at
  /// level k (level 0 = root). Must be a permutation of every declared
  /// variable, and must be installed before any node is built -- use sift()
  /// or swap_adjacent_levels() to reorder an existing diagram.
  void set_order(const std::vector<int>& order);

  /// The level of a declared variable under the current order (identity
  /// when no explicit order is installed). Smaller = closer to the root.
  int level_of(int v) const;
  /// The variable at `level` -- the inverse of level_of().
  int var_at_level(int level) const;
  /// The current order as a variable list, root level first.
  std::vector<int> current_order() const { return var_at_level_; }

  /// The function "variable v" / "NOT variable v".
  Ref var(int v);
  Ref nvar(int v);

  Ref apply_not(Ref a);
  Ref apply_and(Ref a, Ref b);
  Ref apply_or(Ref a, Ref b);
  Ref apply_xor(Ref a, Ref b);

  /// If-then-else: f ? g : h.
  Ref ite(Ref f, Ref g, Ref h);

  bool is_true(Ref a) const noexcept { return a == kTrue; }
  bool is_false(Ref a) const noexcept { return a == kFalse; }

  /// Number of distinct nodes in the subgraph of `a` (terminals excluded).
  std::size_t node_count(Ref a) const;

  /// Total node slots allocated by this manager (live + reclaimable).
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Live unique-table entries (every allocated node that has not been
  /// garbage collected).
  std::size_t table_size() const noexcept { return unique_.size(); }

  /// Evaluates under a full assignment (indexed by variable).
  bool evaluate(Ref a, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all declared variables.
  double sat_count(Ref a) const;

  // Structural access (used by probability / cut-set extraction).
  struct Node {
    int var;   ///< decision variable; terminals use a sentinel
    Ref low;   ///< cofactor with var = false
    Ref high;  ///< cofactor with var = true
  };
  const Node& node(Ref a) const { return nodes_[a]; }
  bool is_terminal(Ref a) const noexcept { return a <= kTrue; }

  // -- Dynamic reordering ------------------------------------------------------
  //
  // The Rudell machinery (see bdd/sifting.h for the schedule). A swap
  // rewrites every node of `level` that depends on the variable below it
  // IN PLACE -- external refs keep their meaning -- and invalidates the
  // operation cache. Never call it while an operation is on the stack, and
  // note that memoised traversals keyed by levels (sat_count weights,
  // bdd_prob memos) must be recomputed after any swap.

  /// Exchanges the variables at `level` and `level + 1`.
  void swap_adjacent_levels(int level);

  /// Nodes currently recorded on `level` (exact right after
  /// collect_garbage(); may include not-yet-collected garbage otherwise).
  std::size_t level_width(int level) const;

  /// Reclaims every node unreachable from `roots` (terminals always
  /// survive): slots go to a free list for reuse, their unique-table
  /// entries disappear, and the operation cache is dropped. Refs to
  /// reclaimed nodes become invalid -- pass every ref you still hold.
  void collect_garbage(const std::vector<Ref>& roots);

  /// Nodes reachable from `roots` (terminals excluded): the live size the
  /// sifting driver minimises.
  std::size_t live_size(const std::vector<Ref>& roots) const;

  /// Runs Rudell sifting over the whole order (bdd/sifting.h). `roots`
  /// must list every externally held ref.
  SiftStats sift(const std::vector<Ref>& roots,
                 const SiftOptions& options = {});

 private:
  Ref make(int var, Ref low, Ref high);

  enum class Op : std::uint8_t { kAnd, kOr, kXor, kNot };

  struct UniqueKey {
    int var;
    Ref low;
    Ref high;
    friend bool operator==(const UniqueKey& a, const UniqueKey& b) noexcept {
      return a.var == b.var && a.low == b.low && a.high == b.high;
    }
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 1000003u ^ k.low;
      h = h * 1000003u ^ k.high;
      return h;
    }
  };
  struct OpKey {
    Op op;
    Ref a;
    Ref b;
    friend bool operator==(const OpKey& x, const OpKey& y) noexcept {
      return x.op == y.op && x.a == y.a && x.b == y.b;
    }
  };
  struct OpHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      return h;
    }
  };

  Ref apply(Op op, Ref a, Ref b);

  /// Level of a node's decision variable; terminals sort below everything.
  int node_level(Ref a) const noexcept;

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, Ref, UniqueHash> unique_;
  std::unordered_map<OpKey, Ref, OpHash> cache_;
  std::vector<int> level_of_;      ///< level_of_[var]; identity by default
  std::vector<int> var_at_level_;  ///< inverse of level_of_
  /// Every allocated (not yet collected) ref whose node decides this
  /// variable -- the swap primitive's per-level worklist.
  std::vector<std::vector<Ref>> var_refs_;
  std::vector<Ref> free_;          ///< collected slots awaiting reuse
  int var_count_ = 0;
};

}  // namespace ftsynth
