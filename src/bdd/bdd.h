// Reduced Ordered Binary Decision Diagrams.
//
// The analysis layer uses BDDs as its exact engine: top-event probability
// without the rare-event approximation, equivalence checks between trees
// (design-iteration comparisons), and an oracle for the MOCUS cut-set
// engine in the property tests. 2001-era FTA tools (the Fault Tree Plus of
// the paper's tool chain) shipped exactly this pairing of a classical
// cut-set engine with an exact evaluator.
//
// Implementation: classic ROBDD with a unique table and an operation cache.
// No complement edges. Variables are ordered by creation index by default;
// set_order() installs an explicit order (e.g. the depth-first-occurrence
// heuristic of analysis/ordering.h) before any node is built, and every
// ordering-sensitive operation -- apply, sat_count, the restrictions in
// bdd_prob -- compares variables by their level under that order. The order
// may also change dynamically: swap_adjacent_levels() is the in-place
// Rudell primitive and sift() (bdd/sifting.h) drives it; swaps preserve
// every Ref's meaning, so only collect_garbage() invalidates refs (and only
// unreachable ones).
//
// -- Thread safety ------------------------------------------------------------
//
// Node construction and the boolean operations (var / nvar / apply_* /
// ite) may run from many threads concurrently: the unique table and the
// operation cache are split into cache-line-padded, striped-lock shards
// addressed by key hash, and nodes live in a segmented arena whose blocks
// never move, so node(ref) stays valid while other workers allocate. The
// STRUCTURAL phases (swap_adjacent_levels / collect_garbage / sift /
// set_order) stay single-threaded by contract: the caller must hold all
// workers parked. Read-only walks (sat_count, evaluate, node_count) are
// safe concurrently with each other and with node construction.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bdd/sifting.h"
#include "core/sync.h"

namespace ftsynth {

/// A BDD manager owning every node it creates. References (BddRef) stay
/// valid for the manager's lifetime -- across level swaps and sifting too --
/// except that collect_garbage() reclaims nodes unreachable from its root
/// set; functions from different managers must not be mixed.
class Bdd {
 public:
  using Ref = std::uint32_t;

  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  Bdd();
  ~Bdd();
  Bdd(Bdd&&) noexcept;
  Bdd& operator=(Bdd&&) noexcept;
  Bdd(const Bdd&) = delete;
  Bdd& operator=(const Bdd&) = delete;

  /// Declares a fresh variable; variables are ordered by declaration.
  int new_var();

  int var_count() const noexcept { return var_count_; }

  /// Installs an explicit variable order: `order[k]` is the variable at
  /// level k (level 0 = root). Must be a permutation of every declared
  /// variable, and must be installed before any node is built -- use sift()
  /// or swap_adjacent_levels() to reorder an existing diagram.
  void set_order(const std::vector<int>& order);

  /// The level of a declared variable under the current order (identity
  /// when no explicit order is installed). Smaller = closer to the root.
  int level_of(int v) const;
  /// The variable at `level` -- the inverse of level_of().
  int var_at_level(int level) const;
  /// The current order as a variable list, root level first.
  std::vector<int> current_order() const { return var_at_level_; }

  /// The function "variable v" / "NOT variable v".
  Ref var(int v);
  Ref nvar(int v);

  Ref apply_not(Ref a);
  Ref apply_and(Ref a, Ref b);
  Ref apply_or(Ref a, Ref b);
  Ref apply_xor(Ref a, Ref b);

  /// If-then-else: f ? g : h.
  Ref ite(Ref f, Ref g, Ref h);

  bool is_true(Ref a) const noexcept { return a == kTrue; }
  bool is_false(Ref a) const noexcept { return a == kFalse; }

  /// Number of distinct nodes in the subgraph of `a` (terminals excluded).
  std::size_t node_count(Ref a) const;

  /// Total node slots allocated by this manager (live + reclaimable).
  std::size_t size() const noexcept {
    return tables_->next_slot.load(std::memory_order_relaxed);
  }

  /// Live unique-table entries (every allocated node that has not been
  /// garbage collected).
  std::size_t table_size() const noexcept {
    return tables_->unique_count.load(std::memory_order_relaxed);
  }

  /// Evaluates under a full assignment (indexed by variable).
  bool evaluate(Ref a, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all declared variables.
  double sat_count(Ref a) const;

  // Structural access (used by probability / cut-set extraction).
  struct Node {
    int var;   ///< decision variable; terminals use a sentinel
    Ref low;   ///< cofactor with var = false
    Ref high;  ///< cofactor with var = true
  };
  /// The node behind `a`. The returned reference stays valid while other
  /// threads allocate: arena blocks never move or shrink.
  const Node& node(Ref a) const noexcept {
    const std::size_t block = block_index(a);
    return tables_->blocks[block].load(std::memory_order_acquire)
        [a - block_start(block)];
  }
  bool is_terminal(Ref a) const noexcept { return a <= kTrue; }

  // -- Dynamic reordering ------------------------------------------------------
  //
  // The Rudell machinery (see bdd/sifting.h for the schedule). A swap
  // rewrites every node of `level` that depends on the variable below it
  // IN PLACE -- external refs keep their meaning -- and invalidates the
  // operation cache. Never call it while an operation is on the stack, and
  // note that memoised traversals keyed by levels (sat_count weights,
  // bdd_prob memos) must be recomputed after any swap.

  /// Exchanges the variables at `level` and `level + 1`.
  void swap_adjacent_levels(int level);

  /// Nodes currently recorded on `level` (exact right after
  /// collect_garbage(); may include not-yet-collected garbage otherwise).
  std::size_t level_width(int level) const;

  /// Reclaims every node unreachable from `roots` (terminals always
  /// survive): slots go to a free list for reuse, their unique-table
  /// entries disappear, and the operation cache is dropped. Refs to
  /// reclaimed nodes become invalid -- pass every ref you still hold.
  void collect_garbage(const std::vector<Ref>& roots);

  /// Nodes reachable from `roots` (terminals excluded): the live size the
  /// sifting driver minimises.
  std::size_t live_size(const std::vector<Ref>& roots) const;

  /// Runs Rudell sifting over the whole order (bdd/sifting.h). `roots`
  /// must list every externally held ref.
  SiftStats sift(const std::vector<Ref>& roots,
                 const SiftOptions& options = {});

 private:
  Ref make(int var, Ref low, Ref high);

  enum class Op : std::uint8_t { kAnd, kOr, kXor, kNot };

  struct UniqueKey {
    int var;
    Ref low;
    Ref high;
    friend bool operator==(const UniqueKey& a, const UniqueKey& b) noexcept {
      return a.var == b.var && a.low == b.low && a.high == b.high;
    }
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 1000003u ^ k.low;
      h = h * 1000003u ^ k.high;
      return h;
    }
  };
  struct OpKey {
    Op op;
    Ref a;
    Ref b;
    friend bool operator==(const OpKey& x, const OpKey& y) noexcept {
      return x.op == y.op && x.a == y.a && x.b == y.b;
    }
  };
  struct OpHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      return h;
    }
  };

  Ref apply(Op op, Ref a, Ref b);

  /// Level of a node's decision variable; terminals sort below everything.
  int node_level(Ref a) const noexcept;

  /// "No cached result" sentinel; never a valid Ref.
  static constexpr Ref kNoEntry = 0xFFFFFFFFu;

  // Segmented node arena (same layout as Zbdd's): block k holds
  // 2^(kBlockBits + k) slots, published once and never moved.
  static constexpr unsigned kBlockBits = 12;
  static constexpr std::size_t kMaxBlocks = 21;
  static constexpr unsigned kShardBits = 6;  ///< 64-way striping
  static constexpr std::size_t kShardCount = std::size_t{1} << kShardBits;

  static std::size_t block_index(Ref a) noexcept {
    return static_cast<std::size_t>(
               std::bit_width((static_cast<std::uint32_t>(a) >> kBlockBits) +
                              1u)) -
           1;
  }
  static std::size_t block_start(std::size_t block) noexcept {
    return ((std::size_t{1} << block) - 1) << kBlockBits;
  }
  static std::size_t block_capacity(std::size_t block) noexcept {
    return std::size_t{1} << (kBlockBits + block);
  }

  struct alignas(kCacheLineSize) UniqueShard {
    std::mutex mutex;
    std::unordered_map<UniqueKey, Ref, UniqueHash> map;
  };
  struct alignas(kCacheLineSize) OpShard {
    std::mutex mutex;
    std::unordered_map<OpKey, Ref, OpHash> map;
  };

  /// Everything touched from concurrent workers; heap-held behind a
  /// unique_ptr so the manager stays movable (mutexes and atomics are
  /// not) and so shard padding does not bloat the by-value object.
  struct Tables {
    std::array<std::atomic<Node*>, kMaxBlocks> blocks{};
    std::mutex grow_mutex;                   ///< guards block creation
    PaddedAtomic<std::size_t> next_slot;     ///< allocation high-water mark
    PaddedAtomic<std::size_t> unique_count;  ///< live unique-table entries
    PaddedAtomic<std::size_t> free_count;    ///< |free| mirror: lock-free peek
    /// make() outside a swap no longer maintains var_refs_ (that would
    /// serialise workers on per-variable lists); it raises this flag and
    /// the structural phases rebuild the lists from an arena scan.
    std::atomic<bool> var_refs_stale{false};
    std::mutex free_mutex;
    std::vector<Ref> free;  ///< collected slots awaiting reuse
    std::array<UniqueShard, kShardCount> unique;
    std::array<OpShard, kShardCount> cache;

    ~Tables() {
      for (std::atomic<Node*>& block : blocks)
        delete[] block.load(std::memory_order_relaxed);
    }
  };

  Node& node_mut(Ref a) noexcept {
    const std::size_t block = block_index(a);
    return tables_->blocks[block].load(std::memory_order_relaxed)
        [a - block_start(block)];
  }
  UniqueShard& unique_shard(const UniqueKey& key) const noexcept {
    return tables_->unique[shard_index(UniqueHash{}(key), kShardBits)];
  }
  OpShard& op_shard(const OpKey& key) const noexcept {
    return tables_->cache[shard_index(OpHash{}(key), kShardBits)];
  }
  Ref cache_get(const OpKey& key) const;
  void cache_put(const OpKey& key, Ref result);
  void clear_op_cache();
  void ensure_block(std::size_t block);
  Ref allocate_slot();
  void rebuild_var_refs();

  std::unique_ptr<Tables> tables_;
  std::vector<int> level_of_;      ///< level_of_[var]; identity by default
  std::vector<int> var_at_level_;  ///< inverse of level_of_
  /// Every allocated (not yet collected) ref whose node decides this
  /// variable -- the swap primitive's per-level worklist. Maintained only
  /// inside the single-threaded structural phases; rebuilt on demand when
  /// concurrent allocation marked it stale.
  std::vector<std::vector<Ref>> var_refs_;
  int var_count_ = 0;
  bool in_swap_ = false;  ///< swap rewrite in progress
};

}  // namespace ftsynth
