// Zero-suppressed Binary Decision Diagrams over families of sets.
//
// The cut-set analysis the paper delegates to Fault Tree Plus is, on
// modern model-based safety platforms, a decision-diagram problem: a
// family of minimal cut sets is a set of sets of basic events, and ZBDDs
// (Minato's zero-suppressed variant) represent such families canonically
// with sharing, so union (OR gates), pairwise-union product (AND gates)
// and Rauzy-style minimisation run in time polynomial in the diagram size
// instead of the family size. This manager is the symbolic core of the
// `zbdd` cut-set engine in analysis/cutsets.*.
//
// Representation: a node <v, high, low> denotes the family
//
//   high-with-v-added  UNION  low,
//
// i.e. the high branch holds the sets that contain variable v (with v
// stripped), the low branch the sets that do not. Terminal kEmpty is the
// empty family {}; terminal kBase is {{}}, the family holding only the
// empty set. The zero-suppression rule (high == kEmpty collapses to low)
// plus the unique table make the representation canonical for a fixed
// variable order; variables are ordered by declaration (callers declare
// them in the shared depth-first-occurrence heuristic order, see
// analysis/ordering.h).

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/budget.h"

namespace ftsynth {

/// A ZBDD manager owning every node it creates. References stay valid for
/// the manager's lifetime; refs from different managers must not be mixed.
class Zbdd {
 public:
  using Ref = std::uint32_t;

  static constexpr Ref kEmpty = 0;  ///< the empty family: no sets at all
  static constexpr Ref kBase = 1;   ///< {{}}: only the empty set

  Zbdd();

  /// Declares a fresh variable; variables are ordered by declaration
  /// (earlier declaration = closer to the root).
  int new_var();
  int var_count() const noexcept { return var_count_; }

  /// The family {{v}}: one set holding just the variable.
  Ref single(int v);

  /// Family union / intersection (sets compared as sets).
  Ref set_union(Ref a, Ref b);
  Ref set_intersection(Ref a, Ref b);

  /// {s UNION t : s in a, t in b} -- the cut-set semantics of an AND gate.
  Ref product(Ref a, Ref b);

  /// Drops from `a` every set that is a superset of (or equal to) some set
  /// in `b` -- Rauzy's `without` subsumption operator.
  Ref without(Ref a, Ref b);

  /// The minimal sets of `a` (Rauzy's minsol): drops every set that is a
  /// strict superset of another member.
  Ref minimal(Ref a);

  /// Number of sets in the family (exact while it fits a double).
  double set_count(Ref a) const;

  /// Distinct internal nodes in the subgraph of `a` (terminals excluded).
  std::size_t node_count(Ref a) const;

  /// Total nodes allocated by this manager.
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Visits every set of the family, each as an ascending vector of
  /// variables. Return false from the callback to stop the enumeration.
  void for_each_set(
      Ref a, const std::function<bool(const std::vector<int>&)>& visit) const;

  // Structural access (cut-set extraction walks the diagram directly).
  struct Node {
    int var;   ///< decision variable; terminals use a sentinel
    Ref low;   ///< sets without var
    Ref high;  ///< sets with var (var itself stripped)
  };
  const Node& node(Ref a) const { return nodes_[a]; }
  bool is_terminal(Ref a) const noexcept { return a <= kBase; }

  // -- Resource guards ---------------------------------------------------------
  //
  // ZBDD operations are worst-case exponential on adversarial inputs, so
  // the same degrade-don't-run-away contract as the set-based engines
  // applies: when the (not owned) budget's deadline expires or the node
  // ceiling is hit mid-operation, the operation throws Interrupt. The
  // manager stays consistent -- already-built nodes remain valid -- so the
  // caller can still report a flagged partial result.

  struct Interrupt {
    bool deadline_exceeded;  ///< false: the node ceiling fired instead
  };

  /// Polled (amortised) on every node allocation. Null disables the check.
  void set_budget(Budget* budget) noexcept { budget_ = budget; }
  /// Node ceiling (0 = unlimited).
  void set_node_limit(std::size_t limit) noexcept { node_limit_ = limit; }

 private:
  enum class Op : std::uint8_t {
    kUnion,
    kIntersection,
    kProduct,
    kWithout,
    kMinimal
  };

  Ref make(int var, Ref low, Ref high);

  struct UniqueKey {
    int var;
    Ref low;
    Ref high;
    friend bool operator==(const UniqueKey& a, const UniqueKey& b) noexcept {
      return a.var == b.var && a.low == b.low && a.high == b.high;
    }
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 1000003u ^ k.low;
      h = h * 1000003u ^ k.high;
      return h;
    }
  };
  struct OpKey {
    Op op;
    Ref a;
    Ref b;
    friend bool operator==(const OpKey& x, const OpKey& y) noexcept {
      return x.op == y.op && x.a == y.a && x.b == y.b;
    }
  };
  struct OpHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      return h;
    }
  };

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, Ref, UniqueHash> unique_;
  std::unordered_map<OpKey, Ref, OpHash> cache_;
  int var_count_ = 0;
  Budget* budget_ = nullptr;      ///< not owned
  std::size_t node_limit_ = 0;
};

}  // namespace ftsynth
