// Zero-suppressed Binary Decision Diagrams over families of sets.
//
// The cut-set analysis the paper delegates to Fault Tree Plus is, on
// modern model-based safety platforms, a decision-diagram problem: a
// family of minimal cut sets is a set of sets of basic events, and ZBDDs
// (Minato's zero-suppressed variant) represent such families canonically
// with sharing, so union (OR gates), pairwise-union product (AND gates)
// and Rauzy-style minimisation run in time polynomial in the diagram size
// instead of the family size. This manager is the symbolic core of the
// `zbdd` cut-set engine in analysis/cutsets.*.
//
// Representation: a node <v, high, low> denotes the family
//
//   high-with-v-added  UNION  low,
//
// i.e. the high branch holds the sets that contain variable v (with v
// stripped), the low branch the sets that do not. Terminal kEmpty is the
// empty family {}; terminal kBase is {{}}, the family holding only the
// empty set. The zero-suppression rule (high == kEmpty collapses to low)
// plus the unique table make the representation canonical for a fixed
// variable order.
//
// Ordering is a per-variable LEVEL, not the variable index: variables
// start in declaration order (callers declare them in the shared
// depth-first-occurrence heuristic order, see analysis/ordering.h), and
// the order may then change dynamically -- swap_adjacent_levels() is the
// in-place Rudell primitive and sift() (bdd/sifting.h) the full reorder.
// A swap rewrites the nodes of one level in place, so every Ref keeps
// denoting the same family across reorders; only garbage collection
// (collect_garbage) invalidates refs, and only those unreachable from the
// roots the caller passes.
//
// -- Thread safety ------------------------------------------------------------
//
// Node construction and the family operations (single / set_union /
// set_intersection / product / without / minimal) may be called from many
// threads concurrently: the unique table and the operation cache are
// split into cache-line-padded, striped-lock shards addressed by key
// hash, and nodes live in a segmented arena whose blocks never move, so
// node(ref) stays valid while other workers allocate. Canonicity is
// preserved under contention -- allocation happens under the owning
// unique shard's lock, so one key maps to exactly one node no matter how
// calls interleave (racing recomputations of the same operation re-find
// the same nodes and create nothing new).
//
// The STRUCTURAL phases stay single-threaded by contract: callers of
// swap_adjacent_levels / collect_garbage / sift / set_order must hold all
// workers parked (the conversion engine uses a stop-the-world rendezvous,
// see analysis/cutsets.cpp). The read-only walks (set_count, node_count,
// for_each_set, level queries) are safe concurrently with each other and
// with node construction, but not with the structural phases.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bdd/sifting.h"
#include "core/budget.h"
#include "core/sync.h"

namespace ftsynth {

/// A ZBDD manager owning every node it creates. References stay valid for
/// the manager's lifetime -- across level swaps and sifting too -- except
/// that collect_garbage() reclaims nodes unreachable from its root set;
/// refs from different managers must not be mixed.
class Zbdd {
 public:
  using Ref = std::uint32_t;

  static constexpr Ref kEmpty = 0;  ///< the empty family: no sets at all
  static constexpr Ref kBase = 1;   ///< {{}}: only the empty set

  Zbdd();
  ~Zbdd();
  Zbdd(Zbdd&&) noexcept;
  Zbdd& operator=(Zbdd&&) noexcept;
  Zbdd(const Zbdd&) = delete;
  Zbdd& operator=(const Zbdd&) = delete;

  /// Declares a fresh variable; the initial order is declaration order
  /// (earlier declaration = closer to the root) until set_order() or a
  /// reorder changes it.
  int new_var();
  int var_count() const noexcept { return var_count_; }

  /// Installs an explicit variable order: `order[k]` is the variable at
  /// level k (level 0 = root). Must be a permutation of every declared
  /// variable and must run before any node is built; use sift() /
  /// swap_adjacent_levels() to reorder an existing diagram.
  void set_order(const std::vector<int>& order);

  /// The level of a declared variable under the current order (smaller =
  /// closer to the root).
  int level_of(int v) const;
  /// The variable at `level` -- the inverse of level_of().
  int var_at_level(int level) const;
  /// The current order as a variable list, root level first.
  std::vector<int> current_order() const { return var_at_level_; }

  /// The family {{v}}: one set holding just the variable.
  Ref single(int v);

  /// Family union / intersection (sets compared as sets).
  Ref set_union(Ref a, Ref b);
  Ref set_intersection(Ref a, Ref b);

  /// {s UNION t : s in a, t in b} -- the cut-set semantics of an AND gate.
  Ref product(Ref a, Ref b);

  /// Drops from `a` every set that is a superset of (or equal to) some set
  /// in `b` -- Rauzy's `without` subsumption operator.
  Ref without(Ref a, Ref b);

  /// The minimal sets of `a` (Rauzy's minsol): drops every set that is a
  /// strict superset of another member.
  Ref minimal(Ref a);

  /// Number of sets in the family (exact while it fits a double).
  double set_count(Ref a) const;

  /// Distinct internal nodes in the subgraph of `a` (terminals excluded).
  std::size_t node_count(Ref a) const;

  /// Total node slots allocated by this manager (live + reclaimable).
  std::size_t size() const noexcept {
    return tables_->next_slot.load(std::memory_order_relaxed);
  }

  /// Live unique-table entries (every allocated node that has not been
  /// garbage collected). The unique-table-pressure metric.
  std::size_t table_size() const noexcept {
    return tables_->unique_count.load(std::memory_order_relaxed);
  }

  /// Visits every set of the family, each as a vector of variables in
  /// diagram (level) order -- ascending variable index only while the
  /// order is the declaration order. Return false to stop the enumeration.
  void for_each_set(
      Ref a, const std::function<bool(const std::vector<int>&)>& visit) const;

  // Structural access (cut-set extraction walks the diagram directly).
  struct Node {
    int var;   ///< decision variable; terminals use a sentinel
    Ref low;   ///< sets without var
    Ref high;  ///< sets with var (var itself stripped)
  };
  /// The node behind `a`. The returned reference stays valid while other
  /// threads allocate: arena blocks never move or shrink.
  const Node& node(Ref a) const noexcept {
    const std::size_t block = block_index(a);
    return tables_->blocks[block].load(std::memory_order_acquire)
        [a - block_start(block)];
  }
  bool is_terminal(Ref a) const noexcept { return a <= kBase; }

  // -- Dynamic reordering ------------------------------------------------------
  //
  // The Rudell machinery (see bdd/sifting.h for the schedule). A swap
  // rewrites every node of `level` that depends on the variable below it
  // IN PLACE -- external refs keep their meaning -- and invalidates the
  // operation cache. Never call it while an operation is on the stack,
  // and never while any other thread touches the manager.

  /// Exchanges the variables at `level` and `level + 1`.
  void swap_adjacent_levels(int level);

  /// Nodes currently recorded on `level` (exact right after
  /// collect_garbage(); may include not-yet-collected garbage otherwise).
  std::size_t level_width(int level) const;

  /// Reclaims every node unreachable from `roots` (terminals always
  /// survive): slots go to a free list for reuse, their unique-table
  /// entries disappear, and the operation cache is dropped. Refs to
  /// reclaimed nodes become invalid -- pass every ref you still hold.
  void collect_garbage(const std::vector<Ref>& roots);

  /// Nodes reachable from `roots` (terminals excluded): the live size the
  /// sifting driver minimises.
  std::size_t live_size(const std::vector<Ref>& roots) const;

  /// Runs Rudell sifting over the whole order (bdd/sifting.h). `roots`
  /// must list every externally held ref. Clears any pending reorder
  /// request and rearms the pressure threshold above the new live size.
  SiftStats sift(const std::vector<Ref>& roots,
                 const SiftOptions& options = {});

  /// Arms (or disarms) the unique-table pressure trigger: once the table
  /// outgrows `threshold` entries (0 = the built-in default), make() flags
  /// a pending reorder that the OWNER of the diagram honours at its next
  /// safe point via maybe_reorder(). make() itself never reorders --
  /// operations hold node copies on the stack that a swap would bypass.
  void set_auto_reorder(bool on, std::size_t threshold = 0);
  bool reorder_pending() const noexcept {
    return tables_->reorder_pending.load(std::memory_order_relaxed);
  }

  /// sift() if a pressure-triggered reorder is pending, else nothing.
  std::optional<SiftStats> maybe_reorder(const std::vector<Ref>& roots,
                                         const SiftOptions& options = {});

  // -- Resource guards ---------------------------------------------------------
  //
  // ZBDD operations are worst-case exponential on adversarial inputs, so
  // the same degrade-don't-run-away contract as the set-based engines
  // applies: when the (not owned) budget's deadline expires or the node
  // ceiling is hit mid-operation, the operation throws Interrupt. The
  // manager stays consistent -- already-built nodes remain valid -- so the
  // caller can still report a flagged partial result. Swaps suppress both
  // checks (a half-swapped level would not be a valid diagram); the
  // sifting driver polls the budget between swaps instead.

  struct Interrupt {
    bool deadline_exceeded;  ///< false: the node ceiling fired instead
  };

  /// Polled (amortised) on every node allocation. Null disables the check.
  void set_budget(Budget* budget) noexcept { budget_ = budget; }
  /// Node ceiling (0 = unlimited). Concurrent workers check it against a
  /// relaxed live count, so the ceiling can overshoot by a handful of
  /// racing allocations -- it is a resource guard, not an exact quota.
  void set_node_limit(std::size_t limit) noexcept { node_limit_ = limit; }

 private:
  enum class Op : std::uint8_t {
    kUnion,
    kIntersection,
    kProduct,
    kWithout,
    kMinimal
  };

  Ref make(int var, Ref low, Ref high);

  /// Level of a node's decision variable; terminals sort below everything.
  int node_level(Ref a) const noexcept;
  int var_level(int var) const noexcept;

  struct UniqueKey {
    int var;
    Ref low;
    Ref high;
    friend bool operator==(const UniqueKey& a, const UniqueKey& b) noexcept {
      return a.var == b.var && a.low == b.low && a.high == b.high;
    }
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 1000003u ^ k.low;
      h = h * 1000003u ^ k.high;
      return h;
    }
  };
  struct OpKey {
    Op op;
    Ref a;
    Ref b;
    friend bool operator==(const OpKey& x, const OpKey& y) noexcept {
      return x.op == y.op && x.a == y.a && x.b == y.b;
    }
  };
  struct OpHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      return h;
    }
  };

  static constexpr std::size_t kDefaultReorderThreshold = 4096;
  /// "No cached result" sentinel; never a valid Ref (the arena caps out
  /// one below it).
  static constexpr Ref kNoEntry = 0xFFFFFFFFu;

  // Segmented node arena: block k holds 2^(kBlockBits + k) slots, so ~20
  // blocks cover the whole 32-bit ref space while refs stay dense. Blocks
  // are published once with a release store and never move, which is what
  // lets node(ref) run without a lock while other workers allocate.
  static constexpr unsigned kBlockBits = 12;
  static constexpr std::size_t kMaxBlocks = 21;
  static constexpr unsigned kShardBits = 6;  ///< 64-way striping
  static constexpr std::size_t kShardCount = std::size_t{1} << kShardBits;

  static std::size_t block_index(Ref a) noexcept {
    return static_cast<std::size_t>(
               std::bit_width((static_cast<std::uint32_t>(a) >> kBlockBits) +
                              1u)) -
           1;
  }
  static std::size_t block_start(std::size_t block) noexcept {
    return ((std::size_t{1} << block) - 1) << kBlockBits;
  }
  static std::size_t block_capacity(std::size_t block) noexcept {
    return std::size_t{1} << (kBlockBits + block);
  }

  struct alignas(kCacheLineSize) UniqueShard {
    std::mutex mutex;
    std::unordered_map<UniqueKey, Ref, UniqueHash> map;
  };
  struct alignas(kCacheLineSize) OpShard {
    std::mutex mutex;
    std::unordered_map<OpKey, Ref, OpHash> map;
  };

  /// Everything touched from concurrent workers. Heap-held behind a
  /// unique_ptr so the manager stays movable (mutexes and atomics are
  /// not) and so shard padding does not bloat the by-value object.
  struct Tables {
    std::array<std::atomic<Node*>, kMaxBlocks> blocks{};
    std::mutex grow_mutex;                   ///< guards block creation
    PaddedAtomic<std::size_t> next_slot;     ///< allocation high-water mark
    PaddedAtomic<std::size_t> unique_count;  ///< live unique-table entries
    PaddedAtomic<std::size_t> free_count;    ///< |free| mirror: lock-free peek
    std::atomic<bool> reorder_pending{false};
    /// make() outside a swap no longer maintains var_refs_ (that would
    /// serialise workers on per-variable lists); it raises this flag and
    /// the structural phases rebuild the lists from an arena scan.
    std::atomic<bool> var_refs_stale{false};
    std::mutex free_mutex;
    std::vector<Ref> free;  ///< collected slots awaiting reuse
    std::array<UniqueShard, kShardCount> unique;
    std::array<OpShard, kShardCount> cache;

    ~Tables() {
      for (std::atomic<Node*>& block : blocks)
        delete[] block.load(std::memory_order_relaxed);
    }
  };

  Node& node_mut(Ref a) noexcept {
    const std::size_t block = block_index(a);
    return tables_->blocks[block].load(std::memory_order_relaxed)
        [a - block_start(block)];
  }
  UniqueShard& unique_shard(const UniqueKey& key) const noexcept {
    return tables_->unique[shard_index(UniqueHash{}(key), kShardBits)];
  }
  OpShard& op_shard(const OpKey& key) const noexcept {
    return tables_->cache[shard_index(OpHash{}(key), kShardBits)];
  }
  Ref cache_get(const OpKey& key) const;
  void cache_put(const OpKey& key, Ref result);
  void clear_op_cache();
  void ensure_block(std::size_t block);
  Ref allocate_slot();
  std::size_t live_slot_estimate() const noexcept {
    const std::size_t allocated =
        tables_->next_slot.load(std::memory_order_relaxed);
    const std::size_t freed =
        tables_->free_count.load(std::memory_order_relaxed);
    return allocated > freed ? allocated - freed : 0;
  }
  void rebuild_var_refs();

  std::unique_ptr<Tables> tables_;
  std::vector<int> level_of_;      ///< level_of_[var]; declaration order start
  std::vector<int> var_at_level_;  ///< inverse of level_of_
  /// Every allocated (not yet collected) ref whose node decides this
  /// variable -- the swap primitive's per-level worklist. Maintained only
  /// inside the single-threaded structural phases; rebuilt on demand when
  /// concurrent allocation marked it stale.
  std::vector<std::vector<Ref>> var_refs_;
  int var_count_ = 0;
  Budget* budget_ = nullptr;       ///< not owned
  std::size_t node_limit_ = 0;
  bool in_swap_ = false;           ///< swap rewrite in progress: no interrupts
  bool auto_reorder_ = false;
  std::size_t reorder_threshold_ = kDefaultReorderThreshold;
};

}  // namespace ftsynth
