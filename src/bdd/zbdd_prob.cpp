#include "bdd/zbdd_prob.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "core/error.h"

namespace ftsynth {

namespace {

// Saturating "set size" arithmetic: the empty family has no smallest set,
// which the recurrences model as an infinite order.
constexpr std::size_t kInfOrder = static_cast<std::size_t>(-1) / 2;

std::size_t add_order(std::size_t a, std::size_t b) {
  return a >= kInfOrder || b >= kInfOrder ? kInfOrder : a + b;
}

// Reachable internal nodes of `root` in postorder (low subgraph first),
// plus a Ref -> postorder-index map. Iterative (explicit frame stack) so
// adversarially deep diagrams cannot overflow the call stack. The visit
// order depends only on diagram structure, never on Ref numbering, which
// keeps every downstream floating-point summation bit-identical across
// runs and cache states (a warm rebuild allocates different Refs for the
// same canonical diagram).
bool postorder_nodes(const Zbdd& zbdd, Zbdd::Ref root, Budget& budget,
                     std::vector<Zbdd::Ref>* order,
                     std::unordered_map<Zbdd::Ref, std::uint32_t>* index) {
  if (zbdd.is_terminal(root)) return true;
  struct Frame {
    Zbdd::Ref ref;
    int stage;  // 0 = visit low, 1 = visit high, 2 = emit
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  while (!stack.empty()) {
    if (budget.poll()) return false;
    Frame& frame = stack.back();
    if (frame.stage == 2) {
      if (index->find(frame.ref) == index->end()) {
        index->emplace(frame.ref, static_cast<std::uint32_t>(order->size()));
        order->push_back(frame.ref);
      }
      stack.pop_back();
      continue;
    }
    const Zbdd::Node& n = zbdd.node(frame.ref);
    const Zbdd::Ref child = frame.stage == 0 ? n.low : n.high;
    ++frame.stage;
    if (!zbdd.is_terminal(child) && index->find(child) == index->end())
      stack.push_back({child, 0});
  }
  return true;
}

// One upward mass sweep under an arbitrary per-variable weight vector:
// out[i] = sum over sets s in family(order[i]) of prod_{v in s} weight[v].
// `out` must be sized to order.size(); terminals contribute 0 / 1 inline.
void mass_sweep(const Zbdd& zbdd, const std::vector<Zbdd::Ref>& order,
                const std::unordered_map<Zbdd::Ref, std::uint32_t>& index,
                const std::vector<double>& weight, std::vector<double>* out) {
  auto value = [&](Zbdd::Ref ref) -> double {
    if (ref == Zbdd::kEmpty) return 0.0;
    if (ref == Zbdd::kBase) return 1.0;
    return (*out)[index.at(ref)];
  };
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Zbdd::Node& n = zbdd.node(order[i]);
    (*out)[i] = value(n.low) +
                weight[static_cast<std::size_t>(n.var)] * value(n.high);
  }
}

}  // namespace

ZbddMeasures zbdd_measures(const Zbdd& zbdd, Zbdd::Ref root,
                           const std::vector<double>& probabilities,
                           Budget budget) {
  ZbddMeasures m;
  m.var_mass.assign(probabilities.size(), 0.0);
  m.var_count.assign(probabilities.size(), 0.0);
  m.var_min_order.assign(probabilities.size(), 0);

  if (root == Zbdd::kEmpty) {
    // No sets: every measure is its identity.
    m.complete = true;
    m.esary_converged = true;
    m.mcub_converged = true;
    return m;
  }
  if (root == Zbdd::kBase) {
    // Only the empty set, whose product over literals is 1: the top event
    // is certain and no variable participates.
    m.complete = true;
    m.set_count = 1.0;
    m.total_mass = 1.0;
    m.esary_proschan = 1.0;
    m.esary_converged = true;
    m.mcub = 1.0;
    m.mcub_converged = true;
    return m;
  }

  std::vector<Zbdd::Ref> order;
  std::unordered_map<Zbdd::Ref, std::uint32_t> index;
  if (!postorder_nodes(zbdd, root, budget, &order, &index)) return m;
  const std::size_t count = order.size();
  const std::uint32_t root_index = index.at(root);

  for (const Zbdd::Ref ref : order) {
    const Zbdd::Node& n = zbdd.node(ref);
    check_internal(static_cast<std::size_t>(n.var) < probabilities.size(),
                   "probability vector too short for ZBDD");
  }

  // --- Upward sweeps: per-node family measures. ----------------------
  std::vector<double> mass(count), sets(count);
  std::vector<std::size_t> up_order(count);
  mass_sweep(zbdd, order, index, probabilities, &mass);
  if (budget.poll()) return m;
  {
    auto value = [&](Zbdd::Ref ref) -> double {
      if (ref == Zbdd::kEmpty) return 0.0;
      if (ref == Zbdd::kBase) return 1.0;
      return sets[index.at(ref)];
    };
    auto ord = [&](Zbdd::Ref ref) -> std::size_t {
      if (ref == Zbdd::kEmpty) return kInfOrder;
      if (ref == Zbdd::kBase) return 0;
      return up_order[index.at(ref)];
    };
    for (std::size_t i = 0; i < count; ++i) {
      const Zbdd::Node& n = zbdd.node(order[i]);
      sets[i] = value(n.low) + value(n.high);
      up_order[i] = std::min(ord(n.low), add_order(1, ord(n.high)));
    }
  }
  if (budget.poll()) return m;

  // --- Downward sweeps: reachability splits per variable. -------------
  // reach_mass[i] = sum over root paths to node i of the product of p_v
  // over the variables taken on HIGH edges (low edges contribute factor 1:
  // a ZBDD low branch asserts nothing about its variable); reach_sets
  // counts those paths; reach_order is the fewest HIGH edges on any such
  // path. Reverse postorder is a topological order (parents first), so
  // each node's value is final before it propagates.
  std::vector<double> reach_mass(count, 0.0), reach_sets(count, 0.0);
  std::vector<std::size_t> reach_order(count, kInfOrder);
  reach_mass[root_index] = 1.0;
  reach_sets[root_index] = 1.0;
  reach_order[root_index] = 0;
  auto mass_of = [&](Zbdd::Ref ref) -> double {
    if (ref == Zbdd::kEmpty) return 0.0;
    if (ref == Zbdd::kBase) return 1.0;
    return mass[index.at(ref)];
  };
  auto sets_of = [&](Zbdd::Ref ref) -> double {
    if (ref == Zbdd::kEmpty) return 0.0;
    if (ref == Zbdd::kBase) return 1.0;
    return sets[index.at(ref)];
  };
  auto order_of = [&](Zbdd::Ref ref) -> std::size_t {
    if (ref == Zbdd::kEmpty) return kInfOrder;
    if (ref == Zbdd::kBase) return 0;
    return up_order[index.at(ref)];
  };
  for (std::size_t i = count; i-- > 0;) {
    if (budget.poll()) return m;
    const Zbdd::Node& n = zbdd.node(order[i]);
    const std::size_t v = static_cast<std::size_t>(n.var);
    const double p = probabilities[v];
    if (!zbdd.is_terminal(n.low)) {
      const std::uint32_t low = index.at(n.low);
      reach_mass[low] += reach_mass[i];
      reach_sets[low] += reach_sets[i];
      reach_order[low] = std::min(reach_order[low], reach_order[i]);
    }
    if (!zbdd.is_terminal(n.high)) {
      const std::uint32_t high = index.at(n.high);
      reach_mass[high] += p * reach_mass[i];
      reach_sets[high] += reach_sets[i];
      reach_order[high] =
          std::min(reach_order[high], add_order(reach_order[i], 1));
    }
    // Every set through this node's HIGH edge contains v: reach * p_v *
    // (mass of the stripped tail) is exactly the mass of those sets.
    m.var_mass[v] += reach_mass[i] * p * mass_of(n.high);
    m.var_count[v] += reach_sets[i] * sets_of(n.high);
    const std::size_t via =
        add_order(reach_order[i], add_order(1, order_of(n.high)));
    if (via < kInfOrder) {
      std::size_t& slot = m.var_min_order[v];
      if (slot == 0 || via < slot) slot = via;
    }
  }

  m.set_count = sets[root_index];
  m.min_order = up_order[root_index] >= kInfOrder ? 0 : up_order[root_index];
  m.total_mass = mass[root_index];

  // --- Esary-Proschan via power sums. ---------------------------------
  //   log prod_s (1 - P(s)) = -sum_k (sum_s P(s)^k) / k
  // The k-th power sum is a mass sweep under the pointwise k-th power of
  // the probability vector, and decays at least as fast as q^k with
  // q = max_s P(s) < 1; terms stop mattering once M_k/k drops below the
  // accumulated sum's double-precision floor, and once the exponent
  // passes 45 the bound is 1 to the last bit (exp(-45) < 2^-64). A
  // probability-1 set (q == 1) never decays -- the exponent test catches
  // it. The pass cap is a safety net for q so close to 1 that thousands
  // of terms contribute; a capped-out sweep reports esary_converged =
  // false and the (slightly low) partial bound.
  {
    constexpr int kMaxTerms = 8192;
    std::vector<double> weight = probabilities;
    std::vector<double> moment(count);
    double exponent = 0.0;
    int k = 1;
    for (; k <= kMaxTerms; ++k) {
      if (k > 1) {
        for (std::size_t v = 0; v < weight.size(); ++v)
          weight[v] *= probabilities[v];
      }
      mass_sweep(zbdd, order, index, weight, &moment);
      if (budget.poll()) return m;
      const double term = moment[root_index] / k;
      exponent += term;
      if (exponent > 45.0 || term <= exponent * 1e-17) {
        m.esary_converged = true;
        break;
      }
    }
    m.esary_proschan = 1.0 - std::exp(-exponent);
    m.mcub = -std::expm1(-exponent);
    m.mcub_converged = m.esary_converged;
  }

  m.complete = true;
  return m;
}

}  // namespace ftsynth
