#include "bdd/zbdd.h"

#include <algorithm>
#include <climits>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

namespace {
constexpr int kTerminalVar = INT_MAX;
/// Marks freed (or never-constructed) arena slots so structural scans can
/// tell them from live nodes without consulting the free list.
constexpr int kFreeVar = -1;
}  // namespace

Zbdd::Zbdd() : tables_(std::make_unique<Tables>()) {
  ensure_block(0);
  node_mut(kEmpty) = {kTerminalVar, kEmpty, kEmpty};  // 0: {}
  node_mut(kBase) = {kTerminalVar, kBase, kBase};     // 1: {{}}
  tables_->next_slot.store(2);
}

Zbdd::~Zbdd() = default;
Zbdd::Zbdd(Zbdd&&) noexcept = default;
Zbdd& Zbdd::operator=(Zbdd&&) noexcept = default;

void Zbdd::ensure_block(std::size_t block) {
  check_internal(block < kMaxBlocks, "ZBDD node table overflow");
  if (tables_->blocks[block].load(std::memory_order_acquire) != nullptr)
    return;
  std::lock_guard<std::mutex> lock(tables_->grow_mutex);
  if (tables_->blocks[block].load(std::memory_order_relaxed) != nullptr)
    return;
  const std::size_t capacity = block_capacity(block);
  Node* storage = new Node[capacity];
  // Pre-mark every slot free: a slot becomes live only when make() writes
  // real fields, so scans never misread an unconstructed slot.
  for (std::size_t i = 0; i < capacity; ++i)
    storage[i] = {kFreeVar, kEmpty, kEmpty};
  tables_->blocks[block].store(storage, std::memory_order_release);
}

Zbdd::Ref Zbdd::allocate_slot() {
  if (tables_->free_count.load() != 0) {
    std::lock_guard<std::mutex> lock(tables_->free_mutex);
    if (!tables_->free.empty()) {
      const Ref ref = tables_->free.back();
      tables_->free.pop_back();
      tables_->free_count.store(tables_->free.size());
      return ref;
    }
  }
  const std::size_t slot = tables_->next_slot.value.fetch_add(
      1, std::memory_order_relaxed);
  check_internal(slot < kNoEntry, "ZBDD node table overflow");
  const Ref ref = static_cast<Ref>(slot);
  ensure_block(block_index(ref));
  return ref;
}

int Zbdd::new_var() {
  level_of_.push_back(var_count_);
  var_at_level_.push_back(var_count_);
  var_refs_.emplace_back();
  return var_count_++;
}

void Zbdd::set_order(const std::vector<int>& order) {
  check_internal(size() == 2, "ZBDD set_order requires an empty diagram");
  check_internal(order.size() == static_cast<std::size_t>(var_count_),
                 "ZBDD order must cover every variable");
  std::vector<bool> seen(static_cast<std::size_t>(var_count_), false);
  for (int v : order) {
    check_internal(v >= 0 && v < var_count_, "ZBDD order variable out of range");
    check_internal(!seen[static_cast<std::size_t>(v)],
                   "ZBDD order repeats a variable");
    seen[static_cast<std::size_t>(v)] = true;
  }
  var_at_level_ = order;
  for (int level = 0; level < var_count_; ++level)
    level_of_[static_cast<std::size_t>(order[static_cast<std::size_t>(level)])] =
        level;
}

int Zbdd::level_of(int v) const {
  check_internal(v >= 0 && v < var_count_, "ZBDD variable out of range");
  return level_of_[static_cast<std::size_t>(v)];
}

int Zbdd::var_at_level(int level) const {
  check_internal(level >= 0 && level < var_count_, "ZBDD level out of range");
  return var_at_level_[static_cast<std::size_t>(level)];
}

int Zbdd::var_level(int var) const noexcept {
  return var == kTerminalVar ? INT_MAX
                             : level_of_[static_cast<std::size_t>(var)];
}

int Zbdd::node_level(Ref a) const noexcept { return var_level(node(a).var); }

Zbdd::Ref Zbdd::cache_get(const OpKey& key) const {
  OpShard& shard = op_shard(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? kNoEntry : it->second;
}

void Zbdd::cache_put(const OpKey& key, Ref result) {
  OpShard& shard = op_shard(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.emplace(key, result);
}

void Zbdd::clear_op_cache() {
  for (OpShard& shard : tables_->cache) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

Zbdd::Ref Zbdd::make(int var, Ref low, Ref high) {
  if (high == kEmpty) return low;  // zero-suppression rule
  const UniqueKey key{var, low, high};
  UniqueShard& shard = unique_shard(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end())
      return it->second;
  }
  // A level swap rewrites nodes in place and must run to completion -- a
  // half-swapped level is not a valid diagram -- so interrupts are deferred
  // to the swap boundaries (the sifting driver polls there).
  if (!in_swap_) {
    if (budget_ != nullptr && budget_->poll()) throw Interrupt{true};
    if (node_limit_ != 0 && live_slot_estimate() >= node_limit_)
      throw Interrupt{false};
  }
  // Allocation happens under the owning shard's lock: one canonical node
  // per key no matter how concurrent make() calls interleave. The node's
  // fields are written before the shard lock is released, so any thread
  // that learns the ref -- through this map, an op-cache shard or a
  // conversion memo slot -- reads them across a happens-before edge.
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(key, kEmpty);
  if (!inserted) return it->second;  // lost an insert race after the peek
  Ref ref;
  try {
    ref = allocate_slot();
  } catch (...) {
    shard.map.erase(it);
    throw;
  }
  node_mut(ref) = {var, low, high};
  it->second = ref;
  const std::size_t entries = tables_->unique_count.value.fetch_add(
                                  1, std::memory_order_relaxed) +
                              1;
  if (in_swap_) {
    // Single-threaded rewrite: maintain the worklists directly.
    var_refs_[static_cast<std::size_t>(var)].push_back(ref);
  } else {
    tables_->var_refs_stale.store(true, std::memory_order_relaxed);
    if (auto_reorder_ && entries >= reorder_threshold_ &&
        !tables_->reorder_pending.load(std::memory_order_relaxed))
      tables_->reorder_pending.store(true, std::memory_order_relaxed);
  }
  return ref;
}

Zbdd::Ref Zbdd::single(int v) {
  check_internal(v >= 0 && v < var_count_, "ZBDD variable out of range");
  return make(v, kEmpty, kBase);
}

Zbdd::Ref Zbdd::set_union(Ref a, Ref b) {
  if (a == b) return a;
  if (a == kEmpty) return b;
  if (b == kEmpty) return a;
  if (a > b) std::swap(a, b);  // commutative: canonical cache key
  const OpKey key{Op::kUnion, a, b};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;
  // Copy: the arena entries themselves are stable, but holding a
  // reference across a recursion that may reuse freed slots is fragile.
  const Node na = node(a);
  const Node nb = node(b);
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    result = make(na.var, set_union(na.low, nb.low),
                  set_union(na.high, nb.high));
  } else if (la < lb) {
    // b (including a terminal, level = sentinel) has no sets with na.var.
    result = make(na.var, set_union(na.low, b), na.high);
  } else {
    result = make(nb.var, set_union(nb.low, a), nb.high);
  }
  cache_put(key, result);
  return result;
}

Zbdd::Ref Zbdd::set_intersection(Ref a, Ref b) {
  if (a == b) return a;
  if (a == kEmpty || b == kEmpty) return kEmpty;
  if (a > b) std::swap(a, b);
  const OpKey key{Op::kIntersection, a, b};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;
  const Node na = node(a);
  const Node nb = node(b);
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    result = make(na.var, set_intersection(na.low, nb.low),
                  set_intersection(na.high, nb.high));
  } else if (la < lb) {
    // Sets containing na.var cannot be in b; only a's low part survives.
    result = set_intersection(na.low, b);
  } else {
    result = set_intersection(nb.low, a);
  }
  cache_put(key, result);
  return result;
}

Zbdd::Ref Zbdd::product(Ref a, Ref b) {
  if (a == kEmpty || b == kEmpty) return kEmpty;
  if (a == kBase) return b;
  if (b == kBase) return a;
  if (a > b) std::swap(a, b);  // pairwise union is commutative
  const OpKey key{Op::kProduct, a, b};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;
  const Node na = node(a);
  const Node nb = node(b);
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    // Sets containing v: any pairing where at least one side contributes v.
    Ref high = set_union(product(na.high, nb.high),
                         set_union(product(na.high, nb.low),
                                   product(na.low, nb.high)));
    result = make(na.var, product(na.low, nb.low), high);
  } else {
    const Node& top = la < lb ? na : nb;
    const Ref other = la < lb ? b : a;
    result = make(top.var, product(top.low, other), product(top.high, other));
  }
  cache_put(key, result);
  return result;
}

Zbdd::Ref Zbdd::without(Ref a, Ref b) {
  if (a == kEmpty) return kEmpty;
  if (b == kEmpty) return a;
  if (b == kBase) return kEmpty;  // {} is a subset of every set
  if (a == b) return kEmpty;      // every set subsumes itself
  const OpKey key{Op::kWithout, a, b};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;
  const Node na = node(a);
  const Node nb = node(b);
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    // v+s of a.high is subsumed by t in b.low (t has no v, t <= s) or by
    // v+t of b.high (t <= s); a.low only by b.low.
    result = make(na.var, without(na.low, nb.low),
                  without(without(na.high, nb.low), nb.high));
  } else if (la < lb) {
    // No set of b mentions na.var: screen both branches against all of b.
    result = make(na.var, without(na.low, b), without(na.high, b));
  } else {
    // Sets of a (including kBase's {}) never contain nb.var, so only the
    // b-sets without it -- b.low -- can subsume them.
    result = without(a, nb.low);
  }
  cache_put(key, result);
  return result;
}

Zbdd::Ref Zbdd::minimal(Ref a) {
  if (is_terminal(a)) return a;
  const OpKey key{Op::kMinimal, a, 0};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;
  const Node n = node(a);
  // A set v+s (s in high) is non-minimal iff s' <= s for some s' already
  // minimal in high, or t <= s for some t in low (t has no v).
  Ref low = minimal(n.low);
  Ref high = without(minimal(n.high), low);
  Ref result = make(n.var, low, high);
  cache_put(key, result);
  return result;
}

double Zbdd::set_count(Ref a) const {
  std::unordered_map<Ref, double> memo;
  auto count = [&](auto&& self, Ref ref) -> double {
    if (ref == kEmpty) return 0.0;
    if (ref == kBase) return 1.0;
    if (auto it = memo.find(ref); it != memo.end()) return it->second;
    const Node& n = node(ref);
    double result = self(self, n.low) + self(self, n.high);
    memo.emplace(ref, result);
    return result;
  };
  return count(count, a);
}

std::size_t Zbdd::node_count(Ref a) const {
  if (is_terminal(a)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    if (is_terminal(ref) || !seen.insert(ref).second) continue;
    stack.push_back(node(ref).low);
    stack.push_back(node(ref).high);
  }
  return seen.size();
}

void Zbdd::for_each_set(
    Ref a, const std::function<bool(const std::vector<int>&)>& visit) const {
  std::vector<int> current;
  bool stopped = false;
  auto walk = [&](auto&& self, Ref ref) -> void {
    if (stopped || ref == kEmpty) return;
    if (ref == kBase) {
      if (!visit(current)) stopped = true;
      return;
    }
    const Node& n = node(ref);
    self(self, n.low);
    current.push_back(n.var);
    self(self, n.high);
    current.pop_back();
  };
  walk(walk, a);
}

void Zbdd::rebuild_var_refs() {
  for (auto& refs : var_refs_) refs.clear();
  const std::size_t limit = size();
  for (std::size_t block = 0; block < kMaxBlocks; ++block) {
    const Node* storage = tables_->blocks[block].load(std::memory_order_acquire);
    if (storage == nullptr) continue;
    const std::size_t start = block_start(block);
    if (start >= limit) break;
    const std::size_t end = std::min(limit, start + block_capacity(block));
    for (std::size_t slot = std::max<std::size_t>(start, 2); slot < end;
         ++slot) {
      const int var = storage[slot - start].var;
      if (var >= 0 && var < var_count_)
        var_refs_[static_cast<std::size_t>(var)].push_back(
            static_cast<Ref>(slot));
    }
  }
  tables_->var_refs_stale.store(false, std::memory_order_relaxed);
}

void Zbdd::swap_adjacent_levels(int level) {
  check_internal(level >= 0 && level + 1 < var_count_,
                 "ZBDD level swap out of range");
  if (tables_->var_refs_stale.load(std::memory_order_relaxed))
    rebuild_var_refs();
  const int v = var_at_level_[static_cast<std::size_t>(level)];
  const int w = var_at_level_[static_cast<std::size_t>(level + 1)];
  // Op-cache results bake in the old level comparisons.
  clear_op_cache();
  in_swap_ = true;
  // make(v, ...) below appends rebuilt cofactor nodes to var_refs_[v], so
  // move the worklist out first; v-nodes independent of w go back in at the
  // end (they simply ride down one level, their structure untouched).
  std::vector<Ref> worklist =
      std::move(var_refs_[static_cast<std::size_t>(v)]);
  var_refs_[static_cast<std::size_t>(v)].clear();
  std::vector<Ref> keep;
  // Splits a child family C by w: (sets without w, sets with w, w stripped).
  auto split = [&](Ref c, Ref& without_w, Ref& with_w) {
    const Node& n = node(c);
    if (!is_terminal(c) && n.var == w) {
      without_w = n.low;
      with_w = n.high;
    } else {
      without_w = c;
      with_w = kEmpty;
    }
  };
  for (Ref r : worklist) {
    const Node n = node(r);  // copy: make() rewrites slots in place
    Ref l0, l1, h0, h1;
    split(n.low, l0, l1);
    split(n.high, h0, h1);
    if (l1 == kEmpty && h1 == kEmpty) {
      // Independent of w: the node keeps its variable and structure.
      keep.push_back(r);
      continue;
    }
    // <v, L, H> = <w, <v, l0, h0>, <v, l1, h1>> once w is above v. The
    // rewrite is in place so every external ref to r keeps its meaning.
    {
      const UniqueKey old_key{n.var, n.low, n.high};
      UniqueShard& shard = unique_shard(old_key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.map.erase(old_key) != 0)
        tables_->unique_count.value.fetch_sub(1, std::memory_order_relaxed);
    }
    const Ref nlow = make(v, l0, h0);
    const Ref nhigh = make(v, l1, h1);
    // nhigh != kEmpty: l1/h1 are not both empty, so the node stays valid
    // under zero-suppression.
    node_mut(r) = {w, nlow, nhigh};
    bool inserted;
    {
      const UniqueKey new_key{w, nlow, nhigh};
      UniqueShard& shard = unique_shard(new_key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      inserted = shard.map.emplace(new_key, r).second;
    }
    if (inserted)
      tables_->unique_count.value.fetch_add(1, std::memory_order_relaxed);
    // Canonicity argument: distinct allocated nodes denote distinct
    // families, the rewrite preserves r's family, and every other
    // <w, ., .> node denotes some other family -- so no collision.
    check_internal(inserted, "ZBDD level swap produced a duplicate node");
    var_refs_[static_cast<std::size_t>(w)].push_back(r);
  }
  auto& v_refs = var_refs_[static_cast<std::size_t>(v)];
  v_refs.insert(v_refs.end(), keep.begin(), keep.end());
  std::swap(var_at_level_[static_cast<std::size_t>(level)],
            var_at_level_[static_cast<std::size_t>(level + 1)]);
  level_of_[static_cast<std::size_t>(v)] = level + 1;
  level_of_[static_cast<std::size_t>(w)] = level;
  in_swap_ = false;
}

std::size_t Zbdd::level_width(int level) const {
  check_internal(level >= 0 && level < var_count_, "ZBDD level out of range");
  return var_refs_[static_cast<std::size_t>(
                       var_at_level_[static_cast<std::size_t>(level)])]
      .size();
}

void Zbdd::collect_garbage(const std::vector<Ref>& roots) {
  clear_op_cache();  // cached results may reference nodes about to die
  const std::size_t limit = size();
  std::vector<bool> marked(limit, false);
  std::vector<Ref> stack;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
  }
  // Only entries still in the unique table are allocated; previously freed
  // slots are already on the free list and must not be pushed twice.
  std::vector<Ref> dead;
  for (UniqueShard& shard : tables_->unique) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (!marked[it->second]) {
        dead.push_back(it->second);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  tables_->unique_count.value.fetch_sub(dead.size(),
                                        std::memory_order_relaxed);
  std::sort(dead.begin(), dead.end());
  for (Ref r : dead) node_mut(r).var = kFreeVar;
  {
    std::lock_guard<std::mutex> lock(tables_->free_mutex);
    tables_->free.insert(tables_->free.end(), dead.begin(), dead.end());
    tables_->free_count.store(tables_->free.size());
  }
  for (auto& refs : var_refs_) refs.clear();
  for (std::size_t r = 2; r < limit; ++r)
    if (marked[r])
      var_refs_[static_cast<std::size_t>(node(static_cast<Ref>(r)).var)]
          .push_back(static_cast<Ref>(r));
  tables_->var_refs_stale.store(false, std::memory_order_relaxed);
}

std::size_t Zbdd::live_size(const std::vector<Ref>& roots) const {
  std::vector<bool> marked(size(), false);
  std::vector<Ref> stack;
  std::size_t live = 0;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      ++live;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        ++live;
        stack.push_back(child);
      }
  }
  return live;
}

SiftStats Zbdd::sift(const std::vector<Ref>& roots,
                     const SiftOptions& options) {
  SiftStats stats = rudell_sift(*this, roots, options);
  tables_->reorder_pending.store(false, std::memory_order_relaxed);
  // Rearm well above the new live size so the trigger means real growth,
  // not the table crossing the same threshold again right away.
  reorder_threshold_ =
      std::max<std::size_t>(2 * table_size(), kDefaultReorderThreshold);
  return stats;
}

void Zbdd::set_auto_reorder(bool on, std::size_t threshold) {
  auto_reorder_ = on;
  reorder_threshold_ = threshold != 0 ? threshold : kDefaultReorderThreshold;
  if (!on) tables_->reorder_pending.store(false, std::memory_order_relaxed);
}

std::optional<SiftStats> Zbdd::maybe_reorder(const std::vector<Ref>& roots,
                                             const SiftOptions& options) {
  if (!reorder_pending()) return std::nullopt;
  return sift(roots, options);
}

}  // namespace ftsynth
