#include "bdd/zbdd.h"

#include <algorithm>
#include <climits>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

namespace {
constexpr int kTerminalVar = INT_MAX;
}

Zbdd::Zbdd() {
  nodes_.push_back({kTerminalVar, kEmpty, kEmpty});  // 0: {}
  nodes_.push_back({kTerminalVar, kBase, kBase});    // 1: {{}}
}

int Zbdd::new_var() {
  level_of_.push_back(var_count_);
  var_at_level_.push_back(var_count_);
  var_refs_.emplace_back();
  return var_count_++;
}

void Zbdd::set_order(const std::vector<int>& order) {
  check_internal(nodes_.size() == 2,
                 "ZBDD set_order requires an empty diagram");
  check_internal(order.size() == static_cast<std::size_t>(var_count_),
                 "ZBDD order must cover every variable");
  std::vector<bool> seen(static_cast<std::size_t>(var_count_), false);
  for (int v : order) {
    check_internal(v >= 0 && v < var_count_, "ZBDD order variable out of range");
    check_internal(!seen[static_cast<std::size_t>(v)],
                   "ZBDD order repeats a variable");
    seen[static_cast<std::size_t>(v)] = true;
  }
  var_at_level_ = order;
  for (int level = 0; level < var_count_; ++level)
    level_of_[static_cast<std::size_t>(order[static_cast<std::size_t>(level)])] =
        level;
}

int Zbdd::level_of(int v) const {
  check_internal(v >= 0 && v < var_count_, "ZBDD variable out of range");
  return level_of_[static_cast<std::size_t>(v)];
}

int Zbdd::var_at_level(int level) const {
  check_internal(level >= 0 && level < var_count_, "ZBDD level out of range");
  return var_at_level_[static_cast<std::size_t>(level)];
}

int Zbdd::var_level(int var) const noexcept {
  return var == kTerminalVar ? INT_MAX
                             : level_of_[static_cast<std::size_t>(var)];
}

int Zbdd::node_level(Ref a) const noexcept { return var_level(nodes_[a].var); }

Zbdd::Ref Zbdd::make(int var, Ref low, Ref high) {
  if (high == kEmpty) return low;  // zero-suppression rule
  UniqueKey key{var, low, high};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  // A level swap rewrites nodes in place and must run to completion -- a
  // half-swapped level is not a valid diagram -- so interrupts are deferred
  // to the swap boundaries (the sifting driver polls there).
  if (!in_swap_) {
    if (budget_ != nullptr && budget_->poll()) throw Interrupt{true};
    if (node_limit_ != 0 && nodes_.size() - free_.size() >= node_limit_)
      throw Interrupt{false};
  }
  Ref ref;
  if (!free_.empty()) {
    ref = free_.back();
    free_.pop_back();
    nodes_[ref] = {var, low, high};
  } else {
    check_internal(nodes_.size() < UINT32_MAX, "ZBDD node table overflow");
    ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back({var, low, high});
  }
  unique_.emplace(key, ref);
  var_refs_[static_cast<std::size_t>(var)].push_back(ref);
  if (auto_reorder_ && !in_swap_ && !reorder_pending_ &&
      unique_.size() >= reorder_threshold_)
    reorder_pending_ = true;
  return ref;
}

Zbdd::Ref Zbdd::single(int v) {
  check_internal(v >= 0 && v < var_count_, "ZBDD variable out of range");
  return make(v, kEmpty, kBase);
}

Zbdd::Ref Zbdd::set_union(Ref a, Ref b) {
  if (a == b) return a;
  if (a == kEmpty) return b;
  if (b == kEmpty) return a;
  if (a > b) std::swap(a, b);  // commutative: canonical cache key
  OpKey key{Op::kUnion, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  // Copy: recursive calls may grow nodes_ and invalidate references.
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    result = make(na.var, set_union(na.low, nb.low),
                  set_union(na.high, nb.high));
  } else if (la < lb) {
    // b (including a terminal, level = sentinel) has no sets with na.var.
    result = make(na.var, set_union(na.low, b), na.high);
  } else {
    result = make(nb.var, set_union(nb.low, a), nb.high);
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::set_intersection(Ref a, Ref b) {
  if (a == b) return a;
  if (a == kEmpty || b == kEmpty) return kEmpty;
  if (a > b) std::swap(a, b);
  OpKey key{Op::kIntersection, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    result = make(na.var, set_intersection(na.low, nb.low),
                  set_intersection(na.high, nb.high));
  } else if (la < lb) {
    // Sets containing na.var cannot be in b; only a's low part survives.
    result = set_intersection(na.low, b);
  } else {
    result = set_intersection(nb.low, a);
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::product(Ref a, Ref b) {
  if (a == kEmpty || b == kEmpty) return kEmpty;
  if (a == kBase) return b;
  if (b == kBase) return a;
  if (a > b) std::swap(a, b);  // pairwise union is commutative
  OpKey key{Op::kProduct, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    // Sets containing v: any pairing where at least one side contributes v.
    Ref high = set_union(product(na.high, nb.high),
                         set_union(product(na.high, nb.low),
                                   product(na.low, nb.high)));
    result = make(na.var, product(na.low, nb.low), high);
  } else {
    const Node& top = la < lb ? na : nb;
    const Ref other = la < lb ? b : a;
    result = make(top.var, product(top.low, other), product(top.high, other));
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::without(Ref a, Ref b) {
  if (a == kEmpty) return kEmpty;
  if (b == kEmpty) return a;
  if (b == kBase) return kEmpty;  // {} is a subset of every set
  if (a == b) return kEmpty;      // every set subsumes itself
  OpKey key{Op::kWithout, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const int la = var_level(na.var);
  const int lb = var_level(nb.var);
  Ref result;
  if (la == lb) {
    // v+s of a.high is subsumed by t in b.low (t has no v, t <= s) or by
    // v+t of b.high (t <= s); a.low only by b.low.
    result = make(na.var, without(na.low, nb.low),
                  without(without(na.high, nb.low), nb.high));
  } else if (la < lb) {
    // No set of b mentions na.var: screen both branches against all of b.
    result = make(na.var, without(na.low, b), without(na.high, b));
  } else {
    // Sets of a (including kBase's {}) never contain nb.var, so only the
    // b-sets without it -- b.low -- can subsume them.
    result = without(a, nb.low);
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::minimal(Ref a) {
  if (is_terminal(a)) return a;
  OpKey key{Op::kMinimal, a, 0};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node n = nodes_[a];
  // A set v+s (s in high) is non-minimal iff s' <= s for some s' already
  // minimal in high, or t <= s for some t in low (t has no v).
  Ref low = minimal(n.low);
  Ref high = without(minimal(n.high), low);
  Ref result = make(n.var, low, high);
  cache_.emplace(key, result);
  return result;
}

double Zbdd::set_count(Ref a) const {
  std::unordered_map<Ref, double> memo;
  auto count = [&](auto&& self, Ref ref) -> double {
    if (ref == kEmpty) return 0.0;
    if (ref == kBase) return 1.0;
    if (auto it = memo.find(ref); it != memo.end()) return it->second;
    const Node& n = nodes_[ref];
    double result = self(self, n.low) + self(self, n.high);
    memo.emplace(ref, result);
    return result;
  };
  return count(count, a);
}

std::size_t Zbdd::node_count(Ref a) const {
  if (is_terminal(a)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    if (is_terminal(ref) || !seen.insert(ref).second) continue;
    stack.push_back(nodes_[ref].low);
    stack.push_back(nodes_[ref].high);
  }
  return seen.size();
}

void Zbdd::for_each_set(
    Ref a, const std::function<bool(const std::vector<int>&)>& visit) const {
  std::vector<int> current;
  bool stopped = false;
  auto walk = [&](auto&& self, Ref ref) -> void {
    if (stopped || ref == kEmpty) return;
    if (ref == kBase) {
      if (!visit(current)) stopped = true;
      return;
    }
    const Node& n = nodes_[ref];
    self(self, n.low);
    current.push_back(n.var);
    self(self, n.high);
    current.pop_back();
  };
  walk(walk, a);
}

void Zbdd::swap_adjacent_levels(int level) {
  check_internal(level >= 0 && level + 1 < var_count_,
                 "ZBDD level swap out of range");
  const int v = var_at_level_[static_cast<std::size_t>(level)];
  const int w = var_at_level_[static_cast<std::size_t>(level + 1)];
  // Op-cache results bake in the old level comparisons.
  cache_.clear();
  in_swap_ = true;
  // make(v, ...) below appends rebuilt cofactor nodes to var_refs_[v], so
  // move the worklist out first; v-nodes independent of w go back in at the
  // end (they simply ride down one level, their structure untouched).
  std::vector<Ref> worklist =
      std::move(var_refs_[static_cast<std::size_t>(v)]);
  var_refs_[static_cast<std::size_t>(v)].clear();
  std::vector<Ref> keep;
  // Splits a child family C by w: (sets without w, sets with w, w stripped).
  auto split = [&](Ref c, Ref& without_w, Ref& with_w) {
    const Node& n = nodes_[c];
    if (!is_terminal(c) && n.var == w) {
      without_w = n.low;
      with_w = n.high;
    } else {
      without_w = c;
      with_w = kEmpty;
    }
  };
  for (Ref r : worklist) {
    const Node n = nodes_[r];  // copy: make() may reallocate nodes_
    Ref l0, l1, h0, h1;
    split(n.low, l0, l1);
    split(n.high, h0, h1);
    if (l1 == kEmpty && h1 == kEmpty) {
      // Independent of w: the node keeps its variable and structure.
      keep.push_back(r);
      continue;
    }
    // <v, L, H> = <w, <v, l0, h0>, <v, l1, h1>> once w is above v. The
    // rewrite is in place so every external ref to r keeps its meaning.
    unique_.erase(UniqueKey{n.var, n.low, n.high});
    const Ref nlow = make(v, l0, h0);
    const Ref nhigh = make(v, l1, h1);
    // nhigh != kEmpty: l1/h1 are not both empty, so the node stays valid
    // under zero-suppression.
    nodes_[r] = {w, nlow, nhigh};
    const bool inserted = unique_.emplace(UniqueKey{w, nlow, nhigh}, r).second;
    // Canonicity argument: distinct allocated nodes denote distinct
    // families, the rewrite preserves r's family, and every other
    // <w, ., .> node denotes some other family -- so no collision.
    check_internal(inserted, "ZBDD level swap produced a duplicate node");
    var_refs_[static_cast<std::size_t>(w)].push_back(r);
  }
  auto& v_refs = var_refs_[static_cast<std::size_t>(v)];
  v_refs.insert(v_refs.end(), keep.begin(), keep.end());
  std::swap(var_at_level_[static_cast<std::size_t>(level)],
            var_at_level_[static_cast<std::size_t>(level + 1)]);
  level_of_[static_cast<std::size_t>(v)] = level + 1;
  level_of_[static_cast<std::size_t>(w)] = level;
  in_swap_ = false;
}

std::size_t Zbdd::level_width(int level) const {
  check_internal(level >= 0 && level < var_count_, "ZBDD level out of range");
  return var_refs_[static_cast<std::size_t>(
                       var_at_level_[static_cast<std::size_t>(level)])]
      .size();
}

void Zbdd::collect_garbage(const std::vector<Ref>& roots) {
  cache_.clear();  // cached results may reference nodes about to die
  std::vector<bool> marked(nodes_.size(), false);
  std::vector<Ref> stack;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
  }
  // Only entries still in the unique table are allocated; previously freed
  // slots are already on free_ and must not be pushed twice.
  std::vector<Ref> dead;
  for (auto it = unique_.begin(); it != unique_.end();) {
    if (!marked[it->second]) {
      dead.push_back(it->second);
      it = unique_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(dead.begin(), dead.end());
  free_.insert(free_.end(), dead.begin(), dead.end());
  for (auto& refs : var_refs_) refs.clear();
  for (Ref r = 2; r < nodes_.size(); ++r)
    if (marked[r])
      var_refs_[static_cast<std::size_t>(nodes_[r].var)].push_back(r);
}

std::size_t Zbdd::live_size(const std::vector<Ref>& roots) const {
  std::vector<bool> marked(nodes_.size(), false);
  std::vector<Ref> stack;
  std::size_t live = 0;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      ++live;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        ++live;
        stack.push_back(child);
      }
  }
  return live;
}

SiftStats Zbdd::sift(const std::vector<Ref>& roots,
                     const SiftOptions& options) {
  SiftStats stats = rudell_sift(*this, roots, options);
  reorder_pending_ = false;
  // Rearm well above the new live size so the trigger means real growth,
  // not the table crossing the same threshold again right away.
  reorder_threshold_ =
      std::max<std::size_t>(2 * unique_.size(), kDefaultReorderThreshold);
  return stats;
}

void Zbdd::set_auto_reorder(bool on, std::size_t threshold) {
  auto_reorder_ = on;
  reorder_threshold_ = threshold != 0 ? threshold : kDefaultReorderThreshold;
  if (!on) reorder_pending_ = false;
}

std::optional<SiftStats> Zbdd::maybe_reorder(const std::vector<Ref>& roots,
                                             const SiftOptions& options) {
  if (!reorder_pending_) return std::nullopt;
  return sift(roots, options);
}

}  // namespace ftsynth
