#include "bdd/zbdd.h"

#include <climits>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

namespace {
constexpr int kTerminalVar = INT_MAX;
}

Zbdd::Zbdd() {
  nodes_.push_back({kTerminalVar, kEmpty, kEmpty});  // 0: {}
  nodes_.push_back({kTerminalVar, kBase, kBase});    // 1: {{}}
}

int Zbdd::new_var() { return var_count_++; }

Zbdd::Ref Zbdd::make(int var, Ref low, Ref high) {
  if (high == kEmpty) return low;  // zero-suppression rule
  UniqueKey key{var, low, high};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (budget_ != nullptr && budget_->poll()) throw Interrupt{true};
  if (node_limit_ != 0 && nodes_.size() >= node_limit_)
    throw Interrupt{false};
  check_internal(nodes_.size() < UINT32_MAX, "ZBDD node table overflow");
  Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

Zbdd::Ref Zbdd::single(int v) {
  check_internal(v >= 0 && v < var_count_, "ZBDD variable out of range");
  return make(v, kEmpty, kBase);
}

Zbdd::Ref Zbdd::set_union(Ref a, Ref b) {
  if (a == b) return a;
  if (a == kEmpty) return b;
  if (b == kEmpty) return a;
  if (a > b) std::swap(a, b);  // commutative: canonical cache key
  OpKey key{Op::kUnion, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  // Copy: recursive calls may grow nodes_ and invalidate references.
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  Ref result;
  if (na.var == nb.var) {
    result = make(na.var, set_union(na.low, nb.low),
                  set_union(na.high, nb.high));
  } else if (na.var < nb.var) {
    // b (including a terminal, var = sentinel) has no sets with na.var.
    result = make(na.var, set_union(na.low, b), na.high);
  } else {
    result = make(nb.var, set_union(nb.low, a), nb.high);
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::set_intersection(Ref a, Ref b) {
  if (a == b) return a;
  if (a == kEmpty || b == kEmpty) return kEmpty;
  if (a > b) std::swap(a, b);
  OpKey key{Op::kIntersection, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  Ref result;
  if (na.var == nb.var) {
    result = make(na.var, set_intersection(na.low, nb.low),
                  set_intersection(na.high, nb.high));
  } else if (na.var < nb.var) {
    // Sets containing na.var cannot be in b; only a's low part survives.
    result = set_intersection(na.low, b);
  } else {
    result = set_intersection(nb.low, a);
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::product(Ref a, Ref b) {
  if (a == kEmpty || b == kEmpty) return kEmpty;
  if (a == kBase) return b;
  if (b == kBase) return a;
  if (a > b) std::swap(a, b);  // pairwise union is commutative
  OpKey key{Op::kProduct, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  Ref result;
  if (na.var == nb.var) {
    // Sets containing v: any pairing where at least one side contributes v.
    Ref high = set_union(product(na.high, nb.high),
                         set_union(product(na.high, nb.low),
                                   product(na.low, nb.high)));
    result = make(na.var, product(na.low, nb.low), high);
  } else {
    const Node& top = na.var < nb.var ? na : nb;
    const Ref other = na.var < nb.var ? b : a;
    result = make(top.var, product(top.low, other), product(top.high, other));
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::without(Ref a, Ref b) {
  if (a == kEmpty) return kEmpty;
  if (b == kEmpty) return a;
  if (b == kBase) return kEmpty;  // {} is a subset of every set
  if (a == b) return kEmpty;      // every set subsumes itself
  OpKey key{Op::kWithout, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  Ref result;
  if (na.var == nb.var) {
    // v+s of a.high is subsumed by t in b.low (t has no v, t <= s) or by
    // v+t of b.high (t <= s); a.low only by b.low.
    result = make(na.var, without(na.low, nb.low),
                  without(without(na.high, nb.low), nb.high));
  } else if (na.var < nb.var) {
    // No set of b mentions na.var: screen both branches against all of b.
    result = make(na.var, without(na.low, b), without(na.high, b));
  } else {
    // Sets of a (including kBase's {}) never contain nb.var, so only the
    // b-sets without it -- b.low -- can subsume them.
    result = without(a, nb.low);
  }
  cache_.emplace(key, result);
  return result;
}

Zbdd::Ref Zbdd::minimal(Ref a) {
  if (is_terminal(a)) return a;
  OpKey key{Op::kMinimal, a, 0};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node n = nodes_[a];
  // A set v+s (s in high) is non-minimal iff s' <= s for some s' already
  // minimal in high, or t <= s for some t in low (t has no v).
  Ref low = minimal(n.low);
  Ref high = without(minimal(n.high), low);
  Ref result = make(n.var, low, high);
  cache_.emplace(key, result);
  return result;
}

double Zbdd::set_count(Ref a) const {
  std::unordered_map<Ref, double> memo;
  auto count = [&](auto&& self, Ref ref) -> double {
    if (ref == kEmpty) return 0.0;
    if (ref == kBase) return 1.0;
    if (auto it = memo.find(ref); it != memo.end()) return it->second;
    const Node& n = nodes_[ref];
    double result = self(self, n.low) + self(self, n.high);
    memo.emplace(ref, result);
    return result;
  };
  return count(count, a);
}

std::size_t Zbdd::node_count(Ref a) const {
  if (is_terminal(a)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    if (is_terminal(ref) || !seen.insert(ref).second) continue;
    stack.push_back(nodes_[ref].low);
    stack.push_back(nodes_[ref].high);
  }
  return seen.size();
}

void Zbdd::for_each_set(
    Ref a, const std::function<bool(const std::vector<int>&)>& visit) const {
  std::vector<int> current;
  bool stopped = false;
  auto walk = [&](auto&& self, Ref ref) -> void {
    if (stopped || ref == kEmpty) return;
    if (ref == kBase) {
      if (!visit(current)) stopped = true;
      return;
    }
    const Node& n = nodes_[ref];
    self(self, n.low);
    current.push_back(n.var);
    self(self, n.high);
    current.pop_back();
  };
  walk(walk, a);
}

}  // namespace ftsynth
