#include "bdd/bdd.h"

#include <climits>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

namespace {
constexpr int kTerminalVar = INT_MAX;
}

Bdd::Bdd() {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true
}

int Bdd::new_var() {
  level_of_.push_back(var_count_);
  return var_count_++;
}

void Bdd::set_order(const std::vector<int>& order) {
  check_internal(nodes_.size() == 2,
                 "set_order must run before any BDD node is built");
  check_internal(order.size() == static_cast<std::size_t>(var_count_),
                 "variable order must cover every declared variable");
  std::vector<int> levels(order.size(), -1);
  for (std::size_t level = 0; level < order.size(); ++level) {
    const int var = order[level];
    check_internal(var >= 0 && var < var_count_ && levels[var] == -1,
                   "variable order must be a permutation of the variables");
    levels[static_cast<std::size_t>(var)] = static_cast<int>(level);
  }
  level_of_ = std::move(levels);
}

int Bdd::level_of(int v) const {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return level_of_[static_cast<std::size_t>(v)];
}

int Bdd::node_level(Ref a) const noexcept {
  const int var = nodes_[a].var;
  return var == kTerminalVar ? INT_MAX
                             : level_of_[static_cast<std::size_t>(var)];
}

Bdd::Ref Bdd::make(int var, Ref low, Ref high) {
  if (low == high) return low;
  UniqueKey key{var, low, high};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  check_internal(nodes_.size() < UINT32_MAX, "BDD node table overflow");
  Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

Bdd::Ref Bdd::var(int v) {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return make(v, kFalse, kTrue);
}

Bdd::Ref Bdd::nvar(int v) {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return make(v, kTrue, kFalse);
}

Bdd::Ref Bdd::apply_not(Ref a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  OpKey key{Op::kNot, a, 0};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node n = nodes_[a];
  Ref result = make(n.var, apply_not(n.low), apply_not(n.high));
  cache_.emplace(key, result);
  return result;
}

Bdd::Ref Bdd::apply(Op op, Ref a, Ref b) {
  switch (op) {
    case Op::kAnd:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      break;
    case Op::kOr:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      break;
    case Op::kXor:
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return kFalse;
      if (a == kTrue) return apply_not(b);
      if (b == kTrue) return apply_not(a);
      break;
    case Op::kNot:
      check_internal(false, "kNot goes through apply_not");
  }
  // Commutative ops: canonicalise the operand order for the cache.
  if (a > b) std::swap(a, b);
  OpKey key{op, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;

  // Copy: the recursive apply() below may grow nodes_ and invalidate
  // references into it.
  const int la = node_level(a);
  const int lb = node_level(b);
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const int v = la <= lb ? na.var : nb.var;
  const Ref a_low = la <= lb ? na.low : a;
  const Ref a_high = la <= lb ? na.high : a;
  const Ref b_low = lb <= la ? nb.low : b;
  const Ref b_high = lb <= la ? nb.high : b;
  Ref result = make(v, apply(op, a_low, b_low), apply(op, a_high, b_high));
  cache_.emplace(key, result);
  return result;
}

Bdd::Ref Bdd::apply_and(Ref a, Ref b) { return apply(Op::kAnd, a, b); }
Bdd::Ref Bdd::apply_or(Ref a, Ref b) { return apply(Op::kOr, a, b); }
Bdd::Ref Bdd::apply_xor(Ref a, Ref b) { return apply(Op::kXor, a, b); }

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  return apply_or(apply_and(f, g), apply_and(apply_not(f), h));
}

std::size_t Bdd::node_count(Ref a) const {
  if (is_terminal(a)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    if (is_terminal(ref) || !seen.insert(ref).second) continue;
    stack.push_back(nodes_[ref].low);
    stack.push_back(nodes_[ref].high);
  }
  return seen.size();
}

bool Bdd::evaluate(Ref a, const std::vector<bool>& assignment) const {
  while (!is_terminal(a)) {
    const Node& n = nodes_[a];
    check_internal(static_cast<std::size_t>(n.var) < assignment.size(),
                   "assignment too short for BDD evaluation");
    a = assignment[static_cast<std::size_t>(n.var)] ? n.high : n.low;
  }
  return a == kTrue;
}

double Bdd::sat_count(Ref a) const {
  // count(n) over remaining variables below level(n); scale at the top.
  // Levels, not variable indices: under an explicit order the number of
  // free variables skipped along an edge is a level difference.
  std::unordered_map<Ref, double> memo;
  auto level = [&](Ref ref) {
    return is_terminal(ref) ? var_count_ : node_level(ref);
  };
  auto count = [&](auto&& self, Ref ref) -> double {
    if (ref == kFalse) return 0.0;
    if (ref == kTrue) return 1.0;
    if (auto it = memo.find(ref); it != memo.end()) return it->second;
    const Node& n = nodes_[ref];
    auto weight = [&](Ref child) {
      // Variables skipped between this node and the child are free.
      return self(self, child) *
             static_cast<double>(1ULL << (level(child) - level(ref) - 1));
    };
    double result = weight(n.low) + weight(n.high);
    memo.emplace(ref, result);
    return result;
  };
  if (a == kFalse) return 0.0;
  return count(count, a) * static_cast<double>(1ULL << level(a));
}

}  // namespace ftsynth
