#include "bdd/bdd.h"

#include <algorithm>
#include <climits>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

namespace {
constexpr int kTerminalVar = INT_MAX;
}

Bdd::Bdd() {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true
}

int Bdd::new_var() {
  level_of_.push_back(var_count_);
  var_at_level_.push_back(var_count_);
  var_refs_.emplace_back();
  return var_count_++;
}

void Bdd::set_order(const std::vector<int>& order) {
  check_internal(nodes_.size() == 2,
                 "set_order must run before any BDD node is built");
  check_internal(order.size() == static_cast<std::size_t>(var_count_),
                 "variable order must cover every declared variable");
  std::vector<int> levels(order.size(), -1);
  for (std::size_t level = 0; level < order.size(); ++level) {
    const int var = order[level];
    check_internal(var >= 0 && var < var_count_ && levels[var] == -1,
                   "variable order must be a permutation of the variables");
    levels[static_cast<std::size_t>(var)] = static_cast<int>(level);
  }
  level_of_ = std::move(levels);
  var_at_level_ = order;
}

int Bdd::level_of(int v) const {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return level_of_[static_cast<std::size_t>(v)];
}

int Bdd::var_at_level(int level) const {
  check_internal(level >= 0 && level < var_count_, "BDD level out of range");
  return var_at_level_[static_cast<std::size_t>(level)];
}

int Bdd::node_level(Ref a) const noexcept {
  const int var = nodes_[a].var;
  return var == kTerminalVar ? INT_MAX
                             : level_of_[static_cast<std::size_t>(var)];
}

Bdd::Ref Bdd::make(int var, Ref low, Ref high) {
  if (low == high) return low;
  UniqueKey key{var, low, high};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  Ref ref;
  if (!free_.empty()) {
    ref = free_.back();
    free_.pop_back();
    nodes_[ref] = {var, low, high};
  } else {
    check_internal(nodes_.size() < UINT32_MAX, "BDD node table overflow");
    ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back({var, low, high});
  }
  unique_.emplace(key, ref);
  var_refs_[static_cast<std::size_t>(var)].push_back(ref);
  return ref;
}

Bdd::Ref Bdd::var(int v) {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return make(v, kFalse, kTrue);
}

Bdd::Ref Bdd::nvar(int v) {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return make(v, kTrue, kFalse);
}

Bdd::Ref Bdd::apply_not(Ref a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  OpKey key{Op::kNot, a, 0};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node n = nodes_[a];
  Ref result = make(n.var, apply_not(n.low), apply_not(n.high));
  cache_.emplace(key, result);
  return result;
}

Bdd::Ref Bdd::apply(Op op, Ref a, Ref b) {
  switch (op) {
    case Op::kAnd:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      break;
    case Op::kOr:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      break;
    case Op::kXor:
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return kFalse;
      if (a == kTrue) return apply_not(b);
      if (b == kTrue) return apply_not(a);
      break;
    case Op::kNot:
      check_internal(false, "kNot goes through apply_not");
  }
  // Commutative ops: canonicalise the operand order for the cache.
  if (a > b) std::swap(a, b);
  OpKey key{op, a, b};
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;

  // Copy: the recursive apply() below may grow nodes_ and invalidate
  // references into it.
  const int la = node_level(a);
  const int lb = node_level(b);
  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const int v = la <= lb ? na.var : nb.var;
  const Ref a_low = la <= lb ? na.low : a;
  const Ref a_high = la <= lb ? na.high : a;
  const Ref b_low = lb <= la ? nb.low : b;
  const Ref b_high = lb <= la ? nb.high : b;
  Ref result = make(v, apply(op, a_low, b_low), apply(op, a_high, b_high));
  cache_.emplace(key, result);
  return result;
}

Bdd::Ref Bdd::apply_and(Ref a, Ref b) { return apply(Op::kAnd, a, b); }
Bdd::Ref Bdd::apply_or(Ref a, Ref b) { return apply(Op::kOr, a, b); }
Bdd::Ref Bdd::apply_xor(Ref a, Ref b) { return apply(Op::kXor, a, b); }

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  return apply_or(apply_and(f, g), apply_and(apply_not(f), h));
}

std::size_t Bdd::node_count(Ref a) const {
  if (is_terminal(a)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    if (is_terminal(ref) || !seen.insert(ref).second) continue;
    stack.push_back(nodes_[ref].low);
    stack.push_back(nodes_[ref].high);
  }
  return seen.size();
}

bool Bdd::evaluate(Ref a, const std::vector<bool>& assignment) const {
  while (!is_terminal(a)) {
    const Node& n = nodes_[a];
    check_internal(static_cast<std::size_t>(n.var) < assignment.size(),
                   "assignment too short for BDD evaluation");
    a = assignment[static_cast<std::size_t>(n.var)] ? n.high : n.low;
  }
  return a == kTrue;
}

double Bdd::sat_count(Ref a) const {
  // count(n) over remaining variables below level(n); scale at the top.
  // Levels, not variable indices: under an explicit order the number of
  // free variables skipped along an edge is a level difference.
  std::unordered_map<Ref, double> memo;
  auto level = [&](Ref ref) {
    return is_terminal(ref) ? var_count_ : node_level(ref);
  };
  auto count = [&](auto&& self, Ref ref) -> double {
    if (ref == kFalse) return 0.0;
    if (ref == kTrue) return 1.0;
    if (auto it = memo.find(ref); it != memo.end()) return it->second;
    const Node& n = nodes_[ref];
    auto weight = [&](Ref child) {
      // Variables skipped between this node and the child are free.
      return self(self, child) *
             static_cast<double>(1ULL << (level(child) - level(ref) - 1));
    };
    double result = weight(n.low) + weight(n.high);
    memo.emplace(ref, result);
    return result;
  };
  if (a == kFalse) return 0.0;
  return count(count, a) * static_cast<double>(1ULL << level(a));
}

void Bdd::swap_adjacent_levels(int level) {
  check_internal(level >= 0 && level + 1 < var_count_,
                 "BDD level swap out of range");
  const int v = var_at_level_[static_cast<std::size_t>(level)];
  const int w = var_at_level_[static_cast<std::size_t>(level + 1)];
  // Op-cache results bake in the old level comparisons.
  cache_.clear();
  // make(v, ...) below appends rebuilt cofactor nodes to var_refs_[v], so
  // move the worklist out first; v-nodes independent of w go back in at the
  // end (they simply ride down one level, their structure untouched).
  std::vector<Ref> worklist =
      std::move(var_refs_[static_cast<std::size_t>(v)]);
  var_refs_[static_cast<std::size_t>(v)].clear();
  std::vector<Ref> keep;
  // Cofactors of a child C by w: (C.low, C.high) when C decides w, else
  // (C, C) -- C is constant in w.
  auto split = [&](Ref c, Ref& w0, Ref& w1) {
    const Node& n = nodes_[c];
    if (!is_terminal(c) && n.var == w) {
      w0 = n.low;
      w1 = n.high;
    } else {
      w0 = c;
      w1 = c;
    }
  };
  for (Ref r : worklist) {
    const Node n = nodes_[r];  // copy: make() may reallocate nodes_
    if (!((!is_terminal(n.low) && nodes_[n.low].var == w) ||
          (!is_terminal(n.high) && nodes_[n.high].var == w))) {
      // Independent of w: the node keeps its variable and structure.
      keep.push_back(r);
      continue;
    }
    Ref l0, l1, h0, h1;
    split(n.low, l0, l1);
    split(n.high, h0, h1);
    // <v, L, H> = <w, <v, l0, h0>, <v, l1, h1>> once w is above v. The
    // rewrite is in place so every external ref to r keeps its meaning.
    unique_.erase(UniqueKey{n.var, n.low, n.high});
    const Ref nlow = make(v, l0, h0);
    const Ref nhigh = make(v, l1, h1);
    // nlow != nhigh: r depends on w (a reduced child decides it), so its
    // two w-cofactors are distinct functions and make() is canonical.
    check_internal(nlow != nhigh, "BDD level swap collapsed a node");
    nodes_[r] = {w, nlow, nhigh};
    const bool inserted = unique_.emplace(UniqueKey{w, nlow, nhigh}, r).second;
    // Canonicity argument: distinct allocated nodes denote distinct
    // functions, the rewrite preserves r's function, and every other
    // <w, ., .> node denotes some other function -- so no collision.
    check_internal(inserted, "BDD level swap produced a duplicate node");
    var_refs_[static_cast<std::size_t>(w)].push_back(r);
  }
  auto& v_refs = var_refs_[static_cast<std::size_t>(v)];
  v_refs.insert(v_refs.end(), keep.begin(), keep.end());
  std::swap(var_at_level_[static_cast<std::size_t>(level)],
            var_at_level_[static_cast<std::size_t>(level + 1)]);
  level_of_[static_cast<std::size_t>(v)] = level + 1;
  level_of_[static_cast<std::size_t>(w)] = level;
}

std::size_t Bdd::level_width(int level) const {
  check_internal(level >= 0 && level < var_count_, "BDD level out of range");
  return var_refs_[static_cast<std::size_t>(
                       var_at_level_[static_cast<std::size_t>(level)])]
      .size();
}

void Bdd::collect_garbage(const std::vector<Ref>& roots) {
  cache_.clear();  // cached results may reference nodes about to die
  std::vector<bool> marked(nodes_.size(), false);
  std::vector<Ref> stack;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
  }
  // Only entries still in the unique table are allocated; previously freed
  // slots are already on free_ and must not be pushed twice.
  std::vector<Ref> dead;
  for (auto it = unique_.begin(); it != unique_.end();) {
    if (!marked[it->second]) {
      dead.push_back(it->second);
      it = unique_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(dead.begin(), dead.end());
  free_.insert(free_.end(), dead.begin(), dead.end());
  for (auto& refs : var_refs_) refs.clear();
  for (Ref r = 2; r < nodes_.size(); ++r)
    if (marked[r])
      var_refs_[static_cast<std::size_t>(nodes_[r].var)].push_back(r);
}

std::size_t Bdd::live_size(const std::vector<Ref>& roots) const {
  std::vector<bool> marked(nodes_.size(), false);
  std::vector<Ref> stack;
  std::size_t live = 0;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      ++live;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        ++live;
        stack.push_back(child);
      }
  }
  return live;
}

SiftStats Bdd::sift(const std::vector<Ref>& roots, const SiftOptions& options) {
  return rudell_sift(*this, roots, options);
}

}  // namespace ftsynth
