#include "bdd/bdd.h"

#include <algorithm>
#include <climits>
#include <unordered_set>

#include "core/error.h"

namespace ftsynth {

namespace {
constexpr int kTerminalVar = INT_MAX;
/// Marks freed (or never-constructed) arena slots so structural scans can
/// tell them from live nodes without consulting the free list.
constexpr int kFreeVar = -1;
}  // namespace

Bdd::Bdd() : tables_(std::make_unique<Tables>()) {
  ensure_block(0);
  node_mut(kFalse) = {kTerminalVar, kFalse, kFalse};  // 0: false
  node_mut(kTrue) = {kTerminalVar, kTrue, kTrue};     // 1: true
  tables_->next_slot.store(2);
}

Bdd::~Bdd() = default;
Bdd::Bdd(Bdd&&) noexcept = default;
Bdd& Bdd::operator=(Bdd&&) noexcept = default;

void Bdd::ensure_block(std::size_t block) {
  check_internal(block < kMaxBlocks, "BDD node table overflow");
  if (tables_->blocks[block].load(std::memory_order_acquire) != nullptr)
    return;
  std::lock_guard<std::mutex> lock(tables_->grow_mutex);
  if (tables_->blocks[block].load(std::memory_order_relaxed) != nullptr)
    return;
  const std::size_t capacity = block_capacity(block);
  Node* storage = new Node[capacity];
  // Pre-mark every slot free: a slot becomes live only when make() writes
  // real fields, so scans never misread an unconstructed slot.
  for (std::size_t i = 0; i < capacity; ++i)
    storage[i] = {kFreeVar, kFalse, kFalse};
  tables_->blocks[block].store(storage, std::memory_order_release);
}

Bdd::Ref Bdd::allocate_slot() {
  if (tables_->free_count.load() != 0) {
    std::lock_guard<std::mutex> lock(tables_->free_mutex);
    if (!tables_->free.empty()) {
      const Ref ref = tables_->free.back();
      tables_->free.pop_back();
      tables_->free_count.store(tables_->free.size());
      return ref;
    }
  }
  const std::size_t slot = tables_->next_slot.value.fetch_add(
      1, std::memory_order_relaxed);
  check_internal(slot < kNoEntry, "BDD node table overflow");
  const Ref ref = static_cast<Ref>(slot);
  ensure_block(block_index(ref));
  return ref;
}

int Bdd::new_var() {
  level_of_.push_back(var_count_);
  var_at_level_.push_back(var_count_);
  var_refs_.emplace_back();
  return var_count_++;
}

void Bdd::set_order(const std::vector<int>& order) {
  check_internal(size() == 2,
                 "set_order must run before any BDD node is built");
  check_internal(order.size() == static_cast<std::size_t>(var_count_),
                 "variable order must cover every declared variable");
  std::vector<int> levels(order.size(), -1);
  for (std::size_t level = 0; level < order.size(); ++level) {
    const int var = order[level];
    check_internal(var >= 0 && var < var_count_ && levels[var] == -1,
                   "variable order must be a permutation of the variables");
    levels[static_cast<std::size_t>(var)] = static_cast<int>(level);
  }
  level_of_ = std::move(levels);
  var_at_level_ = order;
}

int Bdd::level_of(int v) const {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return level_of_[static_cast<std::size_t>(v)];
}

int Bdd::var_at_level(int level) const {
  check_internal(level >= 0 && level < var_count_, "BDD level out of range");
  return var_at_level_[static_cast<std::size_t>(level)];
}

int Bdd::node_level(Ref a) const noexcept {
  const int var = node(a).var;
  return var == kTerminalVar ? INT_MAX
                             : level_of_[static_cast<std::size_t>(var)];
}

Bdd::Ref Bdd::cache_get(const OpKey& key) const {
  OpShard& shard = op_shard(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? kNoEntry : it->second;
}

void Bdd::cache_put(const OpKey& key, Ref result) {
  OpShard& shard = op_shard(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.emplace(key, result);
}

void Bdd::clear_op_cache() {
  for (OpShard& shard : tables_->cache) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

Bdd::Ref Bdd::make(int var, Ref low, Ref high) {
  if (low == high) return low;  // reduction rule
  const UniqueKey key{var, low, high};
  UniqueShard& shard = unique_shard(key);
  // Allocation happens under the owning shard's lock: one canonical node
  // per key no matter how concurrent make() calls interleave. The node's
  // fields are written before the lock is released, so any thread that
  // learns the ref reads them across a happens-before edge.
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.map.emplace(key, kFalse);
  if (!inserted) return it->second;
  Ref ref;
  try {
    ref = allocate_slot();
  } catch (...) {
    shard.map.erase(it);
    throw;
  }
  node_mut(ref) = {var, low, high};
  it->second = ref;
  tables_->unique_count.add(1);
  if (in_swap_) {
    // Single-threaded rewrite: maintain the worklists directly.
    var_refs_[static_cast<std::size_t>(var)].push_back(ref);
  } else {
    tables_->var_refs_stale.store(true, std::memory_order_relaxed);
  }
  return ref;
}

Bdd::Ref Bdd::var(int v) {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return make(v, kFalse, kTrue);
}

Bdd::Ref Bdd::nvar(int v) {
  check_internal(v >= 0 && v < var_count_, "BDD variable out of range");
  return make(v, kTrue, kFalse);
}

Bdd::Ref Bdd::apply_not(Ref a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  const OpKey key{Op::kNot, a, 0};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;
  const Node n = node(a);
  Ref result = make(n.var, apply_not(n.low), apply_not(n.high));
  cache_put(key, result);
  return result;
}

Bdd::Ref Bdd::apply(Op op, Ref a, Ref b) {
  switch (op) {
    case Op::kAnd:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      break;
    case Op::kOr:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      break;
    case Op::kXor:
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return kFalse;
      if (a == kTrue) return apply_not(b);
      if (b == kTrue) return apply_not(a);
      break;
    case Op::kNot:
      check_internal(false, "kNot goes through apply_not");
  }
  // Commutative ops: canonicalise the operand order for the cache.
  if (a > b) std::swap(a, b);
  const OpKey key{op, a, b};
  if (const Ref hit = cache_get(key); hit != kNoEntry) return hit;

  // Copy: the arena entries themselves are stable, but holding a
  // reference across a recursion that may reuse freed slots is fragile.
  const int la = node_level(a);
  const int lb = node_level(b);
  const Node na = node(a);
  const Node nb = node(b);
  const int v = la <= lb ? na.var : nb.var;
  const Ref a_low = la <= lb ? na.low : a;
  const Ref a_high = la <= lb ? na.high : a;
  const Ref b_low = lb <= la ? nb.low : b;
  const Ref b_high = lb <= la ? nb.high : b;
  Ref result = make(v, apply(op, a_low, b_low), apply(op, a_high, b_high));
  cache_put(key, result);
  return result;
}

Bdd::Ref Bdd::apply_and(Ref a, Ref b) { return apply(Op::kAnd, a, b); }
Bdd::Ref Bdd::apply_or(Ref a, Ref b) { return apply(Op::kOr, a, b); }
Bdd::Ref Bdd::apply_xor(Ref a, Ref b) { return apply(Op::kXor, a, b); }

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  return apply_or(apply_and(f, g), apply_and(apply_not(f), h));
}

std::size_t Bdd::node_count(Ref a) const {
  if (is_terminal(a)) return 0;
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{a};
  while (!stack.empty()) {
    Ref ref = stack.back();
    stack.pop_back();
    if (is_terminal(ref) || !seen.insert(ref).second) continue;
    stack.push_back(node(ref).low);
    stack.push_back(node(ref).high);
  }
  return seen.size();
}

bool Bdd::evaluate(Ref a, const std::vector<bool>& assignment) const {
  while (!is_terminal(a)) {
    const Node& n = node(a);
    check_internal(static_cast<std::size_t>(n.var) < assignment.size(),
                   "assignment too short for BDD evaluation");
    a = assignment[static_cast<std::size_t>(n.var)] ? n.high : n.low;
  }
  return a == kTrue;
}

double Bdd::sat_count(Ref a) const {
  // count(n) over remaining variables below level(n); scale at the top.
  // Levels, not variable indices: under an explicit order the number of
  // free variables skipped along an edge is a level difference.
  std::unordered_map<Ref, double> memo;
  auto level = [&](Ref ref) {
    return is_terminal(ref) ? var_count_ : node_level(ref);
  };
  auto count = [&](auto&& self, Ref ref) -> double {
    if (ref == kFalse) return 0.0;
    if (ref == kTrue) return 1.0;
    if (auto it = memo.find(ref); it != memo.end()) return it->second;
    const Node& n = node(ref);
    auto weight = [&](Ref child) {
      // Variables skipped between this node and the child are free.
      return self(self, child) *
             static_cast<double>(1ULL << (level(child) - level(ref) - 1));
    };
    double result = weight(n.low) + weight(n.high);
    memo.emplace(ref, result);
    return result;
  };
  if (a == kFalse) return 0.0;
  return count(count, a) * static_cast<double>(1ULL << level(a));
}

void Bdd::rebuild_var_refs() {
  for (auto& refs : var_refs_) refs.clear();
  const std::size_t limit = size();
  for (std::size_t block = 0; block < kMaxBlocks; ++block) {
    const Node* storage = tables_->blocks[block].load(std::memory_order_acquire);
    if (storage == nullptr) continue;
    const std::size_t start = block_start(block);
    if (start >= limit) break;
    const std::size_t end = std::min(limit, start + block_capacity(block));
    for (std::size_t slot = std::max<std::size_t>(start, 2); slot < end;
         ++slot) {
      const int var = storage[slot - start].var;
      if (var >= 0 && var < var_count_)
        var_refs_[static_cast<std::size_t>(var)].push_back(
            static_cast<Ref>(slot));
    }
  }
  tables_->var_refs_stale.store(false, std::memory_order_relaxed);
}

void Bdd::swap_adjacent_levels(int level) {
  check_internal(level >= 0 && level + 1 < var_count_,
                 "BDD level swap out of range");
  if (tables_->var_refs_stale.load(std::memory_order_relaxed))
    rebuild_var_refs();
  const int v = var_at_level_[static_cast<std::size_t>(level)];
  const int w = var_at_level_[static_cast<std::size_t>(level + 1)];
  // Op-cache results bake in the old level comparisons.
  clear_op_cache();
  in_swap_ = true;
  // make(v, ...) below appends rebuilt cofactor nodes to var_refs_[v], so
  // move the worklist out first; v-nodes independent of w go back in at the
  // end (they simply ride down one level, their structure untouched).
  std::vector<Ref> worklist =
      std::move(var_refs_[static_cast<std::size_t>(v)]);
  var_refs_[static_cast<std::size_t>(v)].clear();
  std::vector<Ref> keep;
  // Cofactors of a child C by w: (C.low, C.high) when C decides w, else
  // (C, C) -- C is constant in w.
  auto split = [&](Ref c, Ref& w0, Ref& w1) {
    const Node& n = node(c);
    if (!is_terminal(c) && n.var == w) {
      w0 = n.low;
      w1 = n.high;
    } else {
      w0 = c;
      w1 = c;
    }
  };
  for (Ref r : worklist) {
    const Node n = node(r);  // copy: make() rewrites slots in place
    if (!((!is_terminal(n.low) && node(n.low).var == w) ||
          (!is_terminal(n.high) && node(n.high).var == w))) {
      // Independent of w: the node keeps its variable and structure.
      keep.push_back(r);
      continue;
    }
    Ref l0, l1, h0, h1;
    split(n.low, l0, l1);
    split(n.high, h0, h1);
    // <v, L, H> = <w, <v, l0, h0>, <v, l1, h1>> once w is above v. The
    // rewrite is in place so every external ref to r keeps its meaning.
    {
      const UniqueKey old_key{n.var, n.low, n.high};
      UniqueShard& shard = unique_shard(old_key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.map.erase(old_key) != 0)
        tables_->unique_count.value.fetch_sub(1, std::memory_order_relaxed);
    }
    const Ref nlow = make(v, l0, h0);
    const Ref nhigh = make(v, l1, h1);
    // nlow != nhigh: r depends on w (a reduced child decides it), so its
    // two w-cofactors are distinct functions and make() is canonical.
    check_internal(nlow != nhigh, "BDD level swap collapsed a node");
    node_mut(r) = {w, nlow, nhigh};
    bool inserted;
    {
      const UniqueKey new_key{w, nlow, nhigh};
      UniqueShard& shard = unique_shard(new_key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      inserted = shard.map.emplace(new_key, r).second;
    }
    if (inserted) tables_->unique_count.add(1);
    // Canonicity argument: distinct allocated nodes denote distinct
    // functions, the rewrite preserves r's function, and every other
    // <w, ., .> node denotes some other function -- so no collision.
    check_internal(inserted, "BDD level swap produced a duplicate node");
    var_refs_[static_cast<std::size_t>(w)].push_back(r);
  }
  auto& v_refs = var_refs_[static_cast<std::size_t>(v)];
  v_refs.insert(v_refs.end(), keep.begin(), keep.end());
  std::swap(var_at_level_[static_cast<std::size_t>(level)],
            var_at_level_[static_cast<std::size_t>(level + 1)]);
  level_of_[static_cast<std::size_t>(v)] = level + 1;
  level_of_[static_cast<std::size_t>(w)] = level;
  in_swap_ = false;
}

std::size_t Bdd::level_width(int level) const {
  check_internal(level >= 0 && level < var_count_, "BDD level out of range");
  return var_refs_[static_cast<std::size_t>(
                       var_at_level_[static_cast<std::size_t>(level)])]
      .size();
}

void Bdd::collect_garbage(const std::vector<Ref>& roots) {
  clear_op_cache();  // cached results may reference nodes about to die
  const std::size_t limit = size();
  std::vector<bool> marked(limit, false);
  std::vector<Ref> stack;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        stack.push_back(child);
      }
  }
  // Only entries still in the unique table are allocated; previously freed
  // slots are already on the free list and must not be pushed twice.
  std::vector<Ref> dead;
  for (UniqueShard& shard : tables_->unique) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (!marked[it->second]) {
        dead.push_back(it->second);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  tables_->unique_count.value.fetch_sub(dead.size(),
                                        std::memory_order_relaxed);
  std::sort(dead.begin(), dead.end());
  for (Ref r : dead) node_mut(r).var = kFreeVar;
  {
    std::lock_guard<std::mutex> lock(tables_->free_mutex);
    tables_->free.insert(tables_->free.end(), dead.begin(), dead.end());
    tables_->free_count.store(tables_->free.size());
  }
  for (auto& refs : var_refs_) refs.clear();
  for (std::size_t r = 2; r < limit; ++r)
    if (marked[r])
      var_refs_[static_cast<std::size_t>(node(static_cast<Ref>(r)).var)]
          .push_back(static_cast<Ref>(r));
  tables_->var_refs_stale.store(false, std::memory_order_relaxed);
}

std::size_t Bdd::live_size(const std::vector<Ref>& roots) const {
  std::vector<bool> marked(size(), false);
  std::vector<Ref> stack;
  std::size_t live = 0;
  for (Ref r : roots)
    if (!is_terminal(r) && !marked[r]) {
      marked[r] = true;
      ++live;
      stack.push_back(r);
    }
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    for (Ref child : {n.low, n.high})
      if (!is_terminal(child) && !marked[child]) {
        marked[child] = true;
        ++live;
        stack.push_back(child);
      }
  }
  return live;
}

SiftStats Bdd::sift(const std::vector<Ref>& roots, const SiftOptions& options) {
  return rudell_sift(*this, roots, options);
}

}  // namespace ftsynth
