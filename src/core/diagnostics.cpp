#include "core/diagnostics.h"

#include "core/text_table.h"

namespace ftsynth {

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string SourceLocation::to_string() const {
  if (line <= 0) return "";
  if (column <= 0) return std::to_string(line);
  return std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::to_string() const {
  std::string out(ftsynth::to_string(severity));
  out += "[";
  out += ftsynth::to_string(kind);
  out += "]";
  if (location.known()) out += " " + location.to_string();
  if (!block_path.empty()) out += " at " + block_path;
  out += ": " + message;
  return out;
}

void DiagnosticSink::report(Diagnostic diagnostic) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (diagnostic.severity == Severity::kError) {
    error_count_.add(1);
    if (kept_errors_.load() >= max_errors_)
      return;  // dropped, but still counted
    kept_errors_.add(1);
  } else {
    warning_count_.add(1);
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::error(ErrorKind kind, std::string message,
                           SourceLocation location, std::string block_path) {
  report({Severity::kError, kind, location, std::move(block_path),
          std::move(message)});
}

void DiagnosticSink::warning(ErrorKind kind, std::string message,
                             SourceLocation location, std::string block_path) {
  report({Severity::kWarning, kind, location, std::move(block_path),
          std::move(message)});
}

void DiagnosticSink::error_from(const Error& err, std::string block_path) {
  SourceLocation location;
  if (const auto* parse = dynamic_cast<const ParseError*>(&err)) {
    location = {parse->line(), parse->column()};
  }
  error(err.kind(), err.what(), location, std::move(block_path));
}

const Diagnostic* DiagnosticSink::first_error() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

ErrorKind DiagnosticSink::first_error_kind() const noexcept {
  const Diagnostic* first = first_error();
  return first != nullptr ? first->kind : ErrorKind::kInternal;
}

std::string DiagnosticSink::render_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (diagnostics_.empty()) return "";
  TextTable table({"Severity", "Location", "Kind", "Where", "Message"});
  for (const Diagnostic& d : diagnostics_) {
    table.add_row({std::string(to_string(d.severity)),
                   d.location.to_string(), std::string(to_string(d.kind)),
                   d.block_path, d.message});
  }
  const std::size_t warnings = diagnostics_.size() - kept_errors_.load();
  const std::size_t dropped = error_count_.load() - kept_errors_.load();
  std::string out = table.render();
  out += std::to_string(error_count_.load()) + " error(s), " +
         std::to_string(warnings) + " warning(s)";
  if (dropped > 0) {
    out += " (" + std::to_string(dropped) +
           " further error(s) dropped at the cap)";
  }
  out += "\n";
  return out;
}

}  // namespace ftsynth
