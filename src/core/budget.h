// Resource budgets for synthesis and analysis.
//
// Fault tree synthesis and cut-set expansion are worst-case exponential; on
// an adversarial model they must degrade into a *partial, flagged* result
// instead of running away with the machine. A Budget carries the limits --
// recursion depth, node / cut-set ceilings, and a monotonic-clock deadline
// -- and a BudgetReport records which of them actually fired, so callers
// (and the CLI) can tell a complete result from a truncated one.

#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>

namespace ftsynth {

/// Resource limits for one pipeline stage. Value type: engines copy the
/// budget into their run state (the amortised deadline tick is per-copy,
/// which keeps parallel synthesis race-free).
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  /// Traversal / recursion depth ceiling (synthesis stack, parser nesting).
  /// Deep enough for any sane model; shallow enough that a pathological
  /// 100k-level nesting becomes a diagnostic, not a stack overflow.
  std::size_t max_depth = 5000;

  /// Fault-tree node ceiling for synthesis (0 = unlimited).
  std::size_t max_nodes = 0;

  /// Starts the wall-clock deadline `ms` from now (monotonic clock).
  void set_deadline_ms(long ms) {
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
  }
  void set_deadline(Clock::time_point deadline) { deadline_ = deadline; }
  void clear_deadline() { deadline_.reset(); }
  bool has_deadline() const noexcept { return deadline_.has_value(); }

  /// Immediate deadline check (reads the clock).
  bool expired() const noexcept {
    if (expired_) return true;
    if (!deadline_) return false;
    expired_ = Clock::now() >= *deadline_;
    return expired_;
  }

  /// Amortised deadline check for hot loops: reads the clock only once
  /// every kStride calls. Once expired, stays expired (latched) so callers
  /// can unwind cheaply.
  bool poll() noexcept {
    if (expired_) return true;
    if (!deadline_) return false;
    if (++tick_ % kStride != 0) return false;
    return expired();
  }

 private:
  static constexpr unsigned kStride = 64;

  std::optional<Clock::time_point> deadline_;
  unsigned tick_ = 0;
  mutable bool expired_ = false;
};

/// Which limits fired during a budgeted run. Merged upward so a pipeline
/// can accumulate reports across stages.
struct BudgetReport {
  bool deadline_exceeded = false;  ///< wall-clock deadline hit
  bool depth_limited = false;      ///< recursion depth ceiling hit
  bool truncated = false;          ///< any count ceiling (nodes/sets/order) hit

  bool clean() const noexcept {
    return !deadline_exceeded && !depth_limited && !truncated;
  }

  void merge(const BudgetReport& other) noexcept {
    deadline_exceeded = deadline_exceeded || other.deadline_exceeded;
    depth_limited = depth_limited || other.depth_limited;
    truncated = truncated || other.truncated;
  }

  /// "deadline exceeded, depth limited" or "complete".
  std::string to_string() const;
};

}  // namespace ftsynth
