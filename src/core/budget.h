// Resource budgets for synthesis and analysis.
//
// Fault tree synthesis and cut-set expansion are worst-case exponential; on
// an adversarial model they must degrade into a *partial, flagged* result
// instead of running away with the machine. A Budget carries the limits --
// recursion depth, node / cut-set ceilings, and a monotonic-clock deadline
// -- and a BudgetReport records which of them actually fired, so callers
// (and the CLI) can tell a complete result from a truncated one.
//
// Concurrency: a Budget is a value type -- engines copy it into their run
// state -- but every copy made after set_deadline() shares one latched
// expiry flag. The first copy (on any thread) to observe the deadline
// latches it exactly once, and every other copy's next expired()/poll()
// returns true without reading the clock. That is what makes one
// --deadline-ms bite globally across a pool of workers: the workers run
// independent copies, yet all of them stop together. A single Budget
// object may also be polled from several threads at once (all state is
// atomic or shared via the latch).

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>

namespace ftsynth {

/// Resource limits for one pipeline stage. Value type: engines copy the
/// budget into their run state; copies share the deadline latch (see the
/// header comment).
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;
  Budget(const Budget& other)
      : max_depth(other.max_depth),
        max_nodes(other.max_nodes),
        deadline_(other.deadline_),
        latch_(other.latch_) {
    expired_.store(other.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  Budget& operator=(const Budget& other) {
    if (this == &other) return *this;
    max_depth = other.max_depth;
    max_nodes = other.max_nodes;
    deadline_ = other.deadline_;
    latch_ = other.latch_;
    expired_.store(other.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// Traversal / recursion depth ceiling (synthesis stack, parser nesting).
  /// Deep enough for any sane model; shallow enough that a pathological
  /// 100k-level nesting becomes a diagnostic, not a stack overflow.
  std::size_t max_depth = 5000;

  /// Fault-tree node ceiling for synthesis (0 = unlimited).
  std::size_t max_nodes = 0;

  /// Starts the wall-clock deadline `ms` from now (monotonic clock) and
  /// arms the shared latch: copies taken from this Budget afterwards all
  /// expire together.
  void set_deadline_ms(long ms) {
    set_deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    latch_ = std::make_shared<std::atomic<bool>>(false);
    expired_.store(false, std::memory_order_relaxed);
  }
  void clear_deadline() {
    deadline_.reset();
    latch_.reset();
    expired_.store(false, std::memory_order_relaxed);
  }
  bool has_deadline() const noexcept { return deadline_.has_value(); }

  /// Latches expiry now, without a deadline having passed, on this copy
  /// and -- through the shared latch -- on every other copy taken since
  /// set_deadline(). Used to cancel the remaining work of a batch.
  void force_expire() {
    if (!latch_) latch_ = std::make_shared<std::atomic<bool>>(false);
    mark_expired();
  }

  /// Immediate deadline check (reads the clock).
  bool expired() const noexcept {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (latch_ && latch_->load(std::memory_order_relaxed)) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (!deadline_) return false;
    if (Clock::now() < *deadline_) return false;
    mark_expired();
    return true;
  }

  /// Amortised deadline check for hot loops: reads the clock only once
  /// every kStride calls. Once expired (here, on any sharing copy, or via
  /// force_expire) it stays expired, so callers can unwind cheaply.
  bool poll() noexcept {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (!deadline_ && !latch_) return false;
    // Per-thread stride counter: a shared fetch_add would bounce one cache
    // line between every worker polling the same budget object (the
    // diagram managers hand all conversion workers a single Budget*). The
    // counter amortises clock reads, so sharing it across unrelated
    // Budget objects on one thread is harmless.
    thread_local unsigned tick = 0;
    if (++tick % kStride != 0) return false;
    return expired();
  }

 private:
  static constexpr unsigned kStride = 64;

  void mark_expired() const noexcept {
    expired_.store(true, std::memory_order_relaxed);
    if (latch_) latch_->store(true, std::memory_order_relaxed);
  }

  std::optional<Clock::time_point> deadline_;
  /// Latched expiry shared by all copies taken after set_deadline().
  std::shared_ptr<std::atomic<bool>> latch_;
  mutable std::atomic<bool> expired_{false};
};

/// Which limits fired during a budgeted run. Merged upward so a pipeline
/// can accumulate reports across stages.
struct BudgetReport {
  bool deadline_exceeded = false;  ///< wall-clock deadline hit
  bool depth_limited = false;      ///< recursion depth ceiling hit
  bool truncated = false;          ///< any count ceiling (nodes/sets/order) hit

  bool clean() const noexcept {
    return !deadline_exceeded && !depth_limited && !truncated;
  }

  void merge(const BudgetReport& other) noexcept {
    deadline_exceeded = deadline_exceeded || other.deadline_exceeded;
    depth_limited = depth_limited || other.depth_limited;
    truncated = truncated || other.truncated;
  }

  /// "deadline exceeded, depth limited" or "complete".
  std::string to_string() const;
};

}  // namespace ftsynth
