// Structured diagnostics for the analysis pipeline.
//
// The paper's tool chain is meant to run on large, engineer-authored
// models; a single typo must not kill a whole run. Instead of throwing on
// the first problem, resilient pipeline stages (the .mdl parser, the
// annotation interpreter, degraded-mode synthesis, structural validation)
// append Diagnostic records to a DiagnosticSink and keep going, so one run
// reports *every* problem it can find. Fail-fast behaviour remains
// available by simply not providing a sink (the library then throws
// ftsynth::Error as before).

#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.h"
#include "core/sync.h"

namespace ftsynth {

/// Severity of a diagnostic or validation issue. (Shared with
/// model/validate.h, which predates this module.)
enum class Severity { kWarning, kError };

std::string_view to_string(Severity severity) noexcept;

/// A position in the source text of a model file or expression.
/// Line/column are 1-based; 0 means unknown.
struct SourceLocation {
  int line = 0;
  int column = 0;

  bool known() const noexcept { return line > 0; }

  /// "12:5", "12" (no column) or "" (unknown).
  std::string to_string() const;
};

/// One structured problem report from any pipeline stage.
struct Diagnostic {
  Severity severity = Severity::kError;
  ErrorKind kind = ErrorKind::kParse;
  SourceLocation location;     ///< where in the source text, if known
  std::string block_path;      ///< owning block's hierarchical path, if any
  std::string message;

  /// "error[parse] 12:5 at bbw/pedal_node: unknown BlockType 'Blok'".
  std::string to_string() const;
};

/// Collects diagnostics across pipeline stages.
///
/// The sink caps the number of *errors* it retains (warnings are always
/// kept): once `max_errors` errors have been reported the sink is
/// `saturated()` and recovering parsers should stop producing more;
/// further errors only bump `dropped()`. This bounds both memory and the
/// time a pathological input can spend in error recovery.
///
/// Concurrency: report() and the counter accessors are safe to call from
/// many threads sharing one sink -- the cap is applied atomically, no
/// diagnostic is lost, and the counts stay exact. The counters live in
/// padded atomics, so the accessors recovering parsers poll in their hot
/// loops (saturated(), error_count()) are lock-free reads that never
/// contend with an appending producer. The order in which concurrent
/// reports land is scheduling-dependent, so deterministic pipelines (the
/// batch orchestrator) collect into per-item sinks and merge them in item
/// order instead of reporting concurrently. diagnostics() returns a
/// reference into the sink: only read it once all producers are done.
class DiagnosticSink {
 public:
  static constexpr std::size_t kDefaultMaxErrors = 100;

  explicit DiagnosticSink(std::size_t max_errors = kDefaultMaxErrors)
      : max_errors_(max_errors == 0 ? 1 : max_errors) {}

  void report(Diagnostic diagnostic);

  /// Convenience: report an error / warning built from parts.
  void error(ErrorKind kind, std::string message, SourceLocation location = {},
             std::string block_path = {});
  void warning(ErrorKind kind, std::string message,
               SourceLocation location = {}, std::string block_path = {});

  /// Records a caught ftsynth::Error (location recovered from ParseError).
  void error_from(const Error& error, std::string block_path = {});

  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

  std::size_t error_count() const { return error_count_.load(); }
  std::size_t warning_count() const { return warning_count_.load(); }
  bool has_errors() const { return error_count() > 0; }
  bool empty() const {
    return kept_errors_.load() + warning_count_.load() == 0;
  }

  /// True once the error cap is reached; producers should give up on
  /// recovery and synchronise to the end of their input.
  bool saturated() const { return kept_errors_.load() >= max_errors_; }

  /// Errors reported past the cap (counted, not stored).
  std::size_t dropped() const {
    return error_count_.load() - kept_errors_.load();
  }

  /// First error diagnostic, or nullptr when there is none.
  const Diagnostic* first_error() const noexcept;

  /// ErrorKind of the first error (used for exit-code mapping);
  /// ErrorKind::kInternal when there are no errors.
  ErrorKind first_error_kind() const noexcept;

  /// Renders all diagnostics as a boxed text table
  /// (severity | location | kind | where | message), with a trailing count
  /// summary line. Empty string when the sink is empty.
  std::string render_table() const;

 private:
  mutable std::mutex mutex_;  ///< guards the diagnostics_ vector
  std::size_t max_errors_;
  std::vector<Diagnostic> diagnostics_;
  // Counter mirrors, updated under mutex_ (so they stay mutually exact)
  // but readable without it. Each on its own cache line: a polling reader
  // never stalls an appending producer.
  PaddedAtomic<std::size_t> error_count_;  ///< including dropped
  PaddedAtomic<std::size_t> kept_errors_;
  PaddedAtomic<std::size_t> warning_count_;
};

}  // namespace ftsynth
