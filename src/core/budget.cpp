#include "core/budget.h"

namespace ftsynth {

std::string BudgetReport::to_string() const {
  if (clean()) return "complete";
  std::string out;
  auto append = [&](const char* what) {
    if (!out.empty()) out += ", ";
    out += what;
  };
  if (deadline_exceeded) append("deadline exceeded");
  if (depth_limited) append("depth limited");
  if (truncated) append("truncated");
  return out;
}

}  // namespace ftsynth
