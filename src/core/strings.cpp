#include "core/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ftsynth {

namespace {

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(trim(text.substr(start)));
      break;
    }
    parts.emplace_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool iequals(std::string_view text, std::string_view other) noexcept {
  if (text.size() != other.size()) return false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(other[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string escape_quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string escape_xml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string format_double(double value) {
  // Shortest %g form that still round-trips through strtod.
  char buffer[64];
  for (int precision = 12; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  auto head = static_cast<unsigned char>(name.front());
  if (!std::isalpha(head) && name.front() != '_') return false;
  for (char c : name.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

}  // namespace ftsynth
