#include "core/thread_pool.h"

namespace ftsynth {

unsigned ThreadPool::hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(int threads) {
  std::size_t count = threads <= 0 ? hardware_threads()
                                   : static_cast<std::size_t>(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    threads_.emplace_back([this, i] { run_worker(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(Task task) {
  const std::size_t queue =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[queue]->mutex);
    workers_[queue]->queue.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++pending_;
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop_local(std::size_t index, Task& task) {
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.queue.empty()) return false;
  task = std::move(worker.queue.back());  // LIFO: most recent, cache-warm
  worker.queue.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& task) {
  const std::size_t count = workers_.size();
  for (std::size_t offset = 1; offset < count; ++offset) {
    Worker& victim = *workers_[(thief + offset) % count];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.front());  // FIFO: steal the oldest
    victim.queue.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::run_worker(std::size_t index) {
  while (true) {
    Task task;
    if (try_pop_local(index, task) || try_steal(index, task)) {
      {
        // pending_ may dip below zero transiently when a task is taken
        // between its push and its counter increment; it is consistent
        // again once the in-flight submit completes (hence the signed
        // counter).
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ <= 0) return;  // drained: nothing left to take
  }
}

}  // namespace ftsynth
