// Interned strings.
//
// Fault tree synthesis keys nodes on (block path, port, failure class)
// triples and the analyses hash millions of basic-event names while
// expanding cut sets. Interning turns those string comparisons into pointer
// comparisons and de-duplicates storage.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace ftsynth {

/// A handle to an interned, immutable string. Cheap to copy and compare;
/// two Symbols made from equal strings compare equal by pointer identity.
/// The empty Symbol{} is a distinct null value (text() == "").
class Symbol {
 public:
  /// Null symbol; view() returns an empty string.
  constexpr Symbol() noexcept = default;

  /// Interns `text` in the process-wide table (thread-safe).
  explicit Symbol(std::string_view text);

  std::string_view view() const noexcept {
    return text_ ? std::string_view(*text_) : std::string_view();
  }
  const std::string& str() const;

  bool empty() const noexcept { return text_ == nullptr || text_->empty(); }

  friend bool operator==(Symbol a, Symbol b) noexcept {
    return a.text_ == b.text_;
  }
  friend bool operator!=(Symbol a, Symbol b) noexcept {
    return a.text_ != b.text_;
  }
  /// Orders by string content (stable across runs, unlike pointer order).
  friend bool operator<(Symbol a, Symbol b) noexcept {
    return a.view() < b.view();
  }

  /// Hash of the underlying pointer -- O(1), independent of string length.
  std::size_t hash() const noexcept {
    return std::hash<const std::string*>{}(text_);
  }

 private:
  const std::string* text_ = nullptr;
};

}  // namespace ftsynth

template <>
struct std::hash<ftsynth::Symbol> {
  std::size_t operator()(ftsynth::Symbol s) const noexcept { return s.hash(); }
};
