// Structured parallel loops over a ThreadPool.
//
// parallel_for / parallel_map are the only constructs the analysis stack
// uses on top of the raw pool, and they encode the invariants every
// parallel stage of the pipeline relies on:
//
//   * Determinism by indexing, not ordering: the body receives an index
//     and writes into a pre-sized slot, so the result is identical to a
//     serial loop no matter how iterations interleave.
//   * The calling thread participates. A loop is never blocked on an idle
//     pool, a null pool degrades to the plain serial loop (`--jobs 1` is
//     byte-for-byte today's code path), and nested loops cannot deadlock:
//     the caller drains every iteration no worker picks up, and only ever
//     waits on iterations that are actively executing elsewhere.
//   * Exceptions are contained: every iteration runs (no early abort --
//     budget latches make post-deadline iterations cheap instead), the
//     first exception in *index order is not guaranteed*; the first one
//     observed is rethrown after the loop completes.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/thread_pool.h"

namespace ftsynth {

/// Runs body(i) for every i in [0, count). Blocks until all iterations
/// finished; rethrows the first captured exception. `pool` may be null or
/// single-threaded, in which case the loop is plainly serial.
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t count, const Body& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->size() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct State {
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t completed = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->count = count;

  auto runner = [state, &body] {
    while (true) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (++state->completed == state->count) state->done.notify_all();
    }
  };

  // The runners only touch `state` (kept alive by the shared_ptr) and the
  // caller-owned body, which outlives the wait below. Helpers that find
  // the index range already drained exit immediately.
  const std::size_t helpers = std::min(pool->size(), count - 1);
  for (std::size_t i = 0; i < helpers; ++i) pool->submit(runner);
  runner();  // the caller claims iterations too

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->completed == state->count; });
  if (state->error) std::rethrow_exception(state->error);
}

/// Maps body(i) over [0, count), collecting the results in index order.
/// The result type only needs to be movable (slots are std::optional).
template <typename Body>
auto parallel_map(ThreadPool* pool, std::size_t count, const Body& body)
    -> std::vector<decltype(body(std::size_t{0}))> {
  using Result = decltype(body(std::size_t{0}));
  std::vector<std::optional<Result>> slots(count);
  parallel_for(pool, count,
               [&](std::size_t i) { slots[i].emplace(body(i)); });
  std::vector<Result> results;
  results.reserve(count);
  for (std::optional<Result>& slot : slots)
    results.push_back(std::move(*slot));
  return results;
}

}  // namespace ftsynth
