#include "core/symbol.h"

#include <mutex>
#include <unordered_set>

namespace ftsynth {

namespace {

/// Process-wide intern table. Node-based so element addresses are stable.
/// Sharded by string hash: parallel synthesis interns heavily (every event
/// and gate name), and a single mutex serialises the whole fleet.
class Interner {
 public:
  const std::string* intern(std::string_view text) {
    Shard& shard = shards_[std::hash<std::string_view>{}(text) % kShards];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.table.emplace(text);
    return &*it;
  }

  static Interner& instance() {
    static Interner interner;
    return interner;
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    std::mutex mutex;
    std::unordered_set<std::string> table;
  };
  Shard shards_[kShards];
};

const std::string& empty_string() {
  static const std::string empty;
  return empty;
}

}  // namespace

Symbol::Symbol(std::string_view text)
    : text_(Interner::instance().intern(text)) {}

const std::string& Symbol::str() const {
  return text_ ? *text_ : empty_string();
}

}  // namespace ftsynth
