// Work-stealing thread pool.
//
// The analysis pipeline is embarrassingly parallel at several levels: one
// model has many top events, one Monte Carlo run has many independent
// shards, one subsumption pass has many independent candidates. All of
// them funnel through this pool so the process owns exactly one set of
// worker threads, sized once (the CLI's --jobs flag).
//
// Design: every worker owns a deque. Tasks submitted from outside the
// pool are dealt round-robin across the deques; a worker pops from the
// back of its own deque (LIFO, cache-warm) and, when empty, steals from
// the front of a sibling's deque (FIFO, oldest first -- the classic
// work-stealing discipline). Each deque is guarded by its own mutex: the
// queues are short and the tasks coarse (a whole fault-tree synthesis, a
// Monte Carlo shard), so lock-free deques would buy nothing here while
// costing a lot of subtle code.
//
// Scheduling is *not* deterministic -- determinism is the callers'
// responsibility and is achieved by indexing results into pre-sized slots
// (see core/parallel.h) rather than by ordering execution.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ftsynth {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers; <= 0 uses the hardware concurrency.
  explicit ThreadPool(int threads = 0);

  /// Joins all workers. Pending tasks are still executed (drain, then
  /// stop): a destructor that drops tasks would silently lose work.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void submit(Task task);

  /// Hardware concurrency with a floor of 1 (std::thread reports 0 when
  /// it cannot tell).
  static unsigned hardware_threads() noexcept;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
  };

  void run_worker(std::size_t index);
  bool try_pop_local(std::size_t index, Task& task);
  bool try_steal(std::size_t thief, Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  /// Tasks submitted but not yet taken by a worker. Signed: may dip below
  /// zero transiently while a submit is between its queue push and its
  /// counter increment.
  std::ptrdiff_t pending_ = 0;
  bool stop_ = false;

  std::atomic<std::size_t> next_queue_{0};  ///< round-robin submission cursor
};

}  // namespace ftsynth
