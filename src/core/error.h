// Error handling for ftsynth.
//
// Following the C++ Core Guidelines (I.10, E.2) the library signals failure
// to perform a required task with exceptions. All ftsynth exceptions derive
// from ftsynth::Error, which carries an error category so callers can
// distinguish user-input problems (bad model file, malformed expression)
// from internal invariant violations.

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ftsynth {

/// Broad classification of an Error, so tools wrapping the library can map
/// failures onto exit codes / diagnostics without string matching.
enum class ErrorKind {
  /// Malformed input: model file syntax, expression syntax, bad parameters.
  kParse,
  /// Structurally invalid model: dangling connection, duplicate name,
  /// type mismatch between connected ports.
  kModel,
  /// A requested entity does not exist (port, block, failure class, ...).
  kLookup,
  /// The synthesis or analysis hit an unsupported or inconsistent situation.
  kAnalysis,
  /// Internal invariant violation -- a bug in ftsynth itself.
  kInternal,
};

/// Human-readable name of an ErrorKind ("parse", "model", ...).
std::string_view to_string(ErrorKind kind) noexcept;

/// Base exception for all ftsynth failures.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message);

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Thrown by the .mdl and expression parsers; carries a source location.
class ParseError : public Error {
 public:
  ParseError(const std::string& message, int line, int column);

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Throws Error{kind} with `message` unless `condition` holds.
void require(bool condition, ErrorKind kind, const std::string& message);

/// require() specialised for internal invariants (ErrorKind::kInternal).
void check_internal(bool condition, const std::string& message);

}  // namespace ftsynth
