#include "core/error.h"

namespace ftsynth {

std::string_view to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kParse:
      return "parse";
    case ErrorKind::kModel:
      return "model";
    case ErrorKind::kLookup:
      return "lookup";
    case ErrorKind::kAnalysis:
      return "analysis";
    case ErrorKind::kInternal:
      return "internal";
  }
  return "unknown";
}

Error::Error(ErrorKind kind, const std::string& message)
    : std::runtime_error("[" + std::string(to_string(kind)) + "] " + message),
      kind_(kind) {}

ParseError::ParseError(const std::string& message, int line, int column)
    : Error(ErrorKind::kParse, message + " (line " + std::to_string(line) +
                                   ", column " + std::to_string(column) + ")"),
      line_(line),
      column_(column) {}

void require(bool condition, ErrorKind kind, const std::string& message) {
  if (!condition) throw Error(kind, message);
}

void check_internal(bool condition, const std::string& message) {
  if (!condition) throw Error(ErrorKind::kInternal, message);
}

}  // namespace ftsynth
