#include "core/text_table.h"

#include "core/error.h"

namespace ftsynth {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), ErrorKind::kInternal,
          "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), ErrorKind::kInternal,
          "TextTable row has " + std::to_string(cells.size()) +
              " cells, expected " + std::to_string(headers_.size()));
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  std::string out = rule() + emit(headers_) + rule();
  for (const auto& row : rows_) out += emit(row);
  out += rule();
  return out;
}

}  // namespace ftsynth
