// Small string utilities shared across ftsynth modules. Everything operates
// on std::string_view where possible and allocates only where a new string is
// genuinely produced.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ftsynth {

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// Splits `text` on `separator`, trimming each piece; empty pieces are kept.
std::vector<std::string> split(std::string_view text, char separator);

/// Joins `parts` with `separator` ("a", "b" -> "a<sep>b").
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `text` equals `other` ignoring ASCII case.
bool iequals(std::string_view text, std::string_view other) noexcept;

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Escapes ", \ and control characters for embedding in quoted strings
/// (used by the .mdl writer and the JSON/XML exporters).
std::string escape_quoted(std::string_view text);

/// Escapes &, <, >, " for XML attribute/text content.
std::string escape_xml(std::string_view text);

/// Formats a double compactly ("1e-06", "0.25") for reports and exporters;
/// round-trips through strtod.
std::string format_double(double value);

/// True when `name` is a valid ftsynth identifier:
/// [A-Za-z_][A-Za-z0-9_]*  (block, port, malfunction names).
bool is_identifier(std::string_view name) noexcept;

}  // namespace ftsynth
