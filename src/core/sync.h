// Scalable-synchronization building blocks for the sharded diagram
// managers and the intra-tree parallel conversion (DESIGN.md section 12).
//
// The shapes here follow the classic scalable-synchronization playbook:
// counters that different threads bump concurrently live on their own
// cache line (no false sharing), shared hot structures are split into
// striped, hash-addressed shards so writers serialise only per shard, and
// rare global phases (garbage collection, variable reordering) park every
// worker at a generation-counted rendezvous instead of taking a big lock
// around the hot path.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace ftsynth {

/// The alignment used to keep independently-written hot words on their
/// own cache line. hardware_destructive_interference_size would be the
/// textbook constant, but libstdc++ gates it behind a warning and 64 is
/// right for every target this project builds on.
inline constexpr std::size_t kCacheLineSize = 64;

/// An atomic counter padded to a full cache line. Use one per thread (or
/// per shard) for statistics that are aggregated at read time: writers
/// stay relaxed and never bounce each other's lines.
template <typename T>
struct alignas(kCacheLineSize) PaddedAtomic {
  std::atomic<T> value{};

  void add(T delta, std::memory_order order = std::memory_order_relaxed) {
    value.fetch_add(delta, order);
  }
  T load(std::memory_order order = std::memory_order_relaxed) const {
    return value.load(order);
  }
  void store(T v, std::memory_order order = std::memory_order_relaxed) {
    value.store(v, order);
  }
};

/// Mixes a hash into a shard index in [0, 1 << bits). The multiplier is
/// the 64-bit golden ratio; taking the TOP bits decorrelates shard choice
/// from the low bits unordered_map buckets consume, so one shard's map
/// does not see a biased key distribution.
inline std::size_t shard_index(std::size_t hash, unsigned bits) noexcept {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(hash) * 0x9E3779B97F4A7C15ull) >>
      (64 - bits));
}

}  // namespace ftsynth
