// Plain-text table rendering for analysis reports. Produces the boxed,
// column-aligned tables used to reproduce the paper's Figure 2 hazard
// analysis table and the benchmark report rows.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ftsynth {

/// Builds a column-aligned ASCII table.
///
///   TextTable t({"Failure Mode", "Input Deviation Logic", "lambda(f/h)"});
///   t.add_row({"Omission-output", "Omission-in1 AND Omission-in2", "5e-7"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with +---+ borders, one line per row.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftsynth
