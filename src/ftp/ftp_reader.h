// Reader for the FTP-style project text written by ftp/ftp_writer.h --
// the import half of the paper's Fault Tree Plus hand-off, so projects
// can be exchanged in both directions (and the exporter is testable by
// round-trip).
//
// Loss notes: loop events are exported as UNDEVELOPED (FTP has no loop
// primitive) and come back as undeveloped events; gate names are
// regenerated (G1, G2, ...) preserving order.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fta/fault_tree.h"

namespace ftsynth {

struct FtpProject {
  std::string name;
  std::vector<FaultTree> trees;
};

/// Parses a project document; throws ParseError on malformed input and
/// ErrorKind::kParse on dangling references.
FtpProject read_ftp_project(std::string_view text);

}  // namespace ftsynth
