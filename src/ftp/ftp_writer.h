// Fault Tree Plus-style project export.
//
// The paper's tool writes synthesized trees "in the binary format of a
// Fault Tree Plus project file" for import into Isograph's tool (section
// 3). That binary format is proprietary, so this exporter produces the
// equivalent *documented text* project format: a [PROJECT] header, one
// [GATE] record per intermediate event (id, type, description, inputs) and
// one [EVENT] record per primary event (id, kind, failure rate,
// description) -- the exact information FTP needs for cut-set and
// reliability analysis. See DESIGN.md, substitution table.
//
// Several trees may be exported into one project; shared event ids are
// written once.

#pragma once

#include <string>
#include <vector>

#include "fta/fault_tree.h"

namespace ftsynth {

/// Serialises `trees` as one FTP-style project.
std::string write_ftp_project(const std::string& project_name,
                              const std::vector<const FaultTree*>& trees);

/// Single-tree convenience.
std::string write_ftp_project(const std::string& project_name,
                              const FaultTree& tree);

/// Writes the project to `path`; throws ErrorKind::kParse on I/O failure.
void write_ftp_project_file(const std::string& project_name,
                            const std::vector<const FaultTree*>& trees,
                            const std::string& path);

}  // namespace ftsynth
