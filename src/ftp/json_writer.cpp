#include "ftp/json_writer.h"

#include <fstream>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

std::string quote(std::string_view text) {
  return "\"" + escape_quoted(text) + "\"";
}

void write_nodes(const FaultTree& tree, std::string& out) {
  out += "  \"nodes\": [\n";
  bool first = true;
  tree.for_each_reachable([&](const FtNode& node) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"id\": " + std::to_string(node.id()) +
           ", \"name\": " + quote(node.name().view()) +
           ", \"kind\": " + quote(to_string(node.kind()));
    if (node.kind() == NodeKind::kGate) {
      out += ", \"gate\": " + quote(to_string(node.gate())) +
             ", \"children\": [";
      for (std::size_t i = 0; i < node.children().size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(node.children()[i]->id());
      }
      out += "]";
    }
    if (node.rate() > 0.0) out += ", \"rate\": " + format_double(node.rate());
    if (node.has_fixed_probability())
      out += ", \"probability\": " + format_double(node.fixed_probability());
    if (!node.description().empty())
      out += ", \"description\": " + quote(node.description());
    out += "}";
  });
  out += "\n  ]";
}

}  // namespace

std::string write_json(const FaultTree& tree) {
  std::string out = "{\n";
  out += "  \"name\": " + quote(tree.name()) + ",\n";
  out += "  \"top_event\": " + quote(tree.top_description()) + ",\n";
  out += "  \"top\": " +
         (tree.top() != nullptr ? std::to_string(tree.top()->id())
                                : std::string("null")) +
         ",\n";
  write_nodes(tree, out);
  out += "\n}\n";
  return out;
}

std::string write_json(const FaultTree& tree, const TreeAnalysis& analysis) {
  std::string out = "{\n";
  out += "  \"name\": " + quote(tree.name()) + ",\n";
  out += "  \"top_event\": " + quote(tree.top_description()) + ",\n";
  out += "  \"top\": " +
         (tree.top() != nullptr ? std::to_string(tree.top()->id())
                                : std::string("null")) +
         ",\n";
  write_nodes(tree, out);
  out += ",\n  \"probability\": {\"rare_event\": " +
         format_double(analysis.p_rare_event) +
         ", \"esary_proschan\": " + format_double(analysis.p_esary_proschan) +
         ", \"mcub\": " + format_double(analysis.p_mcub) +
         ", \"exact\": " + format_double(analysis.p_exact);
  if (analysis.p_lower && analysis.p_upper) {
    // Bound-engine runs: the certified interval; "exact" above stays 0 on
    // this path (no whole-tree BDD is built). Exact-engine JSON is
    // unchanged -- these keys only appear for --engine bound.
    out += ", \"p_lower\": " + format_double(*analysis.p_lower) +
           ", \"p_upper\": " + format_double(*analysis.p_upper) +
           ", \"converged\": " +
           (analysis.bound_converged ? "true" : "false");
  }
  out += "},\n";

  out += "  \"cut_sets\": [\n";
  for (std::size_t i = 0; i < analysis.cut_sets.cut_sets.size(); ++i) {
    const CutSet& cs = analysis.cut_sets.cut_sets[i];
    out += "    [";
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (j != 0) out += ", ";
      std::string name = std::string(cs[j].event->name().view());
      out += quote(cs[j].negated ? "!" + name : name);
    }
    out += "]";
    if (i + 1 != analysis.cut_sets.cut_sets.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"cut_sets_truncated\": " +
         std::string(analysis.cut_sets.truncated ? "true" : "false") + ",\n";

  out += "  \"importance\": [\n";
  for (std::size_t i = 0; i < analysis.importance.size(); ++i) {
    const ImportanceEntry& entry = analysis.importance[i];
    out += "    {\"event\": " + quote(entry.event->name().view()) +
           ", \"fussell_vesely\": " + format_double(entry.fussell_vesely) +
           ", \"birnbaum\": " + format_double(entry.birnbaum) + "}";
    if (i + 1 != analysis.importance.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string write_json(const std::vector<const FaultTree*>& trees,
                       const std::vector<const TreeAnalysis*>& analyses,
                       const std::vector<SequenceSummary>& sequences) {
  std::string out = "{\n\"trees\": [\n";
  for (std::size_t i = 0; i < trees.size(); ++i) {
    // Each element is the single-tree document verbatim (sans trailing
    // newline), so downstream consumers parse one schema either way.
    std::string doc = i < analyses.size() ? write_json(*trees[i], *analyses[i])
                                          : write_json(*trees[i]);
    if (!doc.empty() && doc.back() == '\n') doc.pop_back();
    out += doc;
    out += i + 1 != trees.size() ? ",\n" : "\n";
  }
  out += "],\n\"sequences\": [\n";
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const SequenceSummary& row = sequences[i];
    out += "  {\"name\": " + quote(row.name) +
           ", \"probability\": " + format_double(row.probability);
    if (row.p_lower && row.p_upper) {
      out += ", \"p_lower\": " + format_double(*row.p_lower) +
             ", \"p_upper\": " + format_double(*row.p_upper);
    }
    out += ", \"cut_sets\": " + std::to_string(row.cut_set_count) +
           ", \"min_order\": " + std::to_string(row.min_order) +
           ", \"truncated\": " + (row.truncated ? "true" : "false") + "}";
    if (i + 1 != sequences.size()) out += ",";
    out += "\n";
  }
  out += "]\n}\n";
  return out;
}

void write_json_file(const FaultTree& tree, const std::string& path) {
  std::ofstream file(path);
  require(file.good(), ErrorKind::kParse,
          "cannot open '" + path + "' for writing");
  file << write_json(tree);
  require(file.good(), ErrorKind::kParse, "failed writing '" + path + "'");
}

}  // namespace ftsynth
