// JSON export: the fault tree DAG plus (optionally) the cut-set analysis
// in one machine-readable document, for dashboards and regression diffing.

#pragma once

#include <string>
#include <vector>

#include "analysis/event_tree.h"
#include "analysis/report.h"
#include "fta/fault_tree.h"

namespace ftsynth {

/// {"name": ..., "top": id, "nodes": [...]}; children are node ids.
std::string write_json(const FaultTree& tree);

/// Tree plus its TreeAnalysis (cut sets, probabilities, importance).
std::string write_json(const FaultTree& tree, const TreeAnalysis& analysis);

/// Several analysed trees (parallel vectors) in one document:
/// {"trees": [...], "sequences": [...]} -- the Open-PSA
/// `analyse --format json` output; "sequences" lists the event-tree rows
/// (empty array when the model has none).
std::string write_json(const std::vector<const FaultTree*>& trees,
                       const std::vector<const TreeAnalysis*>& analyses,
                       const std::vector<SequenceSummary>& sequences);

void write_json_file(const FaultTree& tree, const std::string& path);

}  // namespace ftsynth
