#include "ftp/ftp_writer.h"

#include <fstream>
#include <unordered_set>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

std::string event_kind(const FtNode& node) {
  switch (node.kind()) {
    case NodeKind::kBasic:
      return "BASIC";
    case NodeKind::kHouse:
      return "HOUSE";
    case NodeKind::kUndeveloped:
      return "UNDEVELOPED";
    case NodeKind::kLoop:
      return "UNDEVELOPED";  // FTP has no loop primitive; export as undeveloped
    case NodeKind::kGate:
      break;
  }
  throw Error(ErrorKind::kInternal, "event_kind on a gate");
}

std::string gate_type(GateKind kind) {
  switch (kind) {
    case GateKind::kAnd:
      return "AND";
    case GateKind::kOr:
      return "OR";
    case GateKind::kNot:
      return "NOT";
    case GateKind::kPand:
      return "PAND";
  }
  return "OR";
}

}  // namespace

std::string write_ftp_project(const std::string& project_name,
                              const std::vector<const FaultTree*>& trees) {
  std::string out;
  out += "[PROJECT]\n";
  out += "Name=" + project_name + "\n";
  out += "Format=FTSYNTH-FTP-TEXT 1.0\n";
  out += "Trees=" + std::to_string(trees.size()) + "\n\n";

  // Events shared between trees (common-cause across top events) are
  // emitted once, keyed by name.
  std::unordered_set<Symbol> emitted_events;

  for (const FaultTree* tree : trees) {
    out += "[TREE]\n";
    out += "Name=" + tree->name() + "\n";
    out += "TopEvent=" + tree->top_description() + "\n";
    std::string top_id = "NONE";
    if (const FtNode* top = tree->top()) {
      top_id = top->is_leaf() ? top->name().str()
                              : tree->name() + ":" + top->name().str();
    }
    out += "TopGate=" + top_id + "\n\n";
    if (tree->top() == nullptr) continue;

    // Children-first order so FTP can resolve inputs on one pass.
    tree->for_each_reachable([&](const FtNode& node) {
      if (node.is_leaf()) {
        if (!emitted_events.insert(node.name()).second) return;
        out += "[EVENT]\n";
        out += "Id=" + node.name().str() + "\n";
        out += "Kind=" + event_kind(node) + "\n";
        if (node.rate() > 0.0)
          out += "FailureRate=" + format_double(node.rate()) + "\n";
        if (node.has_fixed_probability())
          out += "FixedProbability=" +
                 format_double(node.fixed_probability()) + "\n";
        if (node.kind() == NodeKind::kHouse) out += "State=TRUE\n";
        if (!node.description().empty())
          out += "Description=" + node.description() + "\n";
        out += "\n";
        return;
      }
      out += "[GATE]\n";
      out += "Id=" + tree->name() + ":" + node.name().str() + "\n";
      out += "Type=" + gate_type(node.gate()) + "\n";
      if (!node.description().empty())
        out += "Description=" + node.description() + "\n";
      out += "Inputs=";
      for (std::size_t i = 0; i < node.children().size(); ++i) {
        const FtNode* child = node.children()[i];
        if (i != 0) out += ",";
        if (child->is_leaf()) {
          out += child->name().str();
        } else {
          out += tree->name() + ":" + child->name().str();
        }
      }
      out += "\n\n";
    });
  }
  return out;
}

std::string write_ftp_project(const std::string& project_name,
                              const FaultTree& tree) {
  return write_ftp_project(project_name, std::vector<const FaultTree*>{&tree});
}

void write_ftp_project_file(const std::string& project_name,
                            const std::vector<const FaultTree*>& trees,
                            const std::string& path) {
  std::ofstream file(path);
  require(file.good(), ErrorKind::kParse,
          "cannot open '" + path + "' for writing");
  file << write_ftp_project(project_name, trees);
  require(file.good(), ErrorKind::kParse, "failed writing '" + path + "'");
}

}  // namespace ftsynth
