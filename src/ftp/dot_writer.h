// Graphviz DOT export of fault trees: gates as boxes (AND/OR/NOT), basic
// events as circles, undeveloped events as diamonds, house events as
// houses -- the classical fault tree symbols, flattened onto DOT shapes.
// Shared DAG nodes appear once with multiple incoming edges, which makes
// common-cause structure visible at a glance.

#pragma once

#include <string>

#include "fta/fault_tree.h"

namespace ftsynth {

std::string write_dot(const FaultTree& tree);

void write_dot_file(const FaultTree& tree, const std::string& path);

}  // namespace ftsynth
