// XML export of fault trees in an Open-PSA-inspired schema:
//
//   <fault-tree name="...">
//     <define-top description="..."> gate-or-event </define-top>
//     <define-gate name="G1" type="or"> <gate name="G2"/> <event .../>
//     </define-gate>
//     <define-event name="..." kind="basic" rate="1e-6"/>
//   </fault-tree>
//
// Gives downstream PSA tooling a structured, parseable interchange format
// alongside the FTP-style project text.

#pragma once

#include <string>
#include <vector>

#include "fta/fault_tree.h"

namespace ftsynth {

std::string write_xml(const FaultTree& tree);

/// Several trees under one <fault-tree-set> root.
std::string write_xml(const std::vector<const FaultTree*>& trees);

void write_xml_file(const FaultTree& tree, const std::string& path);

}  // namespace ftsynth
