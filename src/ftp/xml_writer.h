// XML export of fault trees in an Open-PSA-inspired schema:
//
//   <fault-tree name="...">
//     <define-top description="..."> gate-or-event </define-top>
//     <define-gate name="G1" type="or"> <gate name="G2"/> <event .../>
//     </define-gate>
//     <define-event name="..." kind="basic" rate="1e-6"/>
//   </fault-tree>
//
// Gives downstream PSA tooling a structured, parseable interchange format
// alongside the FTP-style project text.

#pragma once

#include <string>
#include <vector>

#include "analysis/event_tree.h"
#include "analysis/report.h"
#include "fta/fault_tree.h"

namespace ftsynth {

std::string write_xml(const FaultTree& tree);

/// Several trees under one <fault-tree-set> root.
std::string write_xml(const std::vector<const FaultTree*>& trees);

/// One tree plus its analysis results: the tree body followed by an
/// <analysis> element with the probability figures (the certified
/// interval for --engine bound runs, the classic bounds + exact number
/// otherwise) and the minimal cut sets.
std::string write_xml(const FaultTree& tree, const TreeAnalysis& analysis);

/// Several analysed trees (parallel vectors) under one root, followed by
/// a <sequences> element when event-tree sequence rows are present --
/// the Open-PSA `analyse --format xml` document.
std::string write_xml(const std::vector<const FaultTree*>& trees,
                      const std::vector<const TreeAnalysis*>& analyses,
                      const std::vector<SequenceSummary>& sequences);

void write_xml_file(const FaultTree& tree, const std::string& path);

}  // namespace ftsynth
