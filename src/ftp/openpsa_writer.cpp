#include "ftp/openpsa_writer.h"

#include <unordered_set>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

/// Reference to `node` inside a gate formula. Leaves are referenced as
/// basic/house events; gates by their (auto-assigned, per-tree unique)
/// "G<n>" name.
void write_reference(const FtNode& node, std::string& out,
                     const std::string& indent) {
  const std::string name = escape_xml(node.name().view());
  switch (node.kind()) {
    case NodeKind::kGate:
      out += indent + "<gate name=\"" + name + "\"/>\n";
      return;
    case NodeKind::kHouse:
      out += indent + "<house-event name=\"" + name + "\"/>\n";
      return;
    default:
      out += indent + "<basic-event name=\"" + name + "\"/>\n";
      return;
  }
}

void write_formula(const FtNode& gate, std::string& out) {
  const char* connective = nullptr;
  switch (gate.gate()) {
    case GateKind::kAnd:
      connective = "and";
      break;
    case GateKind::kOr:
      connective = "or";
      break;
    case GateKind::kNot:
      connective = "not";
      break;
    case GateKind::kPand:
      // The MEF has no ordered conjunction; exporting kPand as <and>
      // would silently drop the ordering semantics.
      throw Error(ErrorKind::kAnalysis,
                  "cannot export Priority-AND gate '" +
                      std::string(gate.name().view()) + "' to Open-PSA");
  }
  out += "      <" + std::string(connective) + ">\n";
  for (const FtNode* child : gate.children())
    write_reference(*child, out, "        ");
  out += "      </" + std::string(connective) + ">\n";
}

void write_gate(const FtNode& gate, const std::string& label,
                std::string& out) {
  out += "    <define-gate name=\"" + escape_xml(gate.name().view()) +
         "\">\n";
  if (!label.empty())
    out += "      <label>" + escape_xml(label) + "</label>\n";
  write_formula(gate, out);
  out += "    </define-gate>\n";
}

void write_fault_tree(const FaultTree& tree, std::string& out) {
  out += "  <define-fault-tree name=\"" + escape_xml(tree.name()) + "\">\n";
  const FtNode* top = tree.top();
  if (top == nullptr) {
    // Impossible top: a constant-false root gate imports back to the
    // null-top convention (probability 0).
    out += "    <define-gate name=\"top\">\n";
    if (!tree.top_description().empty()) {
      out += "      <label>" + escape_xml(tree.top_description()) +
             "</label>\n";
    }
    out += "      <bool value=\"false\"/>\n";
    out += "    </define-gate>\n";
    out += "  </define-fault-tree>\n";
    return;
  }
  if (top->is_leaf()) {
    // A bare-leaf top needs a wrapper gate; single-operand connectives
    // collapse on import, so the wrapper leaves no structural trace.
    out += "    <define-gate name=\"top\">\n";
    if (!tree.top_description().empty()) {
      out += "      <label>" + escape_xml(tree.top_description()) +
             "</label>\n";
    }
    out += "      <and>\n";
    write_reference(*top, out, "        ");
    out += "      </and>\n";
    out += "    </define-gate>\n";
    out += "  </define-fault-tree>\n";
    return;
  }
  // Root gate first (it carries the top description as its label), then
  // the other gates children-before-parents.
  write_gate(*top, tree.top_description(), out);
  tree.for_each_reachable([&](const FtNode& node) {
    if (node.kind() != NodeKind::kGate || &node == top) return;
    write_gate(node, node.description(), out);
  });
  out += "  </define-fault-tree>\n";
}

void write_leaf_definition(const FtNode& leaf, std::string& out) {
  const std::string name = escape_xml(leaf.name().view());
  if (leaf.kind() == NodeKind::kHouse) {
    out += "    <define-house-event name=\"" + name + "\">\n";
    if (!leaf.description().empty())
      out += "      <label>" + escape_xml(leaf.description()) + "</label>\n";
    out += "      <constant value=\"true\"/>\n";
    out += "    </define-house-event>\n";
    return;
  }
  out += "    <define-basic-event name=\"" + name + "\">\n";
  if (!leaf.description().empty())
    out += "      <label>" + escape_xml(leaf.description()) + "</label>\n";
  if (leaf.kind() == NodeKind::kUndeveloped || leaf.kind() == NodeKind::kLoop) {
    out += "      <attributes>\n";
    out += std::string("        <attribute name=\"ftsynth-kind\" value=\"") +
           (leaf.kind() == NodeKind::kUndeveloped ? "undeveloped" : "loop") +
           "\"/>\n";
    out += "      </attributes>\n";
  }
  if (leaf.has_fixed_probability()) {
    out += "      <float value=\"" + format_double(leaf.fixed_probability()) +
           "\"/>\n";
  }
  if (leaf.rate() > 0.0) {
    out += "      <exponential>\n";
    out += "        <float value=\"" + format_double(leaf.rate()) + "\"/>\n";
    out += "        <system-mission-time/>\n";
    out += "      </exponential>\n";
  }
  out += "    </define-basic-event>\n";
}

}  // namespace

std::string write_openpsa(const std::vector<const FaultTree*>& trees) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  std::string name = trees.size() == 1 ? trees.front()->name() : "ftsynth";
  out += "<opsa-mef name=\"" + escape_xml(name) + "\">\n";
  for (const FaultTree* tree : trees) write_fault_tree(*tree, out);
  // Leaf definitions, deduplicated by name across trees (equal names are
  // the cross-tree common-cause convention and must stay one definition).
  out += "  <model-data>\n";
  std::unordered_set<Symbol> defined;
  for (const FaultTree* tree : trees) {
    tree->for_each_reachable([&](const FtNode& node) {
      if (node.kind() == NodeKind::kGate) return;
      if (!defined.insert(node.name()).second) return;
      write_leaf_definition(node, out);
    });
  }
  out += "  </model-data>\n";
  out += "</opsa-mef>\n";
  return out;
}

std::string write_openpsa(const FaultTree& tree) {
  return write_openpsa(std::vector<const FaultTree*>{&tree});
}

}  // namespace ftsynth
