#include "ftp/ftp_reader.h"

#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

/// One [SECTION] with its key=value pairs, in document order.
struct Record {
  std::string section;
  int line = 0;
  std::vector<std::pair<std::string, std::string>> fields;

  const std::string* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::string get(std::string_view key) const {
    const std::string* value = find(key);
    if (value == nullptr) {
      throw ParseError("[" + section + "] record is missing '" +
                           std::string(key) + "'",
                       line, 1);
    }
    return *value;
  }
  std::string get_or(std::string_view key, std::string fallback) const {
    const std::string* value = find(key);
    return value != nullptr ? *value : std::move(fallback);
  }
  double get_number(std::string_view key, double fallback) const {
    const std::string* value = find(key);
    if (value == nullptr) return fallback;
    char* end = nullptr;
    double parsed = std::strtod(value->c_str(), &end);
    if (end == nullptr || *end != '\0') {
      throw ParseError("field '" + std::string(key) + "' is not a number",
                       line, 1);
    }
    return parsed;
  }
};

std::vector<Record> parse_records(std::string_view text) {
  std::vector<Record> records;
  int line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t eol = text.find('\n', start);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, eol - start);
    ++line_number;
    start = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw ParseError("malformed section header", line_number, 1);
      records.push_back(
          {std::string(line.substr(1, line.size() - 2)), line_number, {}});
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw ParseError("expected 'Key=value'", line_number, 1);
    if (records.empty())
      throw ParseError("field outside any [SECTION]", line_number, 1);
    records.back().fields.emplace_back(std::string(trim(line.substr(0, eq))),
                                       std::string(trim(line.substr(eq + 1))));
  }
  return records;
}

}  // namespace

FtpProject read_ftp_project(std::string_view text) {
  const std::vector<Record> records = parse_records(text);
  FtpProject project;

  // Pass 1: the project header and the global event table.
  std::unordered_map<std::string, const Record*> events;
  for (const Record& record : records) {
    if (record.section == "PROJECT") {
      project.name = record.get_or("Name", "unnamed");
    } else if (record.section == "EVENT") {
      events.emplace(record.get("Id"), &record);
    }
  }

  // Pass 2: trees and their gates (written children-first).
  std::unique_ptr<FaultTree> tree;
  std::string pending_top;
  std::unordered_map<std::string, FtNode*> nodes;  // ids of the current tree

  auto leaf_for = [&](const std::string& id) -> FtNode* {
    check_internal(tree != nullptr, "event outside a tree");
    if (auto it = nodes.find(id); it != nodes.end()) return it->second;
    auto ev = events.find(id);
    require(ev != events.end(), ErrorKind::kParse,
            "project references undefined event '" + id + "'");
    const Record& record = *ev->second;
    const std::string kind = record.get_or("Kind", "BASIC");
    FtNode* node = nullptr;
    if (iequals(kind, "BASIC")) {
      node = tree->add_basic(Symbol(id), record.get_number("FailureRate", 0.0),
                             record.get_or("Description", ""), "");
      const double fixed = record.get_number("FixedProbability", -1.0);
      if (fixed >= 0.0) node->set_fixed_probability(fixed);
    } else if (iequals(kind, "HOUSE")) {
      node = tree->add_house(Symbol(id), record.get_or("Description", ""));
    } else if (iequals(kind, "UNDEVELOPED")) {
      node = tree->add_undeveloped(Symbol(id),
                                   record.get_or("Description", ""), "");
    } else {
      throw ParseError("unknown event kind '" + kind + "'", record.line, 1);
    }
    nodes.emplace(id, node);
    return node;
  };

  auto finish_tree = [&]() {
    if (tree == nullptr) return;
    if (pending_top != "NONE" && !pending_top.empty()) {
      auto it = nodes.find(pending_top);
      // The top may be a bare event never pulled in by a gate.
      FtNode* top = it != nodes.end() ? it->second : leaf_for(pending_top);
      tree->set_top(top);
    }
    project.trees.push_back(std::move(*tree));
    tree.reset();
    nodes.clear();
  };

  for (const Record& record : records) {
    if (record.section == "TREE") {
      finish_tree();
      tree = std::make_unique<FaultTree>(record.get_or("Name", "tree"));
      tree->set_top_description(record.get_or("TopEvent", ""));
      pending_top = record.get_or("TopGate", "NONE");
    } else if (record.section == "GATE") {
      require(tree != nullptr, ErrorKind::kParse,
              "[GATE] before any [TREE]");
      const std::string type = record.get("Type");
      GateKind kind = GateKind::kOr;
      if (iequals(type, "AND")) {
        kind = GateKind::kAnd;
      } else if (iequals(type, "OR")) {
        kind = GateKind::kOr;
      } else if (iequals(type, "NOT")) {
        kind = GateKind::kNot;
      } else if (iequals(type, "PAND")) {
        kind = GateKind::kPand;
      } else {
        throw ParseError("unknown gate type '" + type + "'", record.line, 1);
      }
      std::vector<FtNode*> children;
      for (const std::string& input : split(record.get("Inputs"), ',')) {
        if (input.empty()) continue;
        if (auto it = nodes.find(input); it != nodes.end()) {
          children.push_back(it->second);
        } else {
          children.push_back(leaf_for(input));
        }
      }
      FtNode* gate =
          tree->add_gate(kind, record.get_or("Description", ""), children);
      nodes.emplace(record.get("Id"), gate);
    }
  }
  finish_tree();
  return project;
}

}  // namespace ftsynth
