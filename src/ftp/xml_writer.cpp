#include "ftp/xml_writer.h"

#include <fstream>

#include "core/error.h"
#include "core/strings.h"

namespace ftsynth {

namespace {

std::string leaf_kind(const FtNode& node) {
  switch (node.kind()) {
    case NodeKind::kBasic:
      return "basic";
    case NodeKind::kHouse:
      return "house";
    case NodeKind::kUndeveloped:
      return "undeveloped";
    case NodeKind::kLoop:
      return "loop";
    case NodeKind::kGate:
      break;
  }
  throw Error(ErrorKind::kInternal, "leaf_kind on a gate");
}

void write_tree_body(const FaultTree& tree, std::string& out) {
  out += "  <fault-tree name=\"" + escape_xml(tree.name()) + "\">\n";
  out += "    <top description=\"" + escape_xml(tree.top_description()) +
         "\"";
  if (tree.top() == nullptr) {
    out += " empty=\"true\"/>\n  </fault-tree>\n";
    return;
  }
  out += " ref=\"" + escape_xml(std::string(tree.top()->name().view())) +
         "\"/>\n";
  tree.for_each_reachable([&](const FtNode& node) {
    if (node.is_leaf()) {
      out += "    <define-event name=\"" +
             escape_xml(std::string(node.name().view())) + "\" kind=\"" +
             leaf_kind(node) + "\"";
      if (node.rate() > 0.0)
        out += " rate=\"" + format_double(node.rate()) + "\"";
      if (node.has_fixed_probability()) {
        out += " probability=\"" + format_double(node.fixed_probability()) +
               "\"";
      }
      if (!node.description().empty())
        out += " description=\"" + escape_xml(node.description()) + "\"";
      out += "/>\n";
      return;
    }
    out += "    <define-gate name=\"" +
           escape_xml(std::string(node.name().view())) + "\" type=\"" +
           to_lower(to_string(node.gate())) + "\"";
    if (!node.description().empty())
      out += " description=\"" + escape_xml(node.description()) + "\"";
    out += ">\n";
    for (const FtNode* child : node.children()) {
      const char* tag = child->is_leaf() ? "event" : "gate";
      out += std::string("      <") + tag + " ref=\"" +
             escape_xml(std::string(child->name().view())) + "\"/>\n";
    }
    out += "    </define-gate>\n";
  });
  out += "  </fault-tree>\n";
}

void write_analysis_body(const TreeAnalysis& analysis, std::string& out) {
  out += "  <analysis top-event=\"" + escape_xml(analysis.top_event) +
         "\">\n";
  if (analysis.p_lower && analysis.p_upper) {
    // Bound-engine run: the certified interval is the probability result.
    out += "    <probability p-lower=\"" +
           format_double(*analysis.p_lower) + "\" p-upper=\"" +
           format_double(*analysis.p_upper) + "\" converged=\"" +
           (analysis.bound_converged ? "true" : "false") + "\"/>\n";
  } else {
    out += "    <probability rare-event=\"" +
           format_double(analysis.p_rare_event) + "\" esary-proschan=\"" +
           format_double(analysis.p_esary_proschan) + "\" mcub=\"" +
           format_double(analysis.p_mcub) + "\" exact=\"" +
           format_double(analysis.p_exact) + "\"/>\n";
  }
  out += "    <cut-sets count=\"" +
         std::to_string(analysis.cut_sets.cut_sets.size()) +
         "\" truncated=\"" +
         (analysis.cut_sets.truncated ? "true" : "false") + "\">\n";
  for (const CutSet& cs : analysis.cut_sets.cut_sets) {
    out += "      <cut-set order=\"" + std::to_string(cs.size()) + "\">\n";
    for (const CutLiteral& literal : cs) {
      out += "        <literal ref=\"" +
             escape_xml(std::string(literal.event->name().view())) + "\"";
      if (literal.negated) out += " negated=\"true\"";
      out += "/>\n";
    }
    out += "      </cut-set>\n";
  }
  out += "    </cut-sets>\n";
  out += "  </analysis>\n";
}

}  // namespace

std::string write_xml(const std::vector<const FaultTree*>& trees) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<fault-tree-set generator=\"ftsynth\">\n";
  for (const FaultTree* tree : trees) write_tree_body(*tree, out);
  out += "</fault-tree-set>\n";
  return out;
}

std::string write_xml(const FaultTree& tree) {
  return write_xml(std::vector<const FaultTree*>{&tree});
}

std::string write_xml(const FaultTree& tree, const TreeAnalysis& analysis) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<fault-tree-set generator=\"ftsynth\">\n";
  write_tree_body(tree, out);
  write_analysis_body(analysis, out);
  out += "</fault-tree-set>\n";
  return out;
}

std::string write_xml(const std::vector<const FaultTree*>& trees,
                      const std::vector<const TreeAnalysis*>& analyses,
                      const std::vector<SequenceSummary>& sequences) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<fault-tree-set generator=\"ftsynth\">\n";
  for (std::size_t i = 0; i < trees.size(); ++i) {
    write_tree_body(*trees[i], out);
    if (i < analyses.size()) write_analysis_body(*analyses[i], out);
  }
  if (!sequences.empty()) {
    out += "  <sequences>\n";
    for (const SequenceSummary& row : sequences) {
      out += "    <sequence name=\"" + escape_xml(row.name) + "\"";
      if (row.p_lower && row.p_upper) {
        out += " p-lower=\"" + format_double(*row.p_lower) + "\" p-upper=\"" +
               format_double(*row.p_upper) + "\"";
      } else {
        out += " probability=\"" + format_double(row.probability) + "\"";
      }
      out += " cut-sets=\"" + std::to_string(row.cut_set_count) +
             "\" min-order=\"" + std::to_string(row.min_order) +
             "\" truncated=\"" + (row.truncated ? "true" : "false") +
             "\"/>\n";
    }
    out += "  </sequences>\n";
  }
  out += "</fault-tree-set>\n";
  return out;
}

void write_xml_file(const FaultTree& tree, const std::string& path) {
  std::ofstream file(path);
  require(file.good(), ErrorKind::kParse,
          "cannot open '" + path + "' for writing");
  file << write_xml(tree);
  require(file.good(), ErrorKind::kParse, "failed writing '" + path + "'");
}

}  // namespace ftsynth
