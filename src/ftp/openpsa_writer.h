// Open-PSA Model Exchange Format export.
//
// Writes a synthesised FaultTree as a MEF document that
// openpsa::read_openpsa imports back to an equivalent tree: the same DAG
// (gates referenced by name keep their sharing), the same leaf
// probabilities (format_double emits the shortest decimal that strtod
// round-trips), the same descriptions (as <label>) and the same top
// description (the root gate's label). The differential fuzz suite leans
// on this: export -> import -> re-analyse must be byte-identical.

#pragma once

#include <string>
#include <vector>

#include "fta/fault_tree.h"

namespace ftsynth {

/// Renders `tree` as one <opsa-mef> document. Throws
/// ErrorKind::kAnalysis on a Priority-AND gate -- the MEF has no ordered
/// conjunction, so a PAND tree cannot round-trip faithfully.
std::string write_openpsa(const FaultTree& tree);

/// Several trees as sibling define-fault-tree sections of one document.
std::string write_openpsa(const std::vector<const FaultTree*>& trees);

}  // namespace ftsynth
